//! The end-to-end design flow (§4): trace → Markov model → pattern sets →
//! minimized cover → regular expression → minimized, steady-state Moore
//! predictor.
//!
//! The flow runs under an optional [`DesignBudget`]. When a stage would
//! exceed the budget, the designer walks a *degradation ladder* instead of
//! failing: first the exact minimizer is swapped for the Espresso-style
//! heuristic, then the history order is reduced one bit at a time, and as a
//! last resort the design collapses to a 2-bit saturating counter. Every
//! fallback is recorded in the [`Degradation`] report on the returned
//! [`Design`], so `design_from_trace` returns a usable predictor for any
//! budget and any trace (set [`Designer::degrade`] to `false` to get a
//! typed [`DesignError::BudgetExceeded`] instead).

use crate::budget::{Degradation, DesignBudget, Rung};
use crate::failpoints::{self, FailAction};
use crate::markov::MarkovModel;
use crate::patterns::{PatternConfig, PatternSets};
use crate::DesignError;
use fsmgen_automata::{Dfa, MoorePredictor, Nfa, Regex};
use fsmgen_logicmin::{minimize, minimize_checked, Algorithm, Cover};
use fsmgen_obs as obs;
use fsmgen_traces::BitTrace;

/// Configures one run of the automated design flow.
///
/// Construct with [`Designer::new`] and adjust via the builder-style
/// methods, then call [`Designer::design_from_trace`] or
/// [`Designer::design_from_model`].
///
/// # Examples
///
/// Designing the paper's running example end to end (Figure 1):
///
/// ```
/// use fsmgen::Designer;
/// use fsmgen_traces::BitTrace;
///
/// let t: BitTrace = "0000 1000 1011 1101 1110 1111".parse().unwrap();
/// let design = Designer::new(2).design_from_trace(&t)?;
/// assert_eq!(design.fsm().num_states(), 3); // Figure 1, right side
/// assert_eq!(design.pre_reduction_states(), 5); // Figure 1, left side
/// # Ok::<(), fsmgen::DesignError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Designer {
    history: usize,
    pattern_config: PatternConfig,
    algorithm: Algorithm,
    budget: DesignBudget,
    degrade: bool,
}

impl Designer {
    /// Creates a designer using `history` bits of history (the Markov
    /// order N), the paper's default pattern configuration (threshold 1/2,
    /// 1% don't-cares) and the exact minimizer.
    ///
    /// # Panics
    ///
    /// Panics if `history` is zero or exceeds
    /// [`MAX_ORDER`](crate::MAX_ORDER).
    #[must_use]
    pub fn new(history: usize) -> Self {
        assert!(
            history > 0 && history <= crate::MAX_ORDER,
            "history must be in 1..={}, got {history}",
            crate::MAX_ORDER
        );
        Designer {
            history,
            pattern_config: PatternConfig::default(),
            algorithm: Algorithm::default(),
            budget: DesignBudget::unlimited(),
            degrade: true,
        }
    }

    /// Sets the pattern-definition configuration.
    #[must_use]
    pub fn pattern_config(mut self, config: PatternConfig) -> Self {
        self.pattern_config = config;
        self
    }

    /// Sets the probability threshold for the predict-1 set (keeps the
    /// current don't-care fraction).
    #[must_use]
    pub fn prob_threshold(mut self, threshold: f64) -> Self {
        self.pattern_config.prob_threshold = threshold;
        self
    }

    /// Sets the don't-care demotion fraction (keeps the current threshold).
    #[must_use]
    pub fn dont_care_fraction(mut self, fraction: f64) -> Self {
        self.pattern_config.dont_care_fraction = fraction;
        self
    }

    /// Sets the logic-minimization algorithm.
    #[must_use]
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the resource budget for the whole flow. The default budget is
    /// unlimited.
    #[must_use]
    pub fn budget(mut self, budget: DesignBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Enables or disables the degradation ladder (on by default). With
    /// degradation off, the first budget violation surfaces as
    /// [`DesignError::BudgetExceeded`] instead of triggering a fallback.
    #[must_use]
    pub fn degrade(mut self, degrade: bool) -> Self {
        self.degrade = degrade;
        self
    }

    /// The configured history length.
    #[must_use]
    pub fn history(&self) -> usize {
        self.history
    }

    /// The configured resource budget.
    #[must_use]
    pub fn design_budget(&self) -> &DesignBudget {
        &self.budget
    }

    /// The configured pattern-definition settings.
    #[must_use]
    pub fn pattern_settings(&self) -> &PatternConfig {
        &self.pattern_config
    }

    /// The configured logic-minimization algorithm.
    #[must_use]
    pub fn minimize_algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// `true` when the degradation ladder is enabled.
    #[must_use]
    pub fn degrade_enabled(&self) -> bool {
        self.degrade
    }

    /// Runs the full flow on a 0/1 behaviour trace.
    ///
    /// With degradation enabled (the default), any budget exhaustion is
    /// absorbed by the fallback ladder and reported via
    /// [`Design::degradation`], so this returns a usable predictor for any
    /// budget and any trace long enough to fill the history window.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::TraceTooShort`] if the trace cannot fill the
    /// history window, [`DesignError::BadConfig`] for invalid pattern
    /// configuration, [`DesignError::EmptyModel`] if no history was
    /// observed, [`DesignError::BudgetExceeded`] when degradation is
    /// disabled and the budget was hit, or [`DesignError::Internal`] for
    /// hard stage failures (including injected faults).
    pub fn design_from_trace(&self, trace: &BitTrace) -> Result<Design, DesignError> {
        let _root = obs::span("design");
        let model = {
            let _stage = obs::span("markov");
            let model = MarkovModel::from_bit_trace(self.history, trace)?;
            obs::counter("markov", "histories", model.observed_histories() as u64);
            obs::counter("markov", "observations", model.total_observations());
            model
        };
        self.design_from_model_inner(model)
    }

    /// Runs the flow from an already-built Markov model (e.g. a per-branch
    /// model keyed on global history, or a merged cross-training model).
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::BadConfig`] for invalid pattern
    /// configuration, [`DesignError::EmptyModel`] if the model has no
    /// observations, [`DesignError::OrderTooLarge`] if the order exceeds
    /// the minimizer's width limit, [`DesignError::BudgetExceeded`] when
    /// degradation is disabled and the budget was hit, or
    /// [`DesignError::Internal`] for hard stage failures.
    pub fn design_from_model(&self, model: MarkovModel) -> Result<Design, DesignError> {
        let _root = obs::span("design");
        self.design_from_model_inner(model)
    }

    /// Shared ladder body for both public entry points; runs under the
    /// caller's already-open `design` root span so nesting depth stays
    /// uniform regardless of the entry point.
    fn design_from_model_inner(&self, model: MarkovModel) -> Result<Design, DesignError> {
        self.pattern_config
            .validate()
            .map_err(DesignError::BadConfig)?;
        if model.total_observations() == 0 {
            return Err(DesignError::EmptyModel);
        }
        if model.order() != self.history {
            return Err(DesignError::OrderMismatch {
                designer: self.history,
                model: model.order(),
            });
        }
        if model.order() > fsmgen_logicmin::MAX_VARS {
            return Err(DesignError::OrderTooLarge {
                order: model.order(),
                max: fsmgen_logicmin::MAX_VARS,
            });
        }

        // The degradation ladder: configured algorithm → heuristic
        // minimizer → shorter history orders → saturating counter. Each
        // budget failure drops one rung; hard failures surface immediately.
        let mut degradation = Degradation::default();
        let mut algorithm = self.algorithm;
        let mut current = model.clone();
        loop {
            match self.attempt(&current, algorithm) {
                Ok(stages) => {
                    let effective_history = current.order();
                    return Ok(stages.into_design(model, degradation, effective_history));
                }
                Err(StageFailure::Hard { stage, reason }) => {
                    return Err(DesignError::Internal { stage, reason });
                }
                Err(StageFailure::Budget { stage, reason }) => {
                    if !self.degrade {
                        return Err(DesignError::BudgetExceeded { stage, reason });
                    }
                    if !matches!(algorithm, Algorithm::Heuristic) {
                        algorithm = Algorithm::Heuristic;
                        obs::rung(&Rung::HeuristicMinimizer.to_string(), stage, &reason);
                        degradation.record(Rung::HeuristicMinimizer, stage, reason);
                    } else if current.order() > 1 {
                        let shorter = current.order() - 1;
                        current = current.reduced(shorter);
                        obs::rung(&Rung::ReducedOrder(shorter).to_string(), stage, &reason);
                        degradation.record(Rung::ReducedOrder(shorter), stage, reason);
                    } else {
                        obs::rung(&Rung::SaturatingCounter.to_string(), stage, &reason);
                        degradation.record(Rung::SaturatingCounter, stage, reason);
                        return match self.counter_attempt(&model) {
                            Ok(stages) => Ok(stages.into_design(model, degradation, 0)),
                            Err(
                                StageFailure::Hard { stage, reason }
                                | StageFailure::Budget { stage, reason },
                            ) => Err(DesignError::Internal { stage, reason }),
                        };
                    }
                }
            }
        }
    }

    /// One pass of the §4.3–4.7 pipeline over `model` with `algorithm`,
    /// under the configured budget and the active failpoints.
    fn attempt(
        &self,
        model: &MarkovModel,
        algorithm: Algorithm,
    ) -> Result<AttemptStages, StageFailure> {
        let order = model.order();

        // §4.3 pattern definition.
        consult_failpoint("patterns")?;
        let sets = {
            let _stage = obs::span("patterns");
            PatternSets::from_model(model, &self.pattern_config).map_err(|e| {
                StageFailure::Hard {
                    stage: "patterns",
                    reason: e.to_string(),
                }
            })?
        };
        obs::counter("patterns", "predict_one", sets.spec().on_set().len() as u64);
        obs::counter(
            "patterns",
            "predict_zero",
            sets.spec().off_set().len() as u64,
        );

        // §4.4 pattern compression.
        consult_failpoint("minimize")?;
        let cover = {
            let _stage = obs::span("minimize");
            minimize_checked(sets.spec(), algorithm, &self.budget.minimize_budget()).map_err(
                |e| StageFailure::Budget {
                    stage: "minimize",
                    reason: e.to_string(),
                },
            )?
        };
        obs::counter("minimize", "cubes_out", cover.len() as u64);
        obs::counter("minimize", "literals_out", u64::from(cover.literal_count()));

        // §4.5 regular expression building. Cube variable i is the outcome
        // i steps back, so the oldest position of a written pattern is
        // variable order-1.
        let regex = {
            let _stage = obs::span("regex");
            let patterns: Vec<Vec<Option<bool>>> = cover
                .cubes()
                .iter()
                .map(|cube| (0..order).rev().map(|var| cube.var(var)).collect())
                .collect();
            obs::counter("regex", "patterns", patterns.len() as u64);
            if patterns.is_empty() {
                None
            } else {
                Some(Regex::ending_in(
                    patterns.iter().map(|p| Regex::pattern(p)).collect(),
                ))
            }
        };

        // §4.6 FSM creation + Hopcroft, §4.7 start-state reduction.
        let automata_budget = self.budget.automata_budget();
        let (minimized, fsm) = match &regex {
            None => {
                let constant = Dfa::from_parts(vec![[0, 0]], vec![false], 0);
                (constant.clone(), constant)
            }
            Some(re) => {
                consult_failpoint("nfa")?;
                let nfa = {
                    let _stage = obs::span("nfa");
                    Nfa::from_regex_checked(re, &automata_budget).map_err(budget_failure("nfa"))?
                };
                consult_failpoint("dfa")?;
                let dfa = {
                    let _stage = obs::span("dfa");
                    Dfa::from_nfa_checked(&nfa, &automata_budget).map_err(budget_failure("dfa"))?
                };
                consult_failpoint("hopcroft")?;
                let minimized = {
                    let _stage = obs::span("hopcroft");
                    dfa.minimized_checked(&automata_budget)
                        .map_err(budget_failure("hopcroft"))?
                };
                consult_failpoint("reduce")?;
                let fsm = {
                    let _stage = obs::span("reduce");
                    minimized
                        .steady_state_reduced_checked(&automata_budget)
                        .map_err(budget_failure("reduce"))?
                };
                (minimized, fsm)
            }
        };

        Ok(AttemptStages {
            sets,
            cover,
            regex,
            minimized,
            fsm,
        })
    }

    /// The bottom rung: a 2-bit saturating counter (the "what you would
    /// have built by hand" predictor), biased toward the trace's majority
    /// outcome. Uses no minimizer and no automaton construction, so it
    /// cannot exceed any budget.
    fn counter_attempt(&self, model: &MarkovModel) -> Result<AttemptStages, StageFailure> {
        consult_failpoint("counter")?;
        let _stage = obs::span("counter");
        // Keep the order-1 projection's pattern sets and cover so the
        // design still reports §4.3/§4.4 artifacts (width 1: trivial cost).
        let reduced = model.reduced(1);
        let sets = PatternSets::from_model(&reduced, &self.pattern_config).map_err(|e| {
            StageFailure::Hard {
                stage: "counter",
                reason: e.to_string(),
            }
        })?;
        let cover = minimize(sets.spec(), Algorithm::Heuristic);

        let transitions: Vec<[u32; 2]> = (0u32..4)
            .map(|s| [s.saturating_sub(1), (s + 1).min(3)])
            .collect();
        let accept = vec![false, false, true, true];
        let biased_taken = model.total_ones() * 2 >= model.total_observations();
        let start = if biased_taken { 3 } else { 0 };
        let fsm = Dfa::from_parts(transitions, accept, start);
        Ok(AttemptStages {
            sets,
            cover,
            regex: None,
            minimized: fsm.clone(),
            fsm,
        })
    }
}

/// Why one ladder attempt failed.
enum StageFailure {
    /// The stage exceeded the budget — the ladder may continue.
    Budget { stage: &'static str, reason: String },
    /// The stage failed outright — surfaces as [`DesignError::Internal`].
    Hard { stage: &'static str, reason: String },
}

/// Maps an automata budget error into a stage failure for `stage`.
fn budget_failure<E: std::fmt::Display>(stage: &'static str) -> impl FnOnce(E) -> StageFailure {
    move |e| StageFailure::Budget {
        stage,
        reason: e.to_string(),
    }
}

/// Consults the failpoint registry for `stage` and converts a fired action
/// into the corresponding stage failure.
fn consult_failpoint(stage: &'static str) -> Result<(), StageFailure> {
    match failpoints::fire(stage) {
        None => Ok(()),
        Some(FailAction::BudgetExceeded) => Err(StageFailure::Budget {
            stage,
            reason: format!("injected budget fault at {stage}"),
        }),
        Some(FailAction::Error) => Err(StageFailure::Hard {
            stage,
            reason: format!("injected fault at {stage}"),
        }),
    }
}

/// The intermediate artifacts of one successful ladder attempt.
struct AttemptStages {
    sets: PatternSets,
    cover: Cover,
    regex: Option<Regex>,
    minimized: Dfa,
    fsm: Dfa,
}

impl AttemptStages {
    fn into_design(
        self,
        model: MarkovModel,
        degradation: Degradation,
        effective_history: usize,
    ) -> Design {
        Design {
            model,
            sets: self.sets,
            cover: self.cover,
            regex: self.regex,
            minimized: self.minimized,
            fsm: self.fsm,
            degradation,
            effective_history,
        }
    }
}

/// The output of one design-flow run, retaining every intermediate
/// artifact so callers can inspect or report any stage.
#[derive(Debug, Clone, PartialEq)]
pub struct Design {
    model: MarkovModel,
    sets: PatternSets,
    cover: Cover,
    regex: Option<Regex>,
    minimized: Dfa,
    fsm: Dfa,
    degradation: Degradation,
    effective_history: usize,
}

impl Design {
    /// Reassembles a design from its stage artifacts — the
    /// deserialization path (e.g. the farm's persistent cache snapshots).
    ///
    /// The designer itself builds designs through the pipeline; this
    /// constructor trusts the caller that the artifacts belong together
    /// (it performs no cross-stage consistency checks), so decoded
    /// designs round-trip every accessor bit-identically.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn from_parts(
        model: MarkovModel,
        sets: PatternSets,
        cover: Cover,
        regex: Option<Regex>,
        minimized: Dfa,
        fsm: Dfa,
        degradation: Degradation,
        effective_history: usize,
    ) -> Self {
        Design {
            model,
            sets,
            cover,
            regex,
            minimized,
            fsm,
            degradation,
            effective_history,
        }
    }

    /// The Markov model the design was derived from (§4.2).
    #[must_use]
    pub fn model(&self) -> &MarkovModel {
        &self.model
    }

    /// The predict-1 / predict-0 / don't-care partition (§4.3).
    #[must_use]
    pub fn pattern_sets(&self) -> &PatternSets {
        &self.sets
    }

    /// The minimized sum-of-products cover of the predict-1 set (§4.4).
    #[must_use]
    pub fn cover(&self) -> &Cover {
        &self.cover
    }

    /// The regular expression for the predict-1 language (§4.5), or `None`
    /// when the cover is empty (an always-predict-0 design).
    #[must_use]
    pub fn regex(&self) -> Option<&Regex> {
        self.regex.as_ref()
    }

    /// The Hopcroft-minimized machine before start-state removal
    /// (Figure 1, left).
    #[must_use]
    pub fn minimized_with_startup(&self) -> &Dfa {
        &self.minimized
    }

    /// State count before start-state reduction.
    #[must_use]
    pub fn pre_reduction_states(&self) -> usize {
        self.minimized.num_states()
    }

    /// The final steady-state predictor machine (Figure 1, right).
    #[must_use]
    pub fn fsm(&self) -> &Dfa {
        &self.fsm
    }

    /// Instantiates a runnable predictor on the final machine.
    #[must_use]
    pub fn predictor(&self) -> MoorePredictor {
        MoorePredictor::new(self.fsm.clone())
    }

    /// The degradation report: which fallback rungs, if any, the designer
    /// took to fit the budget. Empty for an undegraded design.
    #[must_use]
    pub fn degradation(&self) -> &Degradation {
        &self.degradation
    }

    /// The history order the final machine was actually built from. Equal
    /// to the configured history for an undegraded design, smaller after an
    /// order-reduction rung, and `0` for the saturating-counter fallback
    /// (which uses no history window).
    #[must_use]
    pub fn effective_history(&self) -> usize {
        self.effective_history
    }

    /// Consumes the design, returning the final machine.
    #[must_use]
    pub fn into_fsm(self) -> Dfa {
        self.fsm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_trace() -> BitTrace {
        "0000 1000 1011 1101 1110 1111".parse().unwrap()
    }

    #[test]
    fn full_paper_walkthrough() {
        let designer = Designer::new(2).dont_care_fraction(0.0);
        let design = designer.design_from_trace(&paper_trace()).unwrap();

        // §4.4: the cover is (x1) + (1x).
        assert_eq!(design.cover().len(), 2);
        assert_eq!(design.cover().literal_count(), 2);

        // §4.5: regex is {0|1}* over the two patterns.
        let re = design.regex().unwrap().to_string();
        assert!(re.starts_with("{0|1}*"), "regex was {re}");

        // Figure 1: 5 states with start-up, 3 after reduction.
        assert_eq!(design.pre_reduction_states(), 5);
        assert_eq!(design.fsm().num_states(), 3);

        // Steady-state behaviour: predict 1 unless the last two bits were
        // both 0.
        let mut p = design.predictor();
        for (bits, expect) in [
            ([false, false], false),
            ([false, true], true),
            ([true, false], true),
            ([true, true], true),
        ] {
            // Walk in from every state by feeding the two bits.
            for warmup in 0..3u32 {
                let mut q = p.fresh_instance();
                for _ in 0..warmup {
                    q.update(true);
                }
                for b in bits {
                    q.update(b);
                }
                assert_eq!(q.predict(), expect, "bits {bits:?} warmup {warmup}");
            }
            p = p.fresh_instance();
        }
    }

    #[test]
    fn always_taken_trace_designs_constant_predictor() {
        let t: BitTrace = "1111 1111 1111 1111".parse().unwrap();
        let design = Designer::new(2).design_from_trace(&t).unwrap();
        // Only history 11 is observed and it predicts 1; everything else is
        // a don't-care, so the cover collapses to the universal cube and
        // the machine to a single always-1 state.
        assert_eq!(design.fsm().num_states(), 1);
        assert!(design.fsm().output(0));
    }

    #[test]
    fn always_not_taken_trace() {
        let t: BitTrace = "0000 0000 0000".parse().unwrap();
        let design = Designer::new(2).design_from_trace(&t).unwrap();
        assert_eq!(design.fsm().num_states(), 1);
        assert!(!design.fsm().output(0));
        assert!(design.regex().is_none());
    }

    #[test]
    fn alternating_trace_learns_alternation() {
        let t: BitTrace = "0101 0101 0101 0101 0101".parse().unwrap();
        let design = Designer::new(2).design_from_trace(&t).unwrap();
        let mut p = design.predictor();
        // After seeing ...01 the predictor should say 0; after ...10, 1.
        p.update(false);
        p.update(true);
        assert!(!p.predict());
        p.update(false);
        assert!(p.predict());
    }

    #[test]
    fn errors_are_reported() {
        let designer = Designer::new(4);
        let tiny: BitTrace = "01".parse().unwrap();
        assert!(matches!(
            designer.design_from_trace(&tiny),
            Err(DesignError::TraceTooShort { .. })
        ));

        let designer = Designer::new(2).prob_threshold(2.0);
        assert!(matches!(
            designer.design_from_trace(&paper_trace()),
            Err(DesignError::BadConfig(_))
        ));

        let model = MarkovModel::new(3);
        assert!(matches!(
            Designer::new(3).design_from_model(model),
            Err(DesignError::EmptyModel)
        ));

        let mut model = MarkovModel::new(3);
        model.observe(0, true);
        assert!(matches!(
            Designer::new(2).design_from_model(model),
            Err(DesignError::OrderMismatch {
                designer: 2,
                model: 3
            })
        ));
    }

    #[test]
    fn unlimited_budget_reports_no_degradation() {
        let design = Designer::new(2)
            .budget(DesignBudget::unlimited())
            .design_from_trace(&paper_trace())
            .unwrap();
        assert!(!design.degradation().is_degraded());
        assert_eq!(design.effective_history(), 2);
    }

    #[test]
    fn tight_minterm_budget_degrades_but_still_designs() {
        // max_minterms = 1 is impossible for any order ≥ 1 spec, so the
        // ladder must run all the way down to the counter.
        let budget = DesignBudget {
            max_minterms: Some(1),
            ..DesignBudget::default()
        };
        let design = Designer::new(4)
            .budget(budget)
            .design_from_trace(&paper_trace())
            .unwrap();
        assert!(design.degradation().is_degraded());
        assert_eq!(
            design.degradation().final_rung(),
            Some(Rung::SaturatingCounter)
        );
        assert_eq!(design.effective_history(), 0);
        // The counter is still a usable 4-state predictor.
        assert_eq!(design.fsm().num_states(), 4);
        // The paper trace is majority ones, so the counter starts taken.
        let p = design.predictor();
        assert!(p.predict());
    }

    #[test]
    fn tight_dfa_budget_reduces_order() {
        // Enough room for the minimizer, but only a few DFA states: the
        // ladder should shorten the history until the machine fits.
        let budget = DesignBudget {
            max_dfa_states: Some(3),
            ..DesignBudget::default()
        };
        let t: BitTrace = "0011 0011 0011 0011 0011 0011 0011 0011".parse().unwrap();
        let design = Designer::new(6)
            .budget(budget)
            .design_from_trace(&t)
            .unwrap();
        assert!(design.degradation().is_degraded());
        assert!(design.effective_history() < 6);
        assert!(design.fsm().num_states() <= 3);
    }

    #[test]
    fn degrade_disabled_returns_budget_error() {
        let budget = DesignBudget {
            max_minterms: Some(1),
            ..DesignBudget::default()
        };
        let err = Designer::new(4)
            .budget(budget)
            .degrade(false)
            .design_from_trace(&paper_trace())
            .unwrap_err();
        assert!(matches!(
            err,
            DesignError::BudgetExceeded {
                stage: "minimize",
                ..
            }
        ));
    }

    #[test]
    fn order_too_large_is_reported() {
        // MAX_ORDER tracks the minimizer width, so build the model directly
        // at an unsupported order to hit the guard.
        let too_wide = fsmgen_logicmin::MAX_VARS + 1;
        if too_wide > crate::MAX_ORDER {
            // Constructor guard already prevents this; the error variant is
            // covered for forward-compat when MAX_ORDER outgrows MAX_VARS.
            return;
        }
        let t: BitTrace = "01".repeat(64).parse().unwrap();
        let err = Designer::new(too_wide).design_from_trace(&t).unwrap_err();
        assert!(matches!(err, DesignError::OrderTooLarge { .. }));
    }

    #[test]
    fn history_sweep_monotone_knowledge() {
        // A trace with period-4 structure: longer histories should never
        // produce a predictor worse (on the training trace itself) than
        // shorter ones.
        let t: BitTrace = "0011 0011 0011 0011 0011 0011 0011 0011".parse().unwrap();
        let mut prev_acc = 0.0;
        for n in 2..=6 {
            let design = Designer::new(n).design_from_trace(&t).unwrap();
            let mut p = design.predictor();
            let mut correct = 0;
            let mut total = 0;
            for (i, bit) in t.iter().enumerate() {
                if i >= n {
                    total += 1;
                    if p.predict() == bit {
                        correct += 1;
                    }
                }
                p.update(bit);
            }
            let acc = correct as f64 / total as f64;
            assert!(
                acc + 1e-9 >= prev_acc,
                "accuracy dropped from {prev_acc} to {acc} at n={n}"
            );
            prev_acc = acc;
        }
        assert!(
            prev_acc > 0.9,
            "period-4 trace should be almost perfectly predictable"
        );
    }
}
