//! History-length sweeps: the design-space exploration a customized
//! processor's tool chain runs on top of the single-design flow.
//!
//! §4.2 caps history at N = 10 ("having more knowledge of history after a
//! certain point does not improve accuracy"), and §7.4's area model makes
//! state count the cost axis. [`sweep_histories`] runs the flow at every
//! length in a range and reports training accuracy alongside machine
//! size, so callers can pick the smallest design meeting a target —
//! exactly the tradeoff Figures 2 and 5 sweep by hand.

use crate::designer::{Design, Designer};
use crate::DesignError;
use fsmgen_traces::BitTrace;

/// One sweep point: a complete design plus its evaluation on the
/// training trace.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// History length the design used.
    pub history: usize,
    /// The full design (machine, cover, model, …).
    pub design: Design,
    /// Prediction accuracy replayed over the training trace (warm region
    /// only: the first `history` bits are skipped).
    pub training_accuracy: f64,
}

impl SweepPoint {
    /// States in the final machine.
    #[must_use]
    pub fn states(&self) -> usize {
        self.design.fsm().num_states()
    }
}

/// Replays a design over a trace, counting predictions after the warmup
/// window.
fn replay(design: &Design, trace: &BitTrace, warmup: usize) -> f64 {
    let mut p = design.predictor();
    let mut correct = 0usize;
    let mut total = 0usize;
    for (i, bit) in trace.iter().enumerate() {
        if i >= warmup {
            total += 1;
            if p.predict() == bit {
                correct += 1;
            }
        }
        p.update(bit);
    }
    correct as f64 / total.max(1) as f64
}

/// Designs one predictor per history length in `histories`, evaluating
/// each on the training trace. Lengths the trace cannot fill are skipped.
///
/// The `configure` hook receives the [`Designer`] for each length so
/// callers can set thresholds, don't-care fractions or the minimization
/// algorithm uniformly.
///
/// # Errors
///
/// Returns the first non-length-related [`DesignError`] (invalid
/// configuration, empty model); a trace merely too short for some lengths
/// is not an error — those lengths are skipped.
///
/// # Examples
///
/// ```
/// use fsmgen::{sweep_histories, Designer};
/// use fsmgen_traces::BitTrace;
///
/// let trace: BitTrace = "1101".repeat(50).parse().unwrap();
/// let points = sweep_histories(&trace, 2..=6, |d| d)?;
/// assert_eq!(points.len(), 5);
/// // Period-4 behaviour: by history 4 the trace is fully predictable.
/// assert!(points.iter().any(|p| p.training_accuracy > 0.99));
/// # Ok::<(), fsmgen::DesignError>(())
/// ```
pub fn sweep_histories(
    trace: &BitTrace,
    histories: impl IntoIterator<Item = usize>,
    configure: impl Fn(Designer) -> Designer,
) -> Result<Vec<SweepPoint>, DesignError> {
    let mut points = Vec::new();
    for history in histories {
        let designer = configure(Designer::new(history));
        debug_assert_eq!(
            designer.history(),
            history,
            "configure must keep the history"
        );
        match designer.design_from_trace(trace) {
            Ok(design) => {
                let training_accuracy = replay(&design, trace, history);
                points.push(SweepPoint {
                    history,
                    design,
                    training_accuracy,
                });
            }
            Err(DesignError::TraceTooShort { .. }) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(points)
}

/// Picks the smallest-machine sweep point whose training accuracy meets
/// `target`, breaking ties toward shorter histories. Returns `None` when
/// no point qualifies.
///
/// # Examples
///
/// ```
/// use fsmgen::{smallest_meeting_accuracy, sweep_histories};
/// use fsmgen_traces::BitTrace;
///
/// let trace: BitTrace = "01".repeat(60).parse().unwrap();
/// let points = sweep_histories(&trace, 2..=8, |d| d)?;
/// let best = smallest_meeting_accuracy(&points, 0.95).expect("alternation is learnable");
/// assert_eq!(best.states(), 2, "the flip-flop machine suffices");
/// # Ok::<(), fsmgen::DesignError>(())
/// ```
#[must_use]
pub fn smallest_meeting_accuracy(points: &[SweepPoint], target: f64) -> Option<&SweepPoint> {
    points
        .iter()
        .filter(|p| p.training_accuracy >= target)
        .min_by_key(|p| (p.states(), p.history))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_skips_too_short_lengths() {
        let trace: BitTrace = "0110 1".parse().unwrap(); // 5 bits
        let points = sweep_histories(&trace, 2..=8, |d| d).unwrap();
        // Lengths 5..=8 cannot fill the window (need len > N).
        let lengths: Vec<usize> = points.iter().map(|p| p.history).collect();
        assert_eq!(lengths, vec![2, 3, 4]);
    }

    #[test]
    fn sweep_propagates_config_errors() {
        let trace: BitTrace = "0101".repeat(20).parse().unwrap();
        let err = sweep_histories(&trace, 2..=3, |d| d.prob_threshold(2.0)).unwrap_err();
        assert!(matches!(err, DesignError::BadConfig(_)));
    }

    #[test]
    fn accuracy_grows_until_the_period_is_covered() {
        let trace: BitTrace = "110100".repeat(40).parse().unwrap(); // period 6
        let points = sweep_histories(&trace, 2..=8, |d| d.dont_care_fraction(0.0)).unwrap();
        let acc: Vec<f64> = points.iter().map(|p| p.training_accuracy).collect();
        // Monotone non-decreasing and eventually (near-)perfect.
        for w in acc.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "{acc:?}");
        }
        assert!(acc.last().copied().unwrap() > 0.98, "{acc:?}");
    }

    #[test]
    fn smallest_selection_prefers_fewer_states() {
        let trace: BitTrace = "01".repeat(60).parse().unwrap();
        let points = sweep_histories(&trace, 2..=6, |d| d).unwrap();
        let best = smallest_meeting_accuracy(&points, 0.9).unwrap();
        // Every sweep length learns alternation; the pick must be the
        // 2-state machine at the shortest history.
        assert_eq!(best.states(), 2);
        assert_eq!(best.history, 2);
        assert!(smallest_meeting_accuracy(&points, 1.01).is_none());
    }
}
