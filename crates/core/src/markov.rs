//! Nth-order Markov models of binary behaviour (§4.2 of the paper).
//!
//! "An Nth order Markov Model is a table of size 2^N which contains
//! P[1 | last N inputs] for each of the possible 2^N last N inputs in the
//! trace." The table is stored sparsely: "since the number of global
//! histories that a given branch might see ... is small compared to the 2^N
//! possible histories, the Markov Models can be compressed down
//! significantly by only storing non-zero entries" (§7.3).

use fsmgen_traces::{BitTrace, HistoryRegister};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Maximum history order, matching the paper's observation that nothing
/// beyond N = 10 was needed (we allow some headroom).
pub const MAX_ORDER: usize = 16;

/// Occurrence counts for one history pattern.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistoryCounts {
    /// Times the history was followed by a 0.
    pub zeros: u64,
    /// Times the history was followed by a 1.
    pub ones: u64,
}

impl HistoryCounts {
    /// Total observations of the history.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.zeros + self.ones
    }

    /// Empirical `P[1 | history]`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the history was never observed; callers
    /// iterate observed histories only.
    #[must_use]
    pub fn prob_one(&self) -> f64 {
        debug_assert!(self.total() > 0);
        self.ones as f64 / self.total() as f64
    }
}

/// A sparse Nth-order Markov model over a binary alphabet.
///
/// # Examples
///
/// Reproducing the §4.2 table for the paper's example trace:
///
/// ```
/// use fsmgen::MarkovModel;
/// use fsmgen_traces::BitTrace;
///
/// let t: BitTrace = "0000 1000 1011 1101 1110 1111".parse().unwrap();
/// let model = MarkovModel::from_bit_trace(2, &t)?;
/// assert_eq!(model.prob_one(0b00), Some(2.0 / 5.0)); // P[1|00] = 2/5
/// assert_eq!(model.prob_one(0b01), Some(3.0 / 5.0)); // P[1|01] = 3/5
/// assert_eq!(model.prob_one(0b10), Some(3.0 / 4.0)); // P[1|10] = 3/4
/// # Ok::<(), fsmgen::DesignError>(())
/// ```
///
/// Histories are packed with the most recent outcome in bit 0 and the
/// oldest in bit `order-1`, so a pattern written oldest-bit-first (as the
/// paper does) reads off directly as a binary number.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarkovModel {
    order: usize,
    table: BTreeMap<u32, HistoryCounts>,
}

impl MarkovModel {
    /// Creates an empty model of the given order (history length).
    ///
    /// # Panics
    ///
    /// Panics if `order` is zero or exceeds [`MAX_ORDER`].
    #[must_use]
    pub fn new(order: usize) -> Self {
        assert!(
            order > 0 && order <= MAX_ORDER,
            "Markov order must be in 1..={MAX_ORDER}, got {order}"
        );
        MarkovModel {
            order,
            table: BTreeMap::new(),
        }
    }

    /// Builds a model by sliding an `order`-bit history window over a
    /// trace. Only positions where the full history is defined contribute,
    /// matching the paper's handling of start-up bits.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::TraceTooShort`] if the trace cannot fill the
    /// history even once.
    ///
    /// [`DesignError::TraceTooShort`]: crate::DesignError::TraceTooShort
    pub fn from_bit_trace(order: usize, trace: &BitTrace) -> Result<Self, crate::DesignError> {
        if trace.len() <= order {
            return Err(crate::DesignError::TraceTooShort {
                len: trace.len(),
                order,
            });
        }
        let mut model = MarkovModel::new(order);
        let mut history = HistoryRegister::new(order);
        for bit in trace {
            if history.is_full() {
                model.observe(history.value(), bit);
            }
            history.push(bit);
        }
        Ok(model)
    }

    /// Rebuilds a model from bulk `(history, counts)` pairs — the
    /// deserialization path (e.g. the farm's persistent cache snapshots).
    /// Unlike repeated [`MarkovModel::observe`] calls this is O(entries),
    /// not O(observations), and it never panics: invalid input is a typed
    /// error so callers decoding untrusted bytes can reject it.
    ///
    /// # Errors
    ///
    /// Returns a message when `order` is outside `1..=MAX_ORDER`, a
    /// history does not fit in `order` bits, a history repeats, or an
    /// entry has zero observations.
    pub fn from_counts(
        order: usize,
        counts: impl IntoIterator<Item = (u32, HistoryCounts)>,
    ) -> Result<Self, String> {
        if order == 0 || order > MAX_ORDER {
            return Err(format!(
                "Markov order must be in 1..={MAX_ORDER}, got {order}"
            ));
        }
        let mut table = BTreeMap::new();
        for (history, c) in counts {
            if order < 32 && history >= (1u32 << order) {
                return Err(format!("history {history:#b} wider than order {order}"));
            }
            if c.total() == 0 {
                return Err(format!("history {history:#b} has zero observations"));
            }
            if table.insert(history, c).is_some() {
                return Err(format!("duplicate history {history:#b}"));
            }
        }
        Ok(MarkovModel { order, table })
    }

    /// Records one observation: `history` (most recent outcome in bit 0)
    /// was followed by `outcome`.
    ///
    /// # Panics
    ///
    /// Panics if `history` does not fit in the model's order.
    pub fn observe(&mut self, history: u32, outcome: bool) {
        assert!(
            self.order == 32 || history < (1u32 << self.order),
            "history {history:#b} wider than order {}",
            self.order
        );
        let counts = self.table.entry(history).or_default();
        if outcome {
            counts.ones += 1;
        } else {
            counts.zeros += 1;
        }
    }

    /// The model's history length.
    #[must_use]
    pub fn order(&self) -> usize {
        self.order
    }

    /// Counts for one history, or `None` if it never occurred.
    #[must_use]
    pub fn counts(&self, history: u32) -> Option<HistoryCounts> {
        self.table.get(&history).copied()
    }

    /// `P[1 | history]`, or `None` if the history never occurred.
    #[must_use]
    pub fn prob_one(&self, history: u32) -> Option<f64> {
        self.table.get(&history).map(HistoryCounts::prob_one)
    }

    /// Iterates over `(history, counts)` for every observed history, in
    /// ascending history order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, HistoryCounts)> + '_ {
        self.table.iter().map(|(&h, &c)| (h, c))
    }

    /// Number of distinct observed histories (the sparse table size).
    #[must_use]
    pub fn observed_histories(&self) -> usize {
        self.table.len()
    }

    /// Total number of observations across all histories.
    #[must_use]
    pub fn total_observations(&self) -> u64 {
        self.table.values().map(HistoryCounts::total).sum()
    }

    /// Returns a lower-order projection of this model: every history is
    /// truncated to its `new_order` most recent outcomes (bit 0 holds the
    /// most recent outcome, so truncation is a mask) and the counts of
    /// histories that collapse together are summed.
    ///
    /// This is what the degradation ladder uses to retry a design with a
    /// shorter history window without re-reading the trace: the projection
    /// of the order-N model equals the model built from the trace at the
    /// lower order, up to the `N - new_order` extra warm-up observations
    /// the shorter window would have captured.
    ///
    /// # Panics
    ///
    /// Panics if `new_order` is zero or exceeds the current order.
    #[must_use]
    pub fn reduced(&self, new_order: usize) -> MarkovModel {
        assert!(
            new_order > 0 && new_order <= self.order,
            "reduced order must be in 1..={}, got {new_order}",
            self.order
        );
        if new_order == self.order {
            return self.clone();
        }
        let mask = (1u32 << new_order) - 1;
        let mut reduced = MarkovModel::new(new_order);
        for (h, c) in self.iter() {
            let e = reduced.table.entry(h & mask).or_default();
            e.zeros += c.zeros;
            e.ones += c.ones;
        }
        reduced
    }

    /// Total observations that were followed by a 1, across all histories.
    #[must_use]
    pub fn total_ones(&self) -> u64 {
        self.table.values().map(|c| c.ones).sum()
    }

    /// Merges another model's counts into this one (used to build the
    /// aggregate, cross-trained models of §6.3).
    ///
    /// # Panics
    ///
    /// Panics if the orders differ.
    pub fn merge(&mut self, other: &MarkovModel) {
        assert_eq!(
            self.order, other.order,
            "cannot merge Markov models of different orders"
        );
        for (h, c) in other.iter() {
            let e = self.table.entry(h).or_default();
            e.zeros += c.zeros;
            e.ones += c.ones;
        }
    }

    /// Renders the table in the paper's `P[1|hh] = a/b` style (histories
    /// written oldest bit first).
    #[must_use]
    pub fn display_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (h, c) in self.iter() {
            let pattern: String = (0..self.order)
                .rev()
                .map(|i| if h >> i & 1 == 1 { '1' } else { '0' })
                .collect();
            let _ = writeln!(out, "P[1|{pattern}] = {}/{}", c.ones, c.total());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_trace() -> BitTrace {
        "0000 1000 1011 1101 1110 1111".parse().unwrap()
    }

    #[test]
    fn paper_section_4_2_table() {
        // The paper's second-order table: P[1|00]=2/5, P[1|01]=3/5,
        // P[1|10]=3/4, P[1|11]=6/8. Paper patterns are written oldest bit
        // first, so "01" (0 then 1) is index 0b10 in our packing.
        let m = MarkovModel::from_bit_trace(2, &paper_trace()).unwrap();
        let get = |pattern: &str| {
            let idx = pattern
                .chars()
                .fold(0u32, |acc, c| acc << 1 | u32::from(c == '1'));
            // pattern is oldest-first; oldest ends up in the high bit,
            // which matches HistoryRegister's packing.
            m.counts(idx).unwrap()
        };
        let c00 = get("00");
        assert_eq!((c00.ones, c00.total()), (2, 5));
        let c01 = get("01");
        assert_eq!((c01.ones, c01.total()), (3, 5));
        let c10 = get("10");
        assert_eq!((c10.ones, c10.total()), (3, 4));
        let c11 = get("11");
        assert_eq!((c11.ones, c11.total()), (6, 8));
    }

    #[test]
    fn too_short_trace_rejected() {
        let t: BitTrace = "01".parse().unwrap();
        assert!(matches!(
            MarkovModel::from_bit_trace(2, &t),
            Err(crate::DesignError::TraceTooShort { len: 2, order: 2 })
        ));
    }

    #[test]
    fn sparse_storage() {
        let mut m = MarkovModel::new(10);
        m.observe(0b11_1111_1111, true);
        m.observe(0, false);
        assert_eq!(m.observed_histories(), 2);
        assert_eq!(m.total_observations(), 2);
        assert_eq!(m.prob_one(5), None);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = MarkovModel::new(2);
        a.observe(0b01, true);
        let mut b = MarkovModel::new(2);
        b.observe(0b01, false);
        b.observe(0b10, true);
        a.merge(&b);
        let c = a.counts(0b01).unwrap();
        assert_eq!((c.ones, c.zeros), (1, 1));
        assert_eq!(a.observed_histories(), 2);
    }

    #[test]
    fn reduced_model_matches_direct_construction() {
        // Projecting the order-3 model down to order 2 must agree with the
        // order-2 model built from the same trace on every shared history
        // (the direct model additionally sees one earlier warm-up position).
        let t = paper_trace();
        let m3 = MarkovModel::from_bit_trace(3, &t).unwrap();
        let m2 = MarkovModel::from_bit_trace(2, &t).unwrap();
        let r2 = m3.reduced(2);
        assert_eq!(r2.order(), 2);
        // Totals: the order-3 window starts one bit later, so the projected
        // model has exactly one fewer observation.
        assert_eq!(r2.total_observations() + 1, m2.total_observations());
        for (h, rc) in r2.iter() {
            let dc = m2.counts(h).unwrap();
            assert!(rc.ones <= dc.ones && rc.zeros <= dc.zeros, "history {h:b}");
        }
    }

    #[test]
    fn reduced_to_same_order_is_identity() {
        let m = MarkovModel::from_bit_trace(2, &paper_trace()).unwrap();
        assert_eq!(m.reduced(2), m);
    }

    #[test]
    #[should_panic(expected = "reduced order must be")]
    fn reduced_rejects_widening() {
        let m = MarkovModel::new(2);
        let _ = m.reduced(3);
    }

    #[test]
    fn total_ones_counts() {
        let mut m = MarkovModel::new(2);
        m.observe(0, true);
        m.observe(0, true);
        m.observe(1, false);
        assert_eq!(m.total_ones(), 2);
        assert_eq!(m.total_observations(), 3);
    }

    #[test]
    #[should_panic(expected = "different orders")]
    fn merge_order_mismatch_panics() {
        let mut a = MarkovModel::new(2);
        a.merge(&MarkovModel::new(3));
    }

    #[test]
    fn display_table_format() {
        let m = MarkovModel::from_bit_trace(2, &paper_trace()).unwrap();
        let text = m.display_table();
        assert!(text.contains("P[1|00] = 2/5"));
        assert!(text.contains("P[1|11] = 6/8"));
    }
}
