//! Property-based tests of the end-to-end design flow: the generated FSM
//! must agree with the pattern sets it was built from, and the flow must be
//! deterministic and robust across random traces.

use fsmgen::{Designer, MarkovModel, PatternConfig};
use fsmgen_logicmin::{Algorithm, MintermKind};
use fsmgen_testkit::strategies::bit_trace as trace_strategy;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fundamental contract: after the history window is full, the FSM's
    /// prediction equals the pattern-set classification of the trailing
    /// window (don't-cares may go either way).
    #[test]
    fn fsm_agrees_with_pattern_sets(trace in trace_strategy(), n in 2usize..6) {
        prop_assume!(trace.len() > n);
        let design = Designer::new(n)
            .pattern_config(PatternConfig::without_dont_cares(0.5))
            .design_from_trace(&trace)
            .expect("trace long enough");
        let spec = design.pattern_sets().spec().clone();
        let mut predictor = design.predictor();
        let mut history = fsmgen_traces::HistoryRegister::new(n);
        for bit in &trace {
            if history.is_full() {
                match spec.kind(history.value()) {
                    MintermKind::On => prop_assert!(
                        predictor.predict(),
                        "history {:0width$b} is predict-1", history.value(), width = n
                    ),
                    MintermKind::Off => prop_assert!(
                        !predictor.predict(),
                        "history {:0width$b} is predict-0", history.value(), width = n
                    ),
                    MintermKind::DontCare => {}
                }
            }
            history.push(bit);
            predictor.update(bit);
        }
    }

    /// The flow is deterministic: same trace, same configuration, same
    /// machine.
    #[test]
    fn design_flow_is_deterministic(trace in trace_strategy()) {
        let a = Designer::new(3).design_from_trace(&trace).unwrap();
        let b = Designer::new(3).design_from_trace(&trace).unwrap();
        prop_assert_eq!(a.fsm(), b.fsm());
        prop_assert_eq!(a.cover(), b.cover());
    }

    /// Start-state reduction never increases the machine and the final
    /// machine is no larger than the pre-reduction one.
    #[test]
    fn reduction_shrinks(trace in trace_strategy(), n in 2usize..6) {
        prop_assume!(trace.len() > n);
        let design = Designer::new(n).design_from_trace(&trace).unwrap();
        prop_assert!(design.fsm().num_states() <= design.pre_reduction_states());
        prop_assert!(design.fsm().num_states() >= 1);
    }

    /// Raising the probability threshold never grows the predict-1 set.
    #[test]
    fn threshold_monotone(trace in trace_strategy()) {
        let model = MarkovModel::from_bit_trace(3, &trace).unwrap();
        let mut prev = usize::MAX;
        for thr in [0.5, 0.7, 0.9, 1.0] {
            let sets = fsmgen::PatternSets::from_model(
                &model,
                &PatternConfig::without_dont_cares(thr),
            ).unwrap();
            let size = sets.spec().on_set().len();
            prop_assert!(size <= prev, "on-set grew from {prev} to {size} at {thr}");
            prev = size;
        }
    }

    /// The shortest-window minimizer never constrains an older bit than
    /// the plain exact minimizer needs, and the resulting machine is never
    /// larger.
    #[test]
    fn short_window_shrinks_machines(trace in trace_strategy(), n in 2usize..6) {
        prop_assume!(trace.len() > n);
        let exact = Designer::new(n)
            .pattern_config(PatternConfig::without_dont_cares(0.5))
            .design_from_trace(&trace)
            .unwrap();
        let short = Designer::new(n)
            .pattern_config(PatternConfig::without_dont_cares(0.5))
            .algorithm(Algorithm::ShortWindow)
            .design_from_trace(&trace)
            .unwrap();
        let max_var = |d: &fsmgen::Design| {
            d.cover()
                .cubes()
                .iter()
                .flat_map(|c| (0..n).filter(|&v| c.var(v).is_some()))
                .max()
        };
        if let (Some(e), Some(s)) = (max_var(&exact), max_var(&short)) {
            prop_assert!(s <= e, "short window {s} vs exact {e}");
        }
        prop_assert!(
            short.fsm().num_states() <= exact.fsm().num_states(),
            "short {} vs exact {} states",
            short.fsm().num_states(),
            exact.fsm().num_states()
        );
        // Identical predictions on every observed (non-dc) history.
        let spec = exact.pattern_sets().spec();
        for &m in spec.on_set() {
            prop_assert!(short.cover().covers_minterm(m));
        }
        for &m in spec.off_set() {
            prop_assert!(!short.cover().covers_minterm(m));
        }
    }

    /// Markov model invariant: counts sum to the number of windows.
    #[test]
    fn markov_counts_match_windows(trace in trace_strategy(), n in 1usize..8) {
        prop_assume!(trace.len() > n);
        let model = MarkovModel::from_bit_trace(n, &trace).unwrap();
        prop_assert_eq!(model.total_observations() as usize, trace.len() - n);
    }

    /// Merging models is equivalent to training on the concatenation of
    /// observations.
    #[test]
    fn merge_is_sum(a in trace_strategy(), b in trace_strategy()) {
        let ma = MarkovModel::from_bit_trace(2, &a).unwrap();
        let mb = MarkovModel::from_bit_trace(2, &b).unwrap();
        let mut merged = ma.clone();
        merged.merge(&mb);
        prop_assert_eq!(
            merged.total_observations(),
            ma.total_observations() + mb.total_observations()
        );
        for (h, c) in merged.iter() {
            let ca = ma.counts(h).unwrap_or_default();
            let cb = mb.counts(h).unwrap_or_default();
            prop_assert_eq!(c.ones, ca.ones + cb.ones);
            prop_assert_eq!(c.zeros, ca.zeros + cb.zeros);
        }
    }
}
