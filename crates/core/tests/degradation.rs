//! End-to-end tests of the budget / degradation / fault-injection layer:
//! every ladder rung is forced to fire (via failpoints and via genuinely
//! tight budgets) and the returned predictor is checked to still replay
//! the training trace sensibly.

#![cfg(feature = "failpoints")]

use fsmgen::{failpoints, DesignBudget, DesignError, Designer, Rung};
use fsmgen_obs::{CollectingObsSink, ObsEvent};
use fsmgen_traces::BitTrace;
use std::sync::Arc;

fn paper_trace() -> BitTrace {
    "0000 1000 1011 1101 1110 1111".parse().unwrap()
}

fn period_trace() -> BitTrace {
    "0011".repeat(16).parse().unwrap()
}

/// Replays `trace` through the design's predictor and returns the
/// prediction accuracy over the post-warm-up suffix.
fn replay_accuracy(design: &fsmgen::Design, trace: &BitTrace, warmup: usize) -> f64 {
    let mut p = design.predictor();
    let mut correct = 0usize;
    let mut total = 0usize;
    for (i, bit) in trace.iter().enumerate() {
        if i >= warmup {
            total += 1;
            if p.predict() == bit {
                correct += 1;
            }
        }
        p.update(bit);
    }
    correct as f64 / total as f64
}

/// Clears failpoints even when the test body panics, so one failing test
/// cannot poison the thread for the next one.
struct FailpointGuard;

impl Drop for FailpointGuard {
    fn drop(&mut self) {
        failpoints::clear();
    }
}

fn with_failpoints<R>(spec: &str, body: impl FnOnce() -> R) -> R {
    let _guard = FailpointGuard;
    failpoints::clear();
    failpoints::configure_from_spec(spec).expect("test spec must parse");
    body()
}

#[test]
fn rung_one_heuristic_minimizer_fires() {
    // One injected budget failure at the minimizer: the ladder retries with
    // the heuristic and succeeds at full order.
    let design = with_failpoints("minimize=budget:1", || {
        Designer::new(4).design_from_trace(&period_trace()).unwrap()
    });
    assert_eq!(
        design.degradation().final_rung(),
        Some(Rung::HeuristicMinimizer)
    );
    assert_eq!(design.effective_history(), 4);
    // The heuristic cover is still correct: the period-4 trace replays
    // almost perfectly.
    assert!(replay_accuracy(&design, &period_trace(), 4) > 0.9);
}

#[test]
fn rung_two_reduced_order_fires() {
    // Two injected budget failures: exact → heuristic → order N-1.
    let design = with_failpoints("minimize=budget:2", || {
        Designer::new(4).design_from_trace(&period_trace()).unwrap()
    });
    assert_eq!(
        design.degradation().final_rung(),
        Some(Rung::ReducedOrder(3))
    );
    assert_eq!(design.effective_history(), 3);
    assert_eq!(design.degradation().steps().len(), 2);
    // Order 3 still resolves a period-4 pattern on the training trace.
    assert!(replay_accuracy(&design, &period_trace(), 4) > 0.9);
}

#[test]
fn rung_three_saturating_counter_fires() {
    // Unlimited budget failures at the minimizer: the ladder exhausts every
    // order and lands on the counter, which uses no minimizer at all.
    let design = with_failpoints("minimize=budget", || {
        Designer::new(4).design_from_trace(&paper_trace()).unwrap()
    });
    assert_eq!(
        design.degradation().final_rung(),
        Some(Rung::SaturatingCounter)
    );
    assert_eq!(design.effective_history(), 0);
    // Ladder walk: heuristic, orders 3..1, then the counter.
    let rungs: Vec<Rung> = design
        .degradation()
        .steps()
        .iter()
        .map(|s| s.rung)
        .collect();
    assert_eq!(
        rungs,
        vec![
            Rung::HeuristicMinimizer,
            Rung::ReducedOrder(3),
            Rung::ReducedOrder(2),
            Rung::ReducedOrder(1),
            Rung::SaturatingCounter,
        ]
    );
    // The counter still beats a coin flip on the majority-taken trace.
    assert_eq!(design.fsm().num_states(), 4);
    assert!(replay_accuracy(&design, &paper_trace(), 4) > 0.5);
}

#[test]
fn every_automaton_stage_degrades() {
    // Each automaton-construction stage, when it reports budget
    // exhaustion, sends the ladder down without panicking.
    for stage in ["patterns", "nfa", "dfa", "hopcroft", "reduce"] {
        let spec = format!("{stage}=budget:1");
        let design = with_failpoints(&spec, || {
            Designer::new(3).design_from_trace(&period_trace()).unwrap()
        });
        assert!(
            design.degradation().is_degraded(),
            "stage {stage} did not degrade"
        );
        assert_eq!(
            design.degradation().steps()[0].stage,
            stage,
            "wrong stage recorded for {stage}"
        );
    }
}

#[test]
fn hard_faults_surface_as_internal_errors() {
    for stage in ["patterns", "minimize", "nfa", "dfa", "hopcroft", "reduce"] {
        let spec = format!("{stage}=error:1");
        let err = with_failpoints(&spec, || {
            Designer::new(3)
                .design_from_trace(&period_trace())
                .unwrap_err()
        });
        match err {
            DesignError::Internal { stage: s, reason } => {
                assert_eq!(s, stage);
                assert!(reason.contains("injected"));
            }
            other => panic!("expected Internal for {stage}, got {other:?}"),
        }
    }
}

#[test]
fn counter_rung_failure_is_internal() {
    // If even the bottom rung fails, the error is typed — never a panic.
    let err = with_failpoints("minimize=budget,counter=error", || {
        Designer::new(3)
            .design_from_trace(&period_trace())
            .unwrap_err()
    });
    assert!(matches!(
        err,
        DesignError::Internal {
            stage: "counter",
            ..
        }
    ));
}

#[test]
fn degrade_off_converts_injected_budget_to_error() {
    let err = with_failpoints("dfa=budget:1", || {
        Designer::new(3)
            .degrade(false)
            .design_from_trace(&period_trace())
            .unwrap_err()
    });
    assert!(matches!(
        err,
        DesignError::BudgetExceeded { stage: "dfa", .. }
    ));
}

#[test]
fn real_budgets_and_adversarial_traces_never_panic() {
    failpoints::clear();
    // A worst-case trace for logic minimization: a de-Bruijn-flavoured
    // mixture that populates many histories with conflicting outcomes.
    let bits: String = (0..512)
        .map(|i: u32| {
            let h = i.wrapping_mul(2654435761);
            if (h >> 13) & 1 == 1 {
                '1'
            } else {
                '0'
            }
        })
        .collect();
    let nasty: BitTrace = bits.parse().unwrap();

    let budgets = [
        DesignBudget::unlimited(),
        DesignBudget {
            max_minterms: Some(1),
            ..DesignBudget::default()
        },
        DesignBudget {
            max_primes: Some(2),
            ..DesignBudget::default()
        },
        DesignBudget {
            max_nfa_states: Some(4),
            ..DesignBudget::default()
        },
        DesignBudget {
            max_dfa_states: Some(2),
            ..DesignBudget::default()
        },
        DesignBudget {
            max_minterms: Some(8),
            max_primes: Some(8),
            max_cover_nodes: Some(16),
            max_nfa_states: Some(8),
            max_dfa_states: Some(4),
            ..DesignBudget::default()
        },
    ];
    for (i, budget) in budgets.iter().enumerate() {
        for order in [1, 2, 5, 8] {
            let design = Designer::new(order)
                .budget(*budget)
                .design_from_trace(&nasty)
                .unwrap_or_else(|e| panic!("budget #{i} order {order} failed: {e}"));
            // Whatever rung it landed on, the machine must be runnable.
            let mut p = design.predictor();
            for bit in nasty.iter() {
                let _ = p.predict();
                p.update(bit);
            }
            if let Some(limit) = budget.max_dfa_states {
                assert!(design.fsm().num_states() <= limit.max(4));
            }
        }
    }
}

/// Runs `body` with a thread-local obs sink installed and returns its
/// result plus the rung events recorded during the run, in order.
fn with_rung_events<R>(body: impl FnOnce() -> R) -> (R, Vec<(String, String)>) {
    let sink = Arc::new(CollectingObsSink::new());
    let guard = fsmgen_obs::install(sink.clone());
    let result = body();
    drop(guard);
    let rungs = sink
        .events()
        .iter()
        .filter_map(|e| match e {
            ObsEvent::Rung { rung, stage, .. } => Some((rung.clone(), stage.clone())),
            _ => None,
        })
        .collect();
    (result, rungs)
}

#[test]
fn full_ladder_emits_exactly_one_rung_event_per_step() {
    // Every ladder step must surface as exactly one obs rung event with
    // the rung's display name, mirroring Design::degradation.
    let (design, rungs) = with_rung_events(|| {
        with_failpoints("minimize=budget", || {
            Designer::new(4).design_from_trace(&paper_trace()).unwrap()
        })
    });
    let names: Vec<&str> = rungs.iter().map(|(r, _)| r.as_str()).collect();
    assert_eq!(
        names,
        vec![
            "heuristic minimizer",
            "history order reduced to 3",
            "history order reduced to 2",
            "history order reduced to 1",
            "saturating-counter fallback",
        ]
    );
    // Event stream and degradation report agree 1:1.
    assert_eq!(rungs.len(), design.degradation().steps().len());
    for ((rung, stage), step) in rungs.iter().zip(design.degradation().steps()) {
        assert_eq!(rung, &step.rung.to_string());
        assert_eq!(stage, step.stage);
    }
}

#[test]
fn single_rung_emits_single_event_with_stage_attribution() {
    for stage in ["patterns", "nfa", "dfa", "hopcroft", "reduce"] {
        let spec = format!("{stage}=budget:1");
        let (design, rungs) = with_rung_events(|| {
            with_failpoints(&spec, || {
                Designer::new(3).design_from_trace(&period_trace()).unwrap()
            })
        });
        assert_eq!(rungs.len(), 1, "stage {stage} emitted {rungs:?}");
        assert_eq!(rungs[0].0, "heuristic minimizer");
        assert_eq!(rungs[0].1, stage);
        assert_eq!(design.degradation().steps().len(), 1);
    }
}

#[test]
fn undegraded_design_emits_no_rung_events() {
    failpoints::clear();
    let (design, rungs) =
        with_rung_events(|| Designer::new(4).design_from_trace(&period_trace()).unwrap());
    assert!(!design.degradation().is_degraded());
    assert!(rungs.is_empty(), "unexpected rung events: {rungs:?}");
}

#[test]
fn real_budget_degradation_emits_rung_events_too() {
    // Not just injected faults: a genuinely tight minterm budget walks
    // the ladder and every step is observable.
    failpoints::clear();
    let budget = DesignBudget {
        max_minterms: Some(1),
        ..DesignBudget::default()
    };
    let (design, rungs) = with_rung_events(|| {
        Designer::new(4)
            .budget(budget)
            .design_from_trace(&paper_trace())
            .unwrap()
    });
    assert!(design.degradation().is_degraded());
    assert_eq!(rungs.len(), design.degradation().steps().len());
    assert_eq!(
        rungs.last().map(|(r, _)| r.as_str()),
        Some("saturating-counter fallback")
    );
}

#[test]
fn expired_deadline_design_still_succeeds() {
    failpoints::clear();
    // A deadline in the past: exact minimization aborts, but the heuristic
    // treats it as "stop improving" and the ladder completes.
    let budget = DesignBudget {
        deadline: Some(std::time::Instant::now() - std::time::Duration::from_secs(1)),
        ..DesignBudget::default()
    };
    let design = Designer::new(4)
        .budget(budget)
        .design_from_trace(&period_trace())
        .unwrap();
    // The automaton stages also honour the deadline, so the ladder may run
    // all the way to the counter — the guarantee is a usable machine plus a
    // populated report, not a quality bound.
    assert!(design.degradation().is_degraded());
    let mut p = design.predictor();
    for bit in period_trace().iter() {
        let _ = p.predict();
        p.update(bit);
    }
}
