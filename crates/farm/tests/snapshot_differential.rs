//! Differential harness: cache-backed (warm-snapshot) designs must be
//! bit-identical to cold designs, across a matrix of workloads and
//! history lengths — and the warm run must not touch the design pipeline
//! at all (zero minimize/QM/espresso activity, asserted via obs events).

use fsmgen::Designer;
use fsmgen_farm::{DesignJob, Farm, FarmConfig};
use fsmgen_obs::{CollectingObsSink, ObsEvent};
use fsmgen_synth::{synthesize_area, Encoding};
use fsmgen_testkit::{workload_matrix, HISTORIES};
use fsmgen_traces::BitTrace;
use std::path::PathBuf;
use std::sync::Arc;

fn jobs() -> Vec<(String, DesignJob)> {
    let mut jobs = Vec::new();
    let mut id = 0u64;
    // The canonical deterministic workload matrix, shared with the serve
    // e2e differential so both harnesses pin the same designs.
    for (name, trace) in workload_matrix() {
        for history in HISTORIES {
            jobs.push((
                format!("{name}/h{history}"),
                DesignJob::from_trace(id, Arc::clone(&trace), Designer::new(history)),
            ));
            id += 1;
        }
    }
    jobs
}

fn tmp_snapshot(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fsmgen-diff-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("cache.fsnap")
}

#[test]
fn warm_designs_are_bit_identical_to_cold_and_skip_the_pipeline() {
    let path = tmp_snapshot("matrix");
    let labels: Vec<String> = jobs().iter().map(|(l, _)| l.clone()).collect();

    // Cold pass: design the whole matrix from scratch and persist.
    let cold = Farm::new(FarmConfig {
        workers: 2,
        cache_capacity: 64,
    });
    let cold_report = cold.design_batch(jobs().into_iter().map(|(_, j)| j).collect());
    assert_eq!(cold_report.metrics.failed, 0, "cold matrix must succeed");
    let saved = cold.save_cache_snapshot(&path).unwrap();
    assert_eq!(saved, labels.len(), "every unique job should be persisted");

    // Warm pass: one worker so every job runs inline on this thread,
    // which a thread-local obs sink then observes completely.
    let warm = Farm::new(FarmConfig {
        workers: 1,
        cache_capacity: 64,
    });
    let loaded = warm.load_cache_snapshot(&path).unwrap();
    assert_eq!(loaded.loaded, labels.len());
    assert_eq!(loaded.skipped, 0);

    let obs_sink = Arc::new(CollectingObsSink::new());
    let _guard = fsmgen_obs::install(Arc::clone(&obs_sink) as Arc<dyn fsmgen_obs::ObsSink>);
    let warm_report = warm.design_batch(jobs().into_iter().map(|(_, j)| j).collect());
    drop(_guard);

    // Every job must be served from the snapshot.
    assert_eq!(
        warm_report.metrics.cache.snapshot_hits as usize,
        labels.len(),
        "warm run must serve everything from the snapshot: {:?}",
        warm_report.metrics.cache
    );
    assert_eq!(warm_report.metrics.cache.misses, 0);
    assert_eq!(warm_report.metrics.cache.stale, 0);

    // Zero design-pipeline activity: no minimize span, no QM/espresso
    // counters, in fact no design span at all.
    for event in obs_sink.events() {
        match event {
            ObsEvent::SpanStart { name, .. } | ObsEvent::SpanEnd { name, .. } => {
                assert!(
                    !matches!(
                        name,
                        "design" | "patterns" | "minimize" | "regex" | "nfa" | "dfa"
                    ),
                    "warm run entered pipeline stage {name:?}"
                );
            }
            ObsEvent::Counter { span, name, .. } => {
                assert_ne!(span, "minimize", "warm run ran the minimizer ({name})");
            }
            _ => {}
        }
    }

    // Bit-identical designs: states, outputs, start, area, degradation.
    for (i, label) in labels.iter().enumerate() {
        let id = i as u64;
        let cold_design = cold_report
            .design(id)
            .unwrap_or_else(|| panic!("{label} cold"));
        let warm_design = warm_report
            .design(id)
            .unwrap_or_else(|| panic!("{label} warm"));
        assert_eq!(
            cold_design.fsm().transitions(),
            warm_design.fsm().transitions(),
            "{label}: transition tables differ"
        );
        assert_eq!(
            cold_design.fsm().outputs(),
            warm_design.fsm().outputs(),
            "{label}: outputs differ"
        );
        assert_eq!(
            cold_design.fsm().start(),
            warm_design.fsm().start(),
            "{label}"
        );
        assert_eq!(
            cold_design.degradation().final_rung(),
            warm_design.degradation().final_rung(),
            "{label}: degradation rungs differ"
        );
        assert_eq!(
            cold_design.effective_history(),
            warm_design.effective_history(),
            "{label}: effective history differs"
        );
        // The synthesized area estimate is a pure function of the machine,
        // so equality here pins the whole downstream cost model.
        let cold_area = synthesize_area(cold_design.fsm(), Encoding::Binary);
        let warm_area = synthesize_area(warm_design.fsm(), Encoding::Binary);
        assert_eq!(cold_area.flip_flops, warm_area.flip_flops, "{label}");
        assert_eq!(
            cold_area.area.to_bits(),
            warm_area.area.to_bits(),
            "{label}: area estimates differ bitwise"
        );
        // And the full structural equality, covering every retained
        // intermediate artifact (model, pattern sets, cover, regex).
        assert_eq!(**cold_design, **warm_design, "{label}: designs differ");
    }

    std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
}

#[test]
fn warm_start_composes_with_new_jobs() {
    // A snapshot covering part of a batch: the covered jobs hit warm, the
    // rest compute fresh, and both kinds land in the next snapshot.
    let path = tmp_snapshot("compose");
    let trace: Arc<BitTrace> = Arc::new(fsmgen_testkit::periodic_trace(40));

    let cold = Farm::new(FarmConfig {
        workers: 1,
        cache_capacity: 16,
    });
    let _ = cold.design_batch(vec![DesignJob::from_trace(
        0,
        Arc::clone(&trace),
        Designer::new(2),
    )]);
    cold.save_cache_snapshot(&path).unwrap();

    let warm = Farm::new(FarmConfig {
        workers: 1,
        cache_capacity: 16,
    });
    warm.load_cache_snapshot(&path).unwrap();
    let report = warm.design_batch(vec![
        DesignJob::from_trace(0, Arc::clone(&trace), Designer::new(2)), // warm hit
        DesignJob::from_trace(1, Arc::clone(&trace), Designer::new(3)), // fresh
    ]);
    assert_eq!(report.metrics.cache.snapshot_hits, 1);
    assert_eq!(report.metrics.cache.misses, 1);
    assert_eq!(report.metrics.succeeded, 2);

    // Re-saving now persists both designs.
    assert_eq!(warm.save_cache_snapshot(&path).unwrap(), 2);
    let third = Farm::new(FarmConfig {
        workers: 1,
        cache_capacity: 16,
    });
    assert_eq!(third.load_cache_snapshot(&path).unwrap().loaded, 2);

    std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
}
