//! Fault-injection e2e: a poisoned job must fail (or degrade) with a
//! typed error while the rest of the batch completes normally — no stall,
//! no poisoning, no lost outcomes.
//!
//! These tests arm the *process-global* failpoint registry (worker
//! threads cannot see thread-local failpoints), so they live in their own
//! integration-test binary and serialize on a lock: Rust runs the tests
//! in this file on parallel threads within one process.

use fsmgen::{failpoints, Designer};
use fsmgen_farm::{DesignJob, Farm, FarmConfig, FarmError};
use fsmgen_traces::BitTrace;
use std::sync::{Arc, Mutex, PoisonError};

static GLOBAL_FAILPOINT_LOCK: Mutex<()> = Mutex::new(());

fn batch(n: usize) -> Vec<DesignJob> {
    let trace: Arc<BitTrace> = Arc::new("0000 1000 1011 1101 1110 1111".parse().expect("trace"));
    (0..n)
        .map(|i| DesignJob::from_trace(i as u64, Arc::clone(&trace), Designer::new(2)))
        .collect()
}

#[test]
fn one_injected_error_fails_one_job_without_stalling_the_batch() {
    let _guard = GLOBAL_FAILPOINT_LOCK
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    failpoints::configure_from_spec_global("farm-worker=error:1").expect("spec");

    let farm = Farm::new(FarmConfig {
        workers: 2,
        cache_capacity: 0, // every job computes, so exactly one can trip
    });
    let report = farm.design_batch(batch(6));
    failpoints::clear_global();

    // The batch ran to completion: every submitted job reports back, in
    // submission order.
    let ids: Vec<u64> = report.outcomes.iter().map(|o| o.id).collect();
    assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);

    let injected: Vec<&FarmError> = report
        .outcomes
        .iter()
        .filter_map(|o| o.result.as_ref().err())
        .collect();
    assert_eq!(injected.len(), 1, "exactly one job trips the failpoint");
    assert!(
        matches!(injected[0], FarmError::InjectedFault { .. }),
        "typed error, got: {}",
        injected[0]
    );
    assert_eq!(report.metrics.failed, 1);
    assert_eq!(report.metrics.succeeded, 5);

    // The error carries a message and a non-source (it was injected, not
    // caused by a design failure).
    assert!(!injected[0].to_string().is_empty());
}

#[test]
fn one_injected_budget_squeeze_degrades_one_job_and_the_rest_are_untouched() {
    let _guard = GLOBAL_FAILPOINT_LOCK
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    failpoints::configure_from_spec_global("farm-worker=budget:1").expect("spec");

    let farm = Farm::new(FarmConfig {
        workers: 2,
        cache_capacity: 0,
    });
    let report = farm.design_batch(batch(6));
    failpoints::clear_global();

    // A budget squeeze degrades rather than fails: everything succeeds,
    // exactly one design walked the degradation ladder.
    assert_eq!(report.metrics.failed, 0);
    assert_eq!(report.metrics.succeeded, 6);
    assert_eq!(report.metrics.degraded, 1, "one job must degrade");
    let degraded: Vec<_> = report
        .outcomes
        .iter()
        .filter(|o| {
            o.result
                .as_ref()
                .is_ok_and(|d| d.degradation().is_degraded())
        })
        .collect();
    assert_eq!(degraded.len(), 1);
    assert!(!report.metrics.rung_histogram.is_empty());
}

#[test]
fn unarmed_farm_is_fault_free() {
    let _guard = GLOBAL_FAILPOINT_LOCK
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    failpoints::clear_global();

    let farm = Farm::new(FarmConfig {
        workers: 2,
        cache_capacity: 0,
    });
    let report = farm.design_batch(batch(4));
    assert_eq!(report.metrics.failed, 0);
    assert_eq!(report.metrics.degraded, 0);
    assert_eq!(report.metrics.succeeded, 4);
}
