//! End-to-end determinism: the farm-backed history sweep must be
//! bit-identical to the sequential [`fsmgen::sweep_histories`] at every
//! worker count. The pool reassembles results by submission index and the
//! design flow itself is deterministic, so nothing about scheduling may
//! leak into the produced machines, covers or replayed accuracies.

use fsmgen::{sweep_histories, Designer, SweepPoint};
use fsmgen_farm::{sweep_histories_parallel, Farm, FarmConfig};
use fsmgen_traces::BitTrace;

/// A biased pseudo-random trace from a fixed xorshift seed: irregular
/// enough to exercise the full design flow, deterministic run to run.
fn biased_trace(len: usize, seed: u64) -> BitTrace {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // ~75% taken, like a loop-heavy branch.
            !state.is_multiple_of(4)
        })
        .collect()
}

const HISTORIES: [usize; 6] = [1, 2, 3, 4, 6, 8];

/// Every field that defines a sweep point must match exactly — machine,
/// cover, degradation record and the accuracy bits (no float tolerance:
/// the replay is the same arithmetic in the same order).
fn assert_points_identical(seq: &[SweepPoint], farm: &[SweepPoint], label: &str) {
    assert_eq!(seq.len(), farm.len(), "{label}: point count diverged");
    for (s, f) in seq.iter().zip(farm) {
        assert_eq!(s.history, f.history, "{label}: history order diverged");
        assert_eq!(
            s.design.fsm(),
            f.design.fsm(),
            "{label}: machine diverged at history {}",
            s.history
        );
        assert_eq!(
            s.design.cover(),
            f.design.cover(),
            "{label}: cover diverged at history {}",
            s.history
        );
        assert_eq!(
            s.design.effective_history(),
            f.design.effective_history(),
            "{label}: effective history diverged at history {}",
            s.history
        );
        assert_eq!(
            s.design.degradation(),
            f.design.degradation(),
            "{label}: degradation record diverged at history {}",
            s.history
        );
        assert_eq!(
            s.training_accuracy.to_bits(),
            f.training_accuracy.to_bits(),
            "{label}: training accuracy diverged at history {}",
            s.history
        );
    }
}

#[test]
fn farm_sweep_matches_sequential_at_every_worker_count() {
    let trace = biased_trace(1500, 0x5eed);
    let seq = sweep_histories(&trace, HISTORIES, |d| d).expect("sequential sweep");
    assert!(!seq.is_empty(), "sweep must produce points");

    for workers in [1usize, 2, 8] {
        let farm = Farm::new(FarmConfig {
            workers,
            cache_capacity: 64,
        });
        let points = farm
            .sweep_histories(&trace, HISTORIES, |d| d)
            .expect("farm sweep");
        assert_points_identical(&seq, &points, &format!("{workers} workers"));
    }
}

#[test]
fn free_function_sweep_matches_sequential() {
    let trace = biased_trace(1200, 0xfeed);
    let seq = sweep_histories(&trace, HISTORIES, |d| d).expect("sequential sweep");
    for workers in [1usize, 2, 8] {
        let points =
            sweep_histories_parallel(&trace, HISTORIES, |d| d, workers).expect("parallel sweep");
        assert_points_identical(&seq, &points, &format!("free fn, {workers} workers"));
    }
}

#[test]
fn configured_sweep_stays_deterministic() {
    // A non-default configuration (tighter threshold, no don't-cares)
    // exercises a different path through pattern extraction; the farm must
    // thread it through unchanged.
    let trace = biased_trace(1000, 0xabcd);
    let configure = |d: Designer| d.prob_threshold(0.7).dont_care_fraction(0.0);
    let seq = sweep_histories(&trace, [2usize, 4, 6], configure).expect("sequential sweep");
    for workers in [2usize, 8] {
        let points = sweep_histories_parallel(&trace, [2usize, 4, 6], configure, workers)
            .expect("parallel sweep");
        assert_points_identical(&seq, &points, &format!("configured, {workers} workers"));
    }
}

#[test]
fn repeated_farm_sweeps_are_self_consistent() {
    // Two sweeps on the same warm farm: the second is served from the
    // cache and must still reproduce the first exactly.
    let trace = biased_trace(900, 0x1234);
    let farm = Farm::new(FarmConfig {
        workers: 2,
        cache_capacity: 64,
    });
    let first = farm
        .sweep_histories(&trace, HISTORIES, |d| d)
        .expect("first sweep");
    let second = farm
        .sweep_histories(&trace, HISTORIES, |d| d)
        .expect("second sweep");
    assert_points_identical(&first, &second, "warm-cache repeat");
}
