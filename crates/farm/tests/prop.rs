//! Property tests for the design cache's correctness contract: the
//! fingerprint must separate any two jobs that could produce different
//! designs, and a cache hit must be indistinguishable from designing from
//! scratch.

use fsmgen::Designer;
use fsmgen_farm::{DesignJob, Farm, FarmConfig};
use fsmgen_testkit::strategies::design_bits as bits_strategy;
use fsmgen_traces::BitTrace;
use proptest::prelude::*;
use std::sync::Arc;

fn job_for(bits: &[bool], designer: Designer) -> DesignJob {
    let trace: BitTrace = bits.iter().copied().collect();
    DesignJob::from_trace(0, Arc::new(trace), designer)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flipping any single trace bit must change the fingerprint — the
    /// cache would otherwise serve a design for behaviour that was never
    /// observed.
    #[test]
    fn one_bit_flip_changes_the_fingerprint(
        bits in bits_strategy(),
        raw_index in 0usize..4096,
    ) {
        let mut flipped = bits.clone();
        let index = raw_index % flipped.len();
        flipped[index] = !flipped[index];

        let original = job_for(&bits, Designer::new(3));
        let altered = job_for(&flipped, Designer::new(3));
        prop_assert!(original.fingerprint().is_some());
        prop_assert_ne!(
            original.fingerprint(),
            altered.fingerprint(),
            "bit {} flip must re-key the job",
            index
        );
    }

    /// Changing any single output-affecting configuration field must
    /// change the fingerprint.
    #[test]
    fn one_config_field_change_changes_the_fingerprint(bits in bits_strategy()) {
        let base = job_for(&bits, Designer::new(3));
        let variants = [
            job_for(&bits, Designer::new(4)),
            job_for(&bits, Designer::new(3).prob_threshold(0.8)),
            job_for(&bits, Designer::new(3).dont_care_fraction(0.25)),
            job_for(&bits, Designer::new(3).degrade(false)),
            job_for(
                &bits,
                Designer::new(3).algorithm(fsmgen_logicmin::Algorithm::Heuristic),
            ),
            job_for(
                &bits,
                Designer::new(3).budget(fsmgen::DesignBudget {
                    max_dfa_states: Some(128),
                    ..fsmgen::DesignBudget::default()
                }),
            ),
        ];
        for (which, v) in variants.iter().enumerate() {
            prop_assert_ne!(
                base.fingerprint(),
                v.fingerprint(),
                "config variant {} must re-key the job",
                which
            );
        }
    }

    /// A design served from the cache must equal a design computed from
    /// scratch, field for field.
    #[test]
    fn cache_hit_is_indistinguishable_from_fresh_design(
        bits in bits_strategy(),
        history in 1usize..5,
    ) {
        let trace: BitTrace = bits.iter().copied().collect();
        let fresh = Designer::new(history).design_from_trace(&trace);

        let farm = Farm::new(FarmConfig { workers: 2, cache_capacity: 16 });
        let shared = Arc::new(trace);
        let make = |id| DesignJob::from_trace(id, Arc::clone(&shared), Designer::new(history));
        // First batch populates the cache, second batch must hit it.
        let cold = farm.design_batch(vec![make(0)]);
        let warm = farm.design_batch(vec![make(1)]);

        match fresh {
            Ok(expected) => {
                prop_assert_eq!(warm.metrics.cache.hits, 1, "second batch must hit");
                for report in [&cold, &warm] {
                    let got = report.outcomes[0]
                        .result
                        .as_ref()
                        .expect("farm must succeed where the designer does");
                    prop_assert_eq!(expected.fsm(), got.fsm());
                    prop_assert_eq!(expected.cover(), got.cover());
                    prop_assert_eq!(expected.effective_history(), got.effective_history());
                    prop_assert_eq!(expected.degradation(), got.degradation());
                }
            }
            Err(_) => {
                // Errors are not cached; both farm runs must fail too.
                prop_assert!(cold.outcomes[0].result.is_err());
                prop_assert!(warm.outcomes[0].result.is_err());
            }
        }
    }
}
