//! Property tests for the persistent snapshot codec: arbitrary designs
//! round-trip exactly, and arbitrary corruption (truncation, bit flips,
//! random garbage) never panics — it either yields a structured
//! [`SnapshotError`] or a per-record skip count.

use fsmgen::{Design, Designer};
use fsmgen_farm::{decode_design, decode_snapshot, encode_design, encode_snapshot, SnapshotError};
use fsmgen_traces::BitTrace;
use proptest::prelude::*;

/// Parameters for arbitrary designs — the population the cache stores.
/// The design itself is built in the test body (the vendored proptest has
/// no filtering combinator).
fn design_params() -> impl Strategy<Value = (Vec<bool>, usize, f64, f64)> {
    (
        proptest::collection::vec(any::<bool>(), 24..120),
        1usize..5,
        prop_oneof![Just(0.5f64), Just(0.7), Just(0.9)],
        prop_oneof![Just(0.0f64), Just(0.05)],
    )
}

/// Designs from the generated parameters; `None` for the rare parameter
/// combination the designer rejects (those cases are vacuously passed).
fn make_design((bits, history, thr, dc): &(Vec<bool>, usize, f64, f64)) -> Option<Design> {
    let trace: BitTrace = bits.iter().copied().collect();
    Designer::new(*history)
        .prob_threshold(*thr)
        .dont_care_fraction(*dc)
        .design_from_trace(&trace)
        .ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// encode → decode is the identity on designs, including every
    /// retained intermediate artifact.
    #[test]
    fn design_payload_round_trips(params in design_params()) {
        let Some(design) = make_design(&params) else { return Ok(()); };
        let bytes = encode_design(&design);
        let back = decode_design(&bytes).expect("decoding our own encoding");
        prop_assert_eq!(design, back);
    }

    /// Whole snapshots round-trip with fingerprints and verify digests
    /// intact and nothing skipped.
    #[test]
    fn snapshot_round_trips(params in design_params(), fp in any::<u64>(), verify in any::<u64>()) {
        let Some(design) = make_design(&params) else { return Ok(()); };
        let bytes = encode_snapshot([(fp, verify, &design)]);
        let decoded = decode_snapshot(&bytes).expect("header is valid");
        prop_assert_eq!(decoded.skipped, 0);
        prop_assert_eq!(decoded.records.len(), 1);
        prop_assert_eq!(decoded.records[0].fingerprint, fp);
        prop_assert_eq!(decoded.records[0].verify, verify);
        prop_assert_eq!(&*decoded.records[0].design, &design);
    }

    /// Truncating a snapshot anywhere never panics: either a structured
    /// header error or records accounted for as decoded + skipped.
    #[test]
    fn truncation_never_panics(params in design_params(), frac in 0.0f64..1.0) {
        let Some(design) = make_design(&params) else { return Ok(()); };
        let bytes = encode_snapshot([(1u64, 2u64, &design), (3u64, 4u64, &design)]);
        let cut = ((bytes.len() as f64) * frac) as usize;
        match decode_snapshot(&bytes[..cut]) {
            Err(SnapshotError::TruncatedHeader) => prop_assert!(cut < 16),
            Err(e) => prop_assert!(false, "unexpected error kind: {e}"),
            Ok(decoded) => {
                prop_assert_eq!(
                    decoded.records.len() + decoded.skipped,
                    2,
                    "records must be decoded or counted, never lost"
                );
            }
        }
    }

    /// Flipping any single byte never panics and never loses accounting:
    /// every declared record is either decoded or counted as skipped.
    #[test]
    fn byte_flips_never_panic(
        params in design_params(),
        raw_index in 0usize..65536,
        flip in 1u8..=255,
    ) {
        let Some(design) = make_design(&params) else { return Ok(()); };
        let bytes = encode_snapshot([(1u64, 2u64, &design), (3u64, 4u64, &design)]);
        let index = raw_index % bytes.len();
        let mut corrupted = bytes.clone();
        corrupted[index] ^= flip;
        match decode_snapshot(&corrupted) {
            // Corrupting the magic or version is a structured error.
            Err(SnapshotError::BadMagic) => prop_assert!(index < 8),
            Err(SnapshotError::UnsupportedVersion(_)) => {
                prop_assert!((8..12).contains(&index));
            }
            Err(e) => prop_assert!(false, "unexpected error kind: {e}"),
            Ok(decoded) => {
                // A corrupted record-count field may under- or over-declare;
                // past the header, decoded + skipped covers the declaration.
                if !(12..16).contains(&index) {
                    prop_assert_eq!(decoded.records.len() + decoded.skipped, 2);
                    // A flip inside a record must not corrupt the *other*
                    // record silently: whatever survived decodes equal to
                    // the original design.
                    for rec in &decoded.records {
                        prop_assert_eq!(&*rec.design, &design);
                    }
                }
            }
        }
    }

    /// Arbitrary garbage bytes never panic the decoder.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_snapshot(&bytes);
    }

    /// Random bytes with a valid header never panic the record decoder
    /// either — everything lands in records or the skip count.
    #[test]
    fn garbage_records_behind_valid_header_never_panic(
        declared in 0u32..8,
        body in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"FSMFARMS");
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&declared.to_le_bytes());
        bytes.extend_from_slice(&body);
        let decoded = decode_snapshot(&bytes).expect("header is valid");
        prop_assert_eq!(decoded.records.len() + decoded.skipped, declared as usize);
    }

    /// Garbage payload bytes never panic `decode_design` directly.
    #[test]
    fn garbage_design_payloads_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_design(&bytes);
    }
}
