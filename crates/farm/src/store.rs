//! Durable log-structured design-cache store: crash-safe appends,
//! torn-write recovery, generation stamps and online compaction.
//!
//! Where [`snapshot`](crate::snapshot) persists the cache as a
//! whole-file image written once at clean exit, this module keeps an
//! **append log** that grows by one record per computed design while
//! the process serves. A `kill -9` loses at most the appends since the
//! last fsync (bounded by [`StoreConfig::flush_every`] /
//! [`StoreConfig::flush_interval`]), not the whole session.
//!
//! # File format (log version 1)
//!
//! All integers are little-endian.
//!
//! ```text
//! header   := magic (8 bytes, "FSMFARML") version (u32) reserved (u32)
//! record   := fingerprint (u64) verify (u64) generation (u32)
//!             payload_len (u32) payload (payload_len bytes) checksum (u64)
//! checksum := FNV-1a over fingerprint_le ‖ verify_le ‖ generation_le(u64) ‖ payload
//! ```
//!
//! The payload is the same self-contained [`Design`] encoding the
//! snapshot format uses ([`encode_design`](crate::encode_design)), so
//! both formats share one validating codec. The generation stamp
//! records which store *session* (one [`DesignStore::open`] to the next)
//! wrote the record; compaction can drop generations older than a TTL.
//!
//! # Recovery
//!
//! [`DesignStore::open`] replays the log front to back:
//!
//! - a record whose framing is intact but whose checksum or payload
//!   decode fails is **skipped and counted** ([`StoreStats::skipped`]) —
//!   the classic snapshot corruption policy, never a panic;
//! - when the bytes run out mid-record — a torn tail from a crash
//!   between `write` and `fsync` — the file is **truncated back to the
//!   end of the last framed record** ([`StoreStats::truncated`] counts
//!   truncation events) and appending resumes from there;
//! - a legacy [`SNAPSHOT_MAGIC`](crate::SNAPSHOT_MAGIC) file is migrated
//!   in place: its records are replayed oldest-first into a fresh log
//!   (written atomically, temp + rename) and counted in
//!   [`StoreStats::migrated`]. PR 4 snapshot files therefore keep
//!   loading, once, after which the file is a log.
//!
//! # Compaction
//!
//! [`DesignStore::compact`] rewrites the log atomically keeping, per
//! fingerprint, only the newest record, optionally bounded by a maximum
//! record count ([`CompactPolicy::keep`], newest win) and a generation
//! TTL ([`CompactPolicy::max_generations`]). The append handle is
//! reopened on the rewritten file, so compaction is safe on a live
//! store between appends.

use crate::fnv::Fnv1a;
use crate::snapshot::{
    decode_design, decode_snapshot, encode_design, SnapshotError, SNAPSHOT_MAGIC,
};
use fsmgen::Design;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Magic bytes identifying a log-structured design store.
pub const STORE_MAGIC: [u8; 8] = *b"FSMFARML";

/// The log format version this build writes and reads.
pub const STORE_VERSION: u32 = 1;

/// Fixed byte length of the log header (magic + version + reserved).
const STORE_HEADER_LEN: usize = 16;

/// Fixed byte length of a record's frame prefix
/// (fingerprint + verify + generation + payload_len).
const FRAME_PREFIX_LEN: usize = 8 + 8 + 4 + 4;

/// Tuning knobs for append durability.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Fsync after this many unflushed appends (0 behaves as 1: every
    /// append syncs).
    pub flush_every: usize,
    /// Fsync when the oldest unflushed append is at least this old,
    /// checked on the next append or explicit [`DesignStore::flush`].
    pub flush_interval: Duration,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            flush_every: 8,
            flush_interval: Duration::from_millis(200),
        }
    }
}

/// What compaction keeps. The default policy only deduplicates
/// (newest record per fingerprint wins).
#[derive(Debug, Clone, Copy, Default)]
pub struct CompactPolicy {
    /// Keep at most this many records (the newest ones).
    pub keep: Option<usize>,
    /// Drop records more than this many generations older than the
    /// current session's generation (`0` keeps only records written by
    /// the current session).
    pub max_generations: Option<u32>,
}

/// Cumulative durability counters for one store handle. Mirrored into
/// the farm metrics JSON as the `store` block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records appended through this handle.
    pub appends: u64,
    /// Fsync batches issued (every append is written immediately; this
    /// counts the durability points).
    pub flushes: u64,
    /// Valid records replayed from the log on open.
    pub recovered: u64,
    /// Corrupt-but-framed records skipped on open or re-read.
    pub skipped: u64,
    /// Torn-tail truncation events (crash recovery cut the file back to
    /// the last framed record).
    pub truncated: u64,
    /// Records dropped by compaction (stale generations, over-budget
    /// cold entries, superseded duplicates and corrupt frames).
    pub compacted: u64,
    /// Records migrated from a legacy snapshot-format file.
    pub migrated: u64,
}

/// A whole-store failure: the file cannot serve as a log at all.
/// Per-record corruption is *not* an error — see the module docs.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// The file could not be read, written or renamed.
    Io(std::io::Error),
    /// The file is neither a log ([`STORE_MAGIC`]) nor a legacy
    /// snapshot ([`SNAPSHOT_MAGIC`](crate::SNAPSHOT_MAGIC)).
    BadMagic,
    /// The file declares a format version this build does not understand.
    UnsupportedVersion(u32),
    /// The file ends before its header does (and does not look like a
    /// torn store header, which would be recovered instead).
    TruncatedHeader,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::BadMagic => f.write_str("not a design store (bad magic)"),
            StoreError::UnsupportedVersion(v) => write!(
                f,
                "unsupported store version {v} (this build reads version {STORE_VERSION})"
            ),
            StoreError::TruncatedHeader => f.write_str("store file shorter than its header"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<SnapshotError> for StoreError {
    fn from(e: SnapshotError) -> Self {
        match e {
            SnapshotError::Io(io) => StoreError::Io(io),
            SnapshotError::BadMagic => StoreError::BadMagic,
            SnapshotError::UnsupportedVersion(v) => StoreError::UnsupportedVersion(v),
            _ => StoreError::TruncatedHeader,
        }
    }
}

/// One successfully replayed store record.
#[derive(Debug, Clone)]
pub struct StoreRecord {
    /// The job fingerprint the design was cached under.
    pub fingerprint: u64,
    /// The independent verification digest of the producing job.
    pub verify: u64,
    /// The store session that wrote the record (0 for records read out
    /// of a legacy snapshot file).
    pub generation: u32,
    /// The design itself.
    pub design: Arc<Design>,
}

/// What one compaction pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Records surviving in the rewritten log.
    pub kept: usize,
    /// Records dropped (duplicates, stale generations, over-budget
    /// entries and corrupt frames).
    pub dropped: usize,
}

/// Which on-disk format [`read_design_file`] found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreFormat {
    /// A legacy one-shot snapshot (`FSMFARMS`).
    SnapshotV1,
    /// A log-structured store (`FSMFARML`).
    LogV1,
}

impl fmt::Display for StoreFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreFormat::SnapshotV1 => f.write_str("snapshot v1"),
            StoreFormat::LogV1 => f.write_str("log v1"),
        }
    }
}

/// The result of a read-only decode of either persistence format.
#[derive(Debug, Clone)]
pub struct DecodedStore {
    /// Records that replayed cleanly, oldest first.
    pub records: Vec<StoreRecord>,
    /// Corrupt-but-framed records that were skipped.
    pub skipped: usize,
    /// Torn tails found (0 or 1; the file is *not* modified).
    pub truncated: usize,
    /// The format the file was in.
    pub format: StoreFormat,
}

/// The FNV-1a digest guarding one log record. It covers the frame
/// fields as well as the payload, so a flipped byte anywhere inside a
/// record — including its length field, which changes the hashed
/// payload slice — is detected.
fn store_checksum(fingerprint: u64, verify: u64, generation: u32, payload: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(fingerprint);
    h.write_u64(verify);
    h.write_u64(u64::from(generation));
    h.write(payload);
    h.finish()
}

fn encode_record(fingerprint: u64, verify: u64, generation: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_PREFIX_LEN + payload.len() + 8);
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&verify.to_le_bytes());
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&store_checksum(fingerprint, verify, generation, payload).to_le_bytes());
    out
}

fn store_header() -> [u8; STORE_HEADER_LEN] {
    let mut h = [0u8; STORE_HEADER_LEN];
    h[..8].copy_from_slice(&STORE_MAGIC);
    h[8..12].copy_from_slice(&STORE_VERSION.to_le_bytes());
    h
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&bytes[at..at + 4]);
    u32::from_le_bytes(a)
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(a)
}

/// What replaying a log body found.
struct Replay {
    records: Vec<StoreRecord>,
    skipped: usize,
    /// Byte offset just past the last framed record: everything beyond
    /// is a torn tail.
    good_end: usize,
    max_generation: u32,
}

/// Replays log `bytes` (which must carry a valid header) front to back.
/// Framed-but-corrupt records are skipped and counted; the first
/// out-of-bytes condition ends the replay with `good_end` marking the
/// torn-tail boundary.
fn replay_log(bytes: &[u8]) -> Result<Replay, StoreError> {
    debug_assert!(bytes.len() >= STORE_HEADER_LEN);
    let version = read_u32(bytes, 8);
    if version != STORE_VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let mut replay = Replay {
        records: Vec::new(),
        skipped: 0,
        good_end: STORE_HEADER_LEN,
        max_generation: 0,
    };
    let mut pos = STORE_HEADER_LEN;
    while pos < bytes.len() {
        if bytes.len() - pos < FRAME_PREFIX_LEN {
            break; // torn mid-prefix
        }
        let fingerprint = read_u64(bytes, pos);
        let verify = read_u64(bytes, pos + 8);
        let generation = read_u32(bytes, pos + 16);
        let payload_len = read_u32(bytes, pos + 20) as usize;
        let Some(record_end) = pos
            .checked_add(FRAME_PREFIX_LEN)
            .and_then(|p| p.checked_add(payload_len))
            .and_then(|p| p.checked_add(8))
        else {
            break; // absurd length: unrecoverable past this point
        };
        if record_end > bytes.len() {
            break; // torn mid-payload (or a corrupted length — same cut)
        }
        let payload = &bytes[pos + FRAME_PREFIX_LEN..record_end - 8];
        let stored = read_u64(bytes, record_end - 8);
        pos = record_end;
        replay.good_end = pos;
        if stored != store_checksum(fingerprint, verify, generation, payload) {
            replay.skipped += 1;
            continue;
        }
        match decode_design(payload) {
            Ok(design) => {
                replay.max_generation = replay.max_generation.max(generation);
                replay.records.push(StoreRecord {
                    fingerprint,
                    verify,
                    generation,
                    design: Arc::new(design),
                });
            }
            Err(_) => replay.skipped += 1,
        }
    }
    Ok(replay)
}

/// Writes a complete log (header + `records` in order) atomically: a
/// sibling temporary file is fsync'd and renamed over `path`.
fn write_log_atomic(path: &Path, records: &[StoreRecord]) -> Result<(), StoreError> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&store_header());
    for rec in records {
        let payload = encode_design(&rec.design);
        bytes.extend_from_slice(&encode_record(
            rec.fingerprint,
            rec.verify,
            rec.generation,
            &payload,
        ));
    }
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// An open, appendable design store.
///
/// Obtained from [`DesignStore::open`], which also returns the records
/// recovered from disk (oldest first — insert them in order and the
/// newest record ends up most recently used).
#[derive(Debug)]
pub struct DesignStore {
    path: PathBuf,
    file: fs::File,
    config: StoreConfig,
    /// The generation stamped onto this session's appends.
    generation: u32,
    stats: StoreStats,
    pending: usize,
    last_flush: Instant,
}

impl DesignStore {
    /// Opens (or creates) the store at `path`, running crash recovery,
    /// and returns the handle plus the recovered records oldest-first.
    ///
    /// A missing or empty file becomes a fresh generation-1 log. A
    /// legacy snapshot file is migrated (see the module docs). A log
    /// with a torn tail is truncated back to its last framed record.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] for I/O failures and files that are
    /// neither format (the caller should fall back to a cold cache,
    /// never overwrite the file).
    pub fn open(
        path: &Path,
        config: StoreConfig,
    ) -> Result<(DesignStore, Vec<StoreRecord>), StoreError> {
        let mut stats = StoreStats::default();
        let bytes = match fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };

        let (records, generation) = if bytes.is_empty() {
            // Fresh store (or an empty file left by `touch`).
            write_log_atomic(path, &[])?;
            (Vec::new(), 1)
        } else if bytes.len() < STORE_HEADER_LEN {
            if STORE_MAGIC.starts_with(&bytes[..bytes.len().min(8)]) {
                // A header torn mid-write: recover to a fresh log.
                write_log_atomic(path, &[])?;
                stats.truncated += 1;
                (Vec::new(), 1)
            } else {
                return Err(StoreError::TruncatedHeader);
            }
        } else if bytes[..8] == SNAPSHOT_MAGIC {
            // Legacy one-shot snapshot: migrate to a log. Snapshot
            // records are saved most-recently-used first; the log wants
            // oldest first, so reverse.
            let decoded = decode_snapshot(&bytes)?;
            let mut records: Vec<StoreRecord> = decoded
                .records
                .into_iter()
                .rev()
                .map(|r| StoreRecord {
                    fingerprint: r.fingerprint,
                    verify: r.verify,
                    generation: 1,
                    design: r.design,
                })
                .collect();
            stats.skipped += decoded.skipped as u64;
            stats.migrated += records.len() as u64;
            write_log_atomic(path, &records)?;
            records.shrink_to_fit();
            (records, 2)
        } else if bytes[..8] == STORE_MAGIC {
            let replay = replay_log(&bytes)?;
            if replay.good_end < bytes.len() {
                // Torn tail: cut the file back to the last framed record.
                let f = fs::OpenOptions::new().write(true).open(path)?;
                f.set_len(replay.good_end as u64)?;
                f.sync_all()?;
                stats.truncated += 1;
            }
            stats.recovered += replay.records.len() as u64;
            stats.skipped += replay.skipped as u64;
            (replay.records, replay.max_generation.saturating_add(1))
        } else {
            return Err(StoreError::BadMagic);
        };

        let file = fs::OpenOptions::new().append(true).open(path)?;
        Ok((
            DesignStore {
                path: path.to_path_buf(),
                file,
                config,
                generation,
                stats,
                pending: 0,
                last_flush: Instant::now(),
            },
            records,
        ))
    }

    /// The generation stamped onto this session's appends.
    #[must_use]
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Cumulative durability counters for this handle.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// The path the store lives at.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one design record. The bytes are written immediately;
    /// the fsync is batched per [`StoreConfig`] so an unclean death
    /// loses at most one flush interval of appends.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the write or fsync fails. The
    /// in-memory cache is unaffected either way.
    pub fn append(
        &mut self,
        fingerprint: u64,
        verify: u64,
        design: &Design,
    ) -> Result<(), StoreError> {
        let payload = encode_design(design);
        let record = encode_record(fingerprint, verify, self.generation, &payload);
        self.file.write_all(&record)?;
        self.stats.appends += 1;
        self.pending += 1;
        if self.pending >= self.config.flush_every.max(1)
            || self.last_flush.elapsed() >= self.config.flush_interval
        {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces any unflushed appends to disk.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the fsync fails.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        if self.pending > 0 {
            self.sync()?;
        }
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync_all()?;
        self.pending = 0;
        self.last_flush = Instant::now();
        self.stats.flushes += 1;
        Ok(())
    }

    /// Compacts the log: flushes, re-reads the file, keeps the newest
    /// record per fingerprint subject to `policy`, rewrites the log
    /// atomically and reopens the append handle on the new file.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the re-read, rewrite or reopen
    /// fails; the original log is intact unless the final rename
    /// happened, so a crash mid-compaction never loses records.
    pub fn compact(&mut self, policy: &CompactPolicy) -> Result<CompactReport, StoreError> {
        self.flush()?;
        let bytes = fs::read(&self.path)?;
        if bytes.len() < STORE_HEADER_LEN || bytes[..8] != STORE_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let replay = replay_log(&bytes)?;
        let total = replay.records.len() + replay.skipped;

        // Newest record per fingerprint wins; then the generation TTL;
        // then the size budget (newest kept).
        let min_generation = policy
            .max_generations
            .map(|ttl| self.generation.saturating_sub(ttl));
        let mut seen = std::collections::HashSet::new();
        let mut kept_rev: Vec<StoreRecord> = Vec::new();
        for rec in replay.records.into_iter().rev() {
            if !seen.insert(rec.fingerprint) {
                continue;
            }
            if min_generation.is_some_and(|min| rec.generation < min) {
                continue;
            }
            kept_rev.push(rec);
        }
        if let Some(keep) = policy.keep {
            kept_rev.truncate(keep);
        }
        kept_rev.reverse();
        let kept = kept_rev;

        write_log_atomic(&self.path, &kept)?;
        self.file = fs::OpenOptions::new().append(true).open(&self.path)?;
        self.pending = 0;

        let report = CompactReport {
            kept: kept.len(),
            dropped: total - kept.len(),
        };
        self.stats.compacted += report.dropped as u64;
        Ok(report)
    }
}

/// Read-only decode of a persistence file in either format (sniffed by
/// magic), for `fsmgen cache info` / `verify`. The file is never
/// modified — torn tails are *reported*, not truncated.
///
/// # Errors
///
/// Returns [`StoreError`] for I/O failures and whole-file format
/// problems; per-record corruption is reported through
/// [`DecodedStore::skipped`] / [`DecodedStore::truncated`].
pub fn read_design_file(path: &Path) -> Result<DecodedStore, StoreError> {
    let bytes = fs::read(path)?;
    if bytes.len() < STORE_HEADER_LEN {
        return Err(StoreError::TruncatedHeader);
    }
    if bytes[..8] == SNAPSHOT_MAGIC {
        let decoded = decode_snapshot(&bytes)?;
        return Ok(DecodedStore {
            records: decoded
                .records
                .into_iter()
                .map(|r| StoreRecord {
                    fingerprint: r.fingerprint,
                    verify: r.verify,
                    generation: 0,
                    design: r.design,
                })
                .collect(),
            skipped: decoded.skipped,
            truncated: 0,
            format: StoreFormat::SnapshotV1,
        });
    }
    if bytes[..8] != STORE_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let replay = replay_log(&bytes)?;
    Ok(DecodedStore {
        truncated: usize::from(replay.good_end < bytes.len()),
        records: replay.records,
        skipped: replay.skipped,
        format: StoreFormat::LogV1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::write_snapshot_file;
    use fsmgen::Designer;
    use fsmgen_traces::BitTrace;

    fn sample_design(history: usize) -> Design {
        let t: BitTrace = "0000 1000 1011 1101 1110 1111".parse().unwrap();
        Designer::new(history).design_from_trace(&t).unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fsmgen-store-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn eager() -> StoreConfig {
        StoreConfig {
            flush_every: 1,
            flush_interval: Duration::from_millis(0),
        }
    }

    #[test]
    fn fresh_store_round_trips_across_reopen() {
        let path = tmp("roundtrip.flog");
        let _ = fs::remove_file(&path);
        let design = sample_design(2);
        {
            let (mut store, recovered) = DesignStore::open(&path, eager()).unwrap();
            assert!(recovered.is_empty());
            assert_eq!(store.generation(), 1);
            store.append(7, 11, &design).unwrap();
            store.append(13, 17, &design).unwrap();
            let stats = store.stats();
            assert_eq!(stats.appends, 2);
            assert!(stats.flushes >= 2);
        }
        let (store, recovered) = DesignStore::open(&path, eager()).unwrap();
        assert_eq!(store.generation(), 2, "generation advances per open");
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0].fingerprint, 7);
        assert_eq!(recovered[1].fingerprint, 13);
        assert_eq!(recovered[0].generation, 1);
        assert_eq!(*recovered[1].design, design);
        assert_eq!(store.stats().recovered, 2);
        assert_eq!(store.stats().truncated, 0);
    }

    #[test]
    fn torn_tail_is_truncated_and_counted() {
        let path = tmp("torn.flog");
        let _ = fs::remove_file(&path);
        let design = sample_design(2);
        {
            let (mut store, _) = DesignStore::open(&path, eager()).unwrap();
            store.append(1, 2, &design).unwrap();
            store.append(3, 4, &design).unwrap();
        }
        // Tear the last record: chop 5 bytes off the tail.
        let len = fs::metadata(&path).unwrap().len();
        let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);

        let (store, recovered) = DesignStore::open(&path, eager()).unwrap();
        assert_eq!(recovered.len(), 1, "the torn record is gone");
        assert_eq!(recovered[0].fingerprint, 1);
        assert_eq!(store.stats().truncated, 1);
        assert_eq!(store.stats().skipped, 0);
        // The file was physically cut: a re-read sees no torn tail.
        let decoded = read_design_file(&path).unwrap();
        assert_eq!(decoded.truncated, 0);
        assert_eq!(decoded.records.len(), 1);
    }

    #[test]
    fn appends_resume_after_torn_tail_recovery() {
        let path = tmp("resume.flog");
        let _ = fs::remove_file(&path);
        let design = sample_design(2);
        {
            let (mut store, _) = DesignStore::open(&path, eager()).unwrap();
            store.append(1, 2, &design).unwrap();
        }
        // Simulate a crash mid-append: garbage half-record at the tail.
        let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xAB; 13]).unwrap();
        drop(f);
        {
            let (mut store, recovered) = DesignStore::open(&path, eager()).unwrap();
            assert_eq!(recovered.len(), 1);
            assert_eq!(store.stats().truncated, 1);
            store.append(5, 6, &design).unwrap();
        }
        let (_, recovered) = DesignStore::open(&path, eager()).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[1].fingerprint, 5);
    }

    #[test]
    fn bitflip_is_skipped_not_fatal() {
        let path = tmp("bitflip.flog");
        let _ = fs::remove_file(&path);
        let design = sample_design(2);
        {
            let (mut store, _) = DesignStore::open(&path, eager()).unwrap();
            store.append(1, 2, &design).unwrap();
            store.append(3, 4, &design).unwrap();
        }
        // Flip one payload byte inside the first record.
        let mut bytes = fs::read(&path).unwrap();
        bytes[STORE_HEADER_LEN + FRAME_PREFIX_LEN + 2] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let (store, recovered) = DesignStore::open(&path, eager()).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].fingerprint, 3);
        assert_eq!(store.stats().skipped, 1);
        assert_eq!(store.stats().truncated, 0);
    }

    #[test]
    fn legacy_snapshot_migrates_once() {
        let path = tmp("legacy.flog");
        let _ = fs::remove_file(&path);
        let design = sample_design(2);
        // A PR 4 snapshot, MRU-first: 9 was used more recently than 7.
        write_snapshot_file(&path, [(9u64, 10u64, &design), (7u64, 8u64, &design)]).unwrap();

        let (store, recovered) = DesignStore::open(&path, eager()).unwrap();
        assert_eq!(store.stats().migrated, 2);
        assert_eq!(recovered.len(), 2);
        // Oldest first: the log order reverses the snapshot's MRU-first.
        assert_eq!(recovered[0].fingerprint, 7);
        assert_eq!(recovered[1].fingerprint, 9);
        assert_eq!(recovered[0].generation, 1);
        assert_eq!(store.generation(), 2);
        drop(store);

        // The file is now a log; a second open is a plain recovery.
        let decoded = read_design_file(&path).unwrap();
        assert_eq!(decoded.format, StoreFormat::LogV1);
        let (store, recovered) = DesignStore::open(&path, eager()).unwrap();
        assert_eq!(store.stats().migrated, 0);
        assert_eq!(store.stats().recovered, 2);
        assert_eq!(recovered.len(), 2);
    }

    #[test]
    fn compaction_dedups_and_bounds() {
        let path = tmp("compact.flog");
        let _ = fs::remove_file(&path);
        let d2 = sample_design(2);
        let d3 = sample_design(3);
        let (mut store, _) = DesignStore::open(&path, eager()).unwrap();
        store.append(1, 2, &d2).unwrap();
        store.append(1, 2, &d3).unwrap(); // supersedes fingerprint 1
        store.append(3, 4, &d2).unwrap();
        store.append(5, 6, &d2).unwrap();

        let report = store.compact(&CompactPolicy::default()).unwrap();
        assert_eq!(
            report,
            CompactReport {
                kept: 3,
                dropped: 1
            }
        );
        assert_eq!(store.stats().compacted, 1);
        let decoded = read_design_file(&path).unwrap();
        assert_eq!(decoded.records.len(), 3);
        assert_eq!(*decoded.records[0].design, d3, "newest duplicate wins");

        // Size budget: keep the newest two.
        let report = store
            .compact(&CompactPolicy {
                keep: Some(2),
                ..CompactPolicy::default()
            })
            .unwrap();
        assert_eq!(report.kept, 2);
        let decoded = read_design_file(&path).unwrap();
        let fps: Vec<u64> = decoded.records.iter().map(|r| r.fingerprint).collect();
        assert_eq!(fps, vec![3, 5]);

        // The store stays appendable after compaction.
        store.append(7, 8, &d2).unwrap();
        drop(store);
        let (_, recovered) = DesignStore::open(&path, eager()).unwrap();
        assert_eq!(recovered.len(), 3);
    }

    #[test]
    fn compaction_generation_ttl_drops_stale_sessions() {
        let path = tmp("ttl.flog");
        let _ = fs::remove_file(&path);
        let design = sample_design(2);
        {
            let (mut store, _) = DesignStore::open(&path, eager()).unwrap();
            store.append(1, 2, &design).unwrap(); // generation 1
        }
        let (mut store, _) = DesignStore::open(&path, eager()).unwrap();
        assert_eq!(store.generation(), 2);
        store.append(3, 4, &design).unwrap(); // generation 2

        // ttl 0: only the current session survives.
        let report = store
            .compact(&CompactPolicy {
                max_generations: Some(0),
                ..CompactPolicy::default()
            })
            .unwrap();
        assert_eq!(
            report,
            CompactReport {
                kept: 1,
                dropped: 1
            }
        );
        let decoded = read_design_file(&path).unwrap();
        assert_eq!(decoded.records.len(), 1);
        assert_eq!(decoded.records[0].fingerprint, 3);
        assert_eq!(decoded.records[0].generation, 2);
    }

    #[test]
    fn compaction_drops_corrupt_frames() {
        let path = tmp("compact-corrupt.flog");
        let _ = fs::remove_file(&path);
        let design = sample_design(2);
        {
            let (mut store, _) = DesignStore::open(&path, eager()).unwrap();
            store.append(1, 2, &design).unwrap();
            store.append(3, 4, &design).unwrap();
        }
        let mut bytes = fs::read(&path).unwrap();
        bytes[STORE_HEADER_LEN + FRAME_PREFIX_LEN + 2] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let (mut store, _) = DesignStore::open(&path, eager()).unwrap();
        assert_eq!(store.stats().skipped, 1);
        let report = store.compact(&CompactPolicy::default()).unwrap();
        assert_eq!(
            report,
            CompactReport {
                kept: 1,
                dropped: 1
            }
        );
        // After compaction the log verifies clean.
        let decoded = read_design_file(&path).unwrap();
        assert_eq!(decoded.skipped, 0);
        assert_eq!(decoded.records.len(), 1);
    }

    #[test]
    fn batched_flush_accounting() {
        let path = tmp("flush.flog");
        let _ = fs::remove_file(&path);
        let design = sample_design(2);
        let (mut store, _) = DesignStore::open(
            &path,
            StoreConfig {
                flush_every: 100,
                flush_interval: Duration::from_secs(3600),
            },
        )
        .unwrap();
        for i in 0..5 {
            store.append(i, i, &design).unwrap();
        }
        assert_eq!(
            store.stats().flushes,
            0,
            "under both thresholds: no fsync yet"
        );
        store.flush().unwrap();
        assert_eq!(store.stats().flushes, 1);
        store.flush().unwrap();
        assert_eq!(
            store.stats().flushes,
            1,
            "flush with nothing pending is a no-op"
        );
    }

    #[test]
    fn empty_and_garbage_files() {
        let path = tmp("empty.flog");
        fs::write(&path, b"").unwrap();
        let (store, recovered) = DesignStore::open(&path, eager()).unwrap();
        assert!(recovered.is_empty());
        assert_eq!(store.generation(), 1);
        drop(store);

        let garbage = tmp("garbage.flog");
        fs::write(&garbage, b"definitely not a store file").unwrap();
        assert!(matches!(
            DesignStore::open(&garbage, eager()),
            Err(StoreError::BadMagic)
        ));
        // The garbage file is left untouched.
        assert_eq!(fs::read(&garbage).unwrap(), b"definitely not a store file");

        let torn_header = tmp("torn-header.flog");
        fs::write(&torn_header, &STORE_MAGIC[..5]).unwrap();
        let (store, recovered) = DesignStore::open(&torn_header, eager()).unwrap();
        assert!(recovered.is_empty());
        assert_eq!(store.stats().truncated, 1);
    }

    #[test]
    fn read_design_file_reports_torn_tail_without_mutating() {
        let path = tmp("readonly.flog");
        let _ = fs::remove_file(&path);
        let design = sample_design(2);
        {
            let (mut store, _) = DesignStore::open(&path, eager()).unwrap();
            store.append(1, 2, &design).unwrap();
        }
        let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0x77; 9]).unwrap();
        drop(f);
        let len_before = fs::metadata(&path).unwrap().len();
        let decoded = read_design_file(&path).unwrap();
        assert_eq!(decoded.truncated, 1);
        assert_eq!(decoded.records.len(), 1);
        assert_eq!(decoded.format, StoreFormat::LogV1);
        assert_eq!(fs::metadata(&path).unwrap().len(), len_before, "read-only");
    }
}
