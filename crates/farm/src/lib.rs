//! # fsmgen-farm — the parallel, cache-aware batch design engine
//!
//! Sherwood & Calder's design flow ([`fsmgen`]) turns one behaviour trace
//! into one FSM predictor. Real customization workloads run the flow in
//! *fleets*: one design per hot branch, per benchmark, per history length,
//! per threshold sweep point — hundreds of jobs that are independent,
//! CPU-bound and frequently **identical** (the same hot branch shows up in
//! every input set; sweeps revisit the same configuration).
//!
//! This crate batches those runs behind three cooperating pieces:
//!
//! - a dependency-free **work-stealing thread pool** (internal) that
//!   designs a batch of [`DesignJob`]s concurrently while keeping
//!   results **deterministic**: outcomes come back in submission order and
//!   every design is bit-identical whatever the worker count or schedule;
//! - a **content-addressed design cache** ([`DesignCache`]) in front of
//!   the flow, keyed by a stable 64-bit FNV-1a [fingerprint]
//!   (`DesignJob::fingerprint`) over the trace bits (or model counts) and
//!   every configuration field that affects the output, with an LRU bound
//!   and hit/miss/eviction accounting ([`CacheStats`]);
//! - **structured events** ([`FarmEvent`]) flowing through a pluggable
//!   [`EventSink`], aggregated per batch into a [`FarmMetrics`] summary
//!   (throughput, p50/p95/max latency, cache hit rate and the
//!   degradation-rung histogram) with a stable JSON rendering;
//! - **persistent snapshots** of the cache (the [`snapshot format`]
//!   behind [`DesignCache::save_snapshot`] / [`DesignCache::load_snapshot`]
//!   and [`Farm::load_cache_snapshot`] / [`Farm::save_cache_snapshot`]):
//!   a versioned, checksummed file so a later process starts warm, with
//!   per-record corruption skipped and counted rather than fatal, and
//!   warm entries re-verified against an independent digest
//!   ([`DesignJob::verify_hash`]) before being served;
//! - a **durable log-structured store** ([`DesignStore`], behind
//!   [`Farm::attach_store`]): an append log fsync'd incrementally while
//!   serving, with crash recovery that truncates torn tails, one-time
//!   migration of legacy snapshot files, generation-stamped records and
//!   online compaction ([`DesignStore::compact`]) under size and
//!   generation-TTL policies;
//! - a **sharded cache front-end** ([`ShardedFarm`]): N farms behind one
//!   fingerprint-routed facade (`fingerprint % shards`), killing the
//!   single cache lock for high-fanout serving while every shard appends
//!   to the same durable log.
//!
//! [`snapshot format`]: encode_snapshot
//!
//! Failures stay contained: a job that fails — typed [`FarmError`],
//! including faults injected at the `farm-worker` failpoint and contained
//! worker panics — never stalls or corrupts the rest of its batch.
//!
//! The farm-backed [`Farm::sweep_histories`] (and the free function
//! [`sweep_histories_parallel`]) mirrors [`fsmgen::sweep_histories`]
//! exactly, falling back to the sequential implementation at one worker.
//!
//! ```
//! use fsmgen::Designer;
//! use fsmgen_farm::{DesignJob, Farm, FarmConfig};
//! use fsmgen_traces::BitTrace;
//! use std::sync::Arc;
//!
//! let trace: Arc<BitTrace> = Arc::new("0000 1000 1011 1101 1110 1111".parse().unwrap());
//! let farm = Farm::new(FarmConfig { workers: 4, cache_capacity: 64 });
//! let jobs = (0..8)
//!     .map(|id| DesignJob::from_trace(id, Arc::clone(&trace), Designer::new(2)))
//!     .collect();
//! let report = farm.design_batch(jobs);
//! assert_eq!(report.metrics.succeeded, 8);
//! assert!(report.metrics.cache.hits >= 1); // identical jobs hit the cache
//! println!("{}", report.metrics.to_json());
//! ```
//!
//! [fingerprint]: DesignJob::fingerprint

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod cache;
mod engine;
mod error;
mod events;
mod fnv;
mod job;
mod metrics;
mod pool;
mod sharded;
mod snapshot;
mod store;

pub use cache::{CacheStats, DesignCache, SnapshotLoadReport};
pub use engine::{
    sweep_histories_parallel, BatchReport, Farm, FarmConfig, JobOutcome, SharedStore,
};
pub use error::FarmError;
pub use events::{
    to_obs_event, CollectingSink, EventSink, FarmEvent, NullSink, ObsBridgeSink, StderrSink,
};
pub use fnv::Fnv1a;
pub use job::{DesignJob, JobInput};
pub use metrics::FarmMetrics;
pub use sharded::ShardedFarm;
pub use snapshot::{
    decode_design, decode_snapshot, encode_design, encode_snapshot, read_snapshot_file,
    write_snapshot_file, DecodedSnapshot, SnapshotError, SnapshotRecord, SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
};
pub use store::{
    read_design_file, CompactPolicy, CompactReport, DecodedStore, DesignStore, StoreConfig,
    StoreError, StoreFormat, StoreRecord, StoreStats, STORE_MAGIC, STORE_VERSION,
};
