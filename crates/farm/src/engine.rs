//! The batch design engine: a work-stealing pool behind a content-addressed
//! design cache, with structured events and aggregate metrics.

use crate::cache::{CacheStats, DesignCache, SnapshotLoadReport};
use crate::error::FarmError;
use crate::events::{EventSink, FarmEvent, NullSink};
use crate::job::{DesignJob, JobInput};
use crate::metrics::FarmMetrics;
use crate::pool;
use crate::snapshot::SnapshotError;
use crate::store::{
    CompactPolicy, CompactReport, DesignStore, StoreConfig, StoreError, StoreRecord, StoreStats,
};
use fsmgen::{failpoints, Design, DesignBudget, DesignError, Designer, SweepPoint};
use fsmgen_exec::CompiledMachine;
use fsmgen_obs as obs;
use fsmgen_traces::BitTrace;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FarmConfig {
    /// Worker threads for a batch. `1` runs every job inline on the
    /// calling thread (the sequential fallback).
    pub workers: usize,
    /// Bound on the design cache, in designs. `0` disables caching.
    pub cache_capacity: usize,
}

impl Default for FarmConfig {
    /// One worker per available hardware thread and a 1024-design cache.
    fn default() -> Self {
        FarmConfig {
            workers: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            cache_capacity: 1024,
        }
    }
}

/// The outcome of one job, keyed by the id it was submitted under.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job's caller-chosen id.
    pub id: u64,
    /// The finished design, or why it failed. Designs are shared: a cache
    /// hit and the job that populated the entry return the same `Arc`.
    pub result: Result<Arc<Design>, FarmError>,
    /// Whether the design came out of the cache.
    pub cache_hit: bool,
    /// The design's machine lowered to a dense transition table. Tables
    /// are compiled once at cache-insert, so hits — warm or cold — hand
    /// back the shared ready-to-run artifact; uncacheable jobs compile
    /// inline. `None` only when the job failed.
    pub compiled: Option<Arc<CompiledMachine>>,
    /// In-worker wall clock (queue wait excluded).
    pub wall: Duration,
}

/// Everything a batch run produced: per-job outcomes in submission order
/// plus the aggregate metrics.
#[derive(Debug)]
pub struct BatchReport {
    /// One outcome per submitted job, in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Aggregate throughput/latency/cache metrics for this batch.
    pub metrics: FarmMetrics,
}

impl BatchReport {
    /// The design produced for job `id`, if that job succeeded.
    #[must_use]
    pub fn design(&self, id: u64) -> Option<&Arc<Design>> {
        self.outcomes
            .iter()
            .find(|o| o.id == id)
            .and_then(|o| o.result.as_ref().ok())
    }

    /// The ready-to-run compiled machine for job `id`, if that job
    /// succeeded and its machine fit the compiled-table limits.
    #[must_use]
    pub fn compiled(&self, id: u64) -> Option<&Arc<CompiledMachine>> {
        self.outcomes
            .iter()
            .find(|o| o.id == id)
            .and_then(|o| o.compiled.as_ref())
    }
}

/// The batch design engine (the "farm").
///
/// A farm owns a design cache that persists across batches and a
/// configuration for the worker pool; [`Farm::design_batch`] runs one
/// batch of [`DesignJob`]s to completion. Results are **deterministic**:
/// outcomes come back in submission order and each job's design is
/// independent of the worker count and of scheduling (cache hits return a
/// design bit-identical to a fresh run of the same job).
///
/// # Examples
///
/// ```
/// use fsmgen::Designer;
/// use fsmgen_farm::{DesignJob, Farm, FarmConfig};
/// use fsmgen_traces::BitTrace;
/// use std::sync::Arc;
///
/// let trace: Arc<BitTrace> = Arc::new("0000 1000 1011 1101 1110 1111".parse().unwrap());
/// let farm = Farm::new(FarmConfig { workers: 2, cache_capacity: 16 });
/// let jobs = vec![
///     DesignJob::from_trace(0, Arc::clone(&trace), Designer::new(2)),
///     DesignJob::from_trace(1, Arc::clone(&trace), Designer::new(2)), // cache hit
/// ];
/// let report = farm.design_batch(jobs);
/// assert_eq!(report.metrics.succeeded, 2);
/// assert_eq!(report.metrics.cache.hits + report.metrics.cache.misses, 2);
/// let d0 = report.design(0).unwrap();
/// assert_eq!(d0.fsm().num_states(), 3); // Figure 1's machine
/// ```
pub struct Farm {
    config: FarmConfig,
    /// Cache and single-flight claims under ONE mutex (a monitor): the
    /// atomic claim-or-lookup is what makes the dedup race-free.
    state: Mutex<CacheState>,
    /// Signalled (with the `state` lock held) whenever a claimed
    /// fingerprint is released.
    pending_done: std::sync::Condvar,
    sink: Arc<dyn EventSink>,
}

/// The shared mutable state workers coordinate through.
struct CacheState {
    cache: DesignCache,
    /// Fingerprints currently being designed — single-flight dedup: a
    /// worker hitting a pending fingerprint waits for the computer and
    /// takes the cached result instead of duplicating the design run.
    pending: std::collections::HashSet<u64>,
    /// Accumulated persistent-snapshot load accounting, copied into every
    /// batch's metrics so warm-start provenance shows up in reports.
    snapshot_load: SnapshotLoadReport,
    /// The durable log-structured store, when one is attached: every
    /// computed design is appended at its cache-publish point. The handle
    /// is shared so several farms (the shards of a
    /// [`ShardedFarm`](crate::ShardedFarm)) can append to ONE log while
    /// keeping independent in-memory cache front-ends.
    store: Option<SharedStore>,
}

/// A durable store handle shareable across farms: one log, many
/// in-memory front-ends. Lock ordering is always `Farm::state` →
/// store (publish path) or store alone (flush/compact/stats), so
/// shards never deadlock on the shared log.
pub type SharedStore = Arc<Mutex<DesignStore>>;

/// Locks a shared store handle, riding through poisoning like the
/// farm's own state lock does.
pub(crate) fn lock_shared_store(store: &SharedStore) -> std::sync::MutexGuard<'_, DesignStore> {
    store.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What the coordinated cache lookup decided for a job.
enum Lookup {
    /// Design it here; `claimed` says a single-flight claim must be
    /// released after publishing.
    Compute { claimed: bool },
    /// Served from the cache, with its compile-at-insert table artifact.
    Hit(Arc<Design>, Option<Arc<CompiledMachine>>),
}

impl std::fmt::Debug for Farm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Farm")
            .field("config", &self.config)
            .field("cache", &self.lock_state().cache)
            .finish_non_exhaustive()
    }
}

impl Default for Farm {
    fn default() -> Self {
        Farm::new(FarmConfig::default())
    }
}

impl Farm {
    /// Creates a farm with no event sink.
    #[must_use]
    pub fn new(config: FarmConfig) -> Self {
        Farm::with_sink(config, Arc::new(NullSink))
    }

    /// Creates a farm that reports every job's lifecycle to `sink`.
    #[must_use]
    pub fn with_sink(config: FarmConfig, sink: Arc<dyn EventSink>) -> Self {
        Farm {
            config,
            state: Mutex::new(CacheState {
                cache: DesignCache::new(config.cache_capacity),
                pending: std::collections::HashSet::new(),
                snapshot_load: SnapshotLoadReport::default(),
                store: None,
            }),
            pending_done: std::sync::Condvar::new(),
            sink,
        }
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &FarmConfig {
        &self.config
    }

    /// Cumulative cache accounting since the farm was created.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.lock_state().cache.stats()
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, CacheState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Warm-starts the farm's cache from a persistent snapshot file.
    ///
    /// Every restored design becomes a warm entry: it is served only after
    /// its stored verification digest matches the requesting job's
    /// [`verify_hash`](DesignJob::verify_hash), so a cross-process
    /// fingerprint collision degrades to a recompute instead of a wrong
    /// design. Corrupt records are skipped and counted (surfacing as
    /// `stale` in the batch metrics), never fatal.
    ///
    /// The load is reported as a `cache_snapshot_load` span with
    /// `loaded`/`skipped` counters on the ambient obs sink, and as a
    /// [`FarmEvent::SnapshotLoaded`] on the farm's event sink.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] only for whole-file problems (missing or
    /// unreadable file, bad magic, unsupported version, truncated header);
    /// callers should log it and continue cold.
    pub fn load_cache_snapshot(&self, path: &Path) -> Result<SnapshotLoadReport, SnapshotError> {
        let _span = obs::span("cache_snapshot_load");
        let report = {
            let mut state = self.lock_state();
            let report = state.cache.load_snapshot(path)?;
            state.snapshot_load.loaded += report.loaded;
            state.snapshot_load.skipped += report.skipped;
            report
        };
        obs::counter("cache_snapshot_load", "loaded", report.loaded as u64);
        obs::counter("cache_snapshot_load", "skipped", report.skipped as u64);
        self.sink.record(&FarmEvent::SnapshotLoaded {
            path: path.display().to_string(),
            loaded: report.loaded,
            skipped: report.skipped,
        });
        Ok(report)
    }

    /// Writes the farm's cache to a persistent snapshot file (most
    /// recently used designs first), atomically, returning the record
    /// count. Reported as a `cache_snapshot_save` span with a `records`
    /// counter and a [`FarmEvent::SnapshotSaved`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] when the file cannot be written.
    pub fn save_cache_snapshot(&self, path: &Path) -> Result<usize, SnapshotError> {
        let _span = obs::span("cache_snapshot_save");
        let records = {
            let state = self.lock_state();
            state.cache.save_snapshot(path)?;
            state.cache.len()
        };
        obs::counter("cache_snapshot_save", "records", records as u64);
        self.sink.record(&FarmEvent::SnapshotSaved {
            path: path.display().to_string(),
            records,
        });
        Ok(records)
    }

    /// Attaches a durable log-structured store at `path`, running crash
    /// recovery and warm-starting the cache from the recovered records
    /// (which are re-verified per lookup exactly like snapshot entries,
    /// and count into the `snapshot` load accounting so warm-start
    /// provenance is format-agnostic). Once attached, every design the
    /// farm computes is appended to the log at its cache-publish point.
    ///
    /// Missing files become fresh stores; legacy snapshot files migrate
    /// in place; torn tails are truncated (see
    /// [`DesignStore::open`]). Reported as a `store_recover` span with
    /// `recovered`/`migrated`/`skipped`/`truncated` counters and a
    /// [`FarmEvent::StoreRecovered`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] only when the file cannot serve as a
    /// store at all (I/O failure, foreign magic); callers should log it
    /// and continue cold. No store is attached on error.
    pub fn attach_store(&self, path: &Path, config: StoreConfig) -> Result<StoreStats, StoreError> {
        let _span = obs::span("store_recover");
        let (store, records) = DesignStore::open(path, config)?;
        let stats = store.stats();
        self.adopt_store(Arc::new(Mutex::new(store)), records, stats.skipped as usize);
        obs::counter("store_recover", "recovered", stats.recovered);
        obs::counter("store_recover", "migrated", stats.migrated);
        obs::counter("store_recover", "skipped", stats.skipped);
        obs::counter("store_recover", "truncated", stats.truncated);
        self.sink.record(&FarmEvent::StoreRecovered {
            path: path.display().to_string(),
            recovered: stats.recovered as usize,
            migrated: stats.migrated as usize,
            skipped: stats.skipped as usize,
            truncated: stats.truncated as usize,
        });
        Ok(stats)
    }

    /// Adopts an already-open (possibly shared) store handle,
    /// warm-starting this farm's cache from `records` — the shard-level
    /// building block behind [`Farm::attach_store`] and
    /// [`ShardedFarm::attach_store`](crate::ShardedFarm::attach_store):
    /// a sharded deployment opens the log once, partitions the recovered
    /// records by fingerprint and hands every shard the same handle.
    ///
    /// `skipped` is the recovery-time corrupt-record count attributed to
    /// this farm's warm-start accounting.
    pub fn adopt_store(&self, store: SharedStore, records: Vec<StoreRecord>, skipped: usize) {
        let mut state = self.lock_state();
        state.snapshot_load.loaded += records.len();
        state.snapshot_load.skipped += skipped;
        for rec in records {
            state
                .cache
                .insert_warm(rec.fingerprint, rec.verify, rec.design);
        }
        state.store = Some(store);
    }

    /// The shared handle to the attached store, if any.
    #[must_use]
    pub fn store_handle(&self) -> Option<SharedStore> {
        self.lock_state().store.clone()
    }

    /// Forces the attached store's unflushed appends to disk. A no-op
    /// without an attached store.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the fsync fails.
    pub fn flush_store(&self) -> Result<(), StoreError> {
        let store = self.lock_state().store.clone();
        match store {
            Some(store) => lock_shared_store(&store).flush(),
            None => Ok(()),
        }
    }

    /// Compacts the attached store online (see [`DesignStore::compact`]):
    /// newest record per fingerprint, bounded by `policy`. Returns
    /// `None` without an attached store. Reported as a `store_compact`
    /// span with `kept`/`dropped` counters and a
    /// [`FarmEvent::StoreCompacted`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the rewrite fails; the previous log
    /// survives unless the atomic rename completed.
    pub fn compact_store(
        &self,
        policy: &CompactPolicy,
    ) -> Result<Option<CompactReport>, StoreError> {
        let Some(store) = self.lock_state().store.clone() else {
            return Ok(None);
        };
        let (report, path) = {
            let mut store = lock_shared_store(&store);
            let _span = obs::span("store_compact");
            let report = store.compact(policy)?;
            (report, store.path().display().to_string())
        };
        obs::counter("store_compact", "kept", report.kept as u64);
        obs::counter("store_compact", "dropped", report.dropped as u64);
        self.sink.record(&FarmEvent::StoreCompacted {
            path,
            kept: report.kept,
            dropped: report.dropped,
        });
        Ok(Some(report))
    }

    /// The attached store's cumulative durability counters, if any.
    #[must_use]
    pub fn store_stats(&self) -> Option<StoreStats> {
        let store = self.lock_state().store.clone();
        store.map(|store| lock_shared_store(&store).stats())
    }

    /// Designs every job in the batch, concurrently, and returns outcomes
    /// in submission order plus aggregate metrics.
    ///
    /// Failed jobs (typed [`FarmError`]s) never stall or poison the rest
    /// of the batch. Per-job results are deterministic in the worker
    /// count; only timing-derived metrics vary run to run.
    #[must_use]
    pub fn design_batch(&self, jobs: Vec<DesignJob>) -> BatchReport {
        let stats_before = self.lock_state().cache.stats();
        let batch_start = Instant::now();
        for job in &jobs {
            self.sink.record(&FarmEvent::JobQueued { id: job.id });
        }

        let tasks: Vec<_> = jobs
            .into_iter()
            .map(|job| move || self.run_job(job))
            .collect();
        let outcomes = pool::run_batch(self.config.workers, tasks);

        let batch_wall = batch_start.elapsed();
        let stats_after = self.lock_state().cache.stats();
        let cache = CacheStats {
            hits: stats_after.hits - stats_before.hits,
            snapshot_hits: stats_after.snapshot_hits - stats_before.snapshot_hits,
            misses: stats_after.misses - stats_before.misses,
            insertions: stats_after.insertions - stats_before.insertions,
            evictions: stats_after.evictions - stats_before.evictions,
            stale: stats_after.stale - stats_before.stale,
            compiled: stats_after.compiled - stats_before.compiled,
        };
        let walls: Vec<Duration> = outcomes
            .iter()
            .filter(|o| o.result.is_ok())
            .map(|o| o.wall)
            .collect();
        let rungs: Vec<String> = outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().ok())
            .filter_map(|d| d.degradation().final_rung())
            .map(|r| r.to_string())
            .collect();
        let succeeded = walls.len();
        let (entries, capacity, snapshot, store) = {
            let state = self.lock_state();
            (
                state.cache.len(),
                state.cache.capacity(),
                state.snapshot_load,
                state
                    .store
                    .as_ref()
                    .map(|s| lock_shared_store(s).stats())
                    .unwrap_or_default(),
            )
        };
        let metrics = FarmMetrics::aggregate(crate::metrics::BatchTally {
            jobs: outcomes.len(),
            succeeded,
            failed: outcomes.len() - succeeded,
            workers: self.config.workers,
            cache,
            snapshot,
            store,
            cache_entries: entries,
            cache_capacity: capacity,
            batch_wall,
            walls: &walls,
            rungs: &rungs,
        });
        BatchReport { outcomes, metrics }
    }

    /// The online-redesign entry: designs a fresh machine from a window
    /// of live outcomes and returns the ready-to-swap compiled artifact.
    ///
    /// This is a one-job [`Farm::design_batch`], so the content-addressed
    /// cache, single-flight dedup, durable store and obs events all apply
    /// — a hot-swap redesign of a window the farm has seen before is a
    /// cache hit.
    ///
    /// # Errors
    ///
    /// Returns the job's [`FarmError`] (e.g. the window is shorter than
    /// the history order), or a wrapped [`DesignError::BadConfig`] if the
    /// designed machine could not be compiled to a dense table.
    pub fn redesign(
        &self,
        id: u64,
        window: &[bool],
        designer: Designer,
    ) -> Result<Arc<CompiledMachine>, FarmError> {
        let trace: Arc<BitTrace> = Arc::new(window.iter().copied().collect());
        let report = self.design_batch(vec![DesignJob::from_trace(id, trace, designer)]);
        let Some(outcome) = report.outcomes.into_iter().next() else {
            return Err(FarmError::Design(DesignError::BadConfig(
                "redesign batch produced no outcome".into(),
            )));
        };
        outcome.result?;
        outcome.compiled.ok_or_else(|| {
            FarmError::Design(DesignError::BadConfig(
                "designed machine does not fit the compiled-table limits".into(),
            ))
        })
    }

    /// Runs one job on the current (worker) thread.
    fn run_job(&self, job: DesignJob) -> JobOutcome {
        let id = job.id;
        self.sink.record(&FarmEvent::JobStarted { id });
        let start = Instant::now();

        // The farm-worker failpoint: `error` poisons this job with a hard
        // injected fault; `budget` collapses the job's resource envelope,
        // which exercises the degradation ladder (or the typed budget
        // error when degradation is off) end to end through the farm.
        let mut job = job;
        match failpoints::fire("farm-worker") {
            Some(failpoints::FailAction::Error) => {
                let error = FarmError::InjectedFault {
                    reason: "injected fault at farm-worker".into(),
                };
                self.sink.record(&FarmEvent::JobFailed {
                    id,
                    error: error.to_string(),
                });
                return JobOutcome {
                    id,
                    result: Err(error),
                    cache_hit: false,
                    compiled: None,
                    wall: start.elapsed(),
                };
            }
            Some(failpoints::FailAction::BudgetExceeded) => {
                job.designer = job.designer.clone().budget(DesignBudget {
                    max_minterms: Some(1),
                    ..DesignBudget::default()
                });
            }
            None => {}
        }

        // Coordinated cache lookup with single-flight dedup, all under
        // the one state lock: while a fingerprint is pending, wait; once
        // it is not, do exactly one (counted) cache lookup — a hit serves
        // the waiter, a miss claims the fingerprint for this worker.
        // Waiting is pointless with no cache to publish through
        // (capacity 0), so identical jobs then just compute in parallel.
        let fingerprint = job.fingerprint();
        // The independent verification digest: `Some` exactly when the
        // fingerprint is. Warm (snapshot-restored) cache entries are only
        // served when their stored digest matches this one.
        let verify = job.verify_hash().unwrap_or_default();
        let lookup = match fingerprint {
            None => Lookup::Compute { claimed: false },
            Some(fp) => {
                let mut state = self.lock_state();
                if state.cache.capacity() == 0 {
                    let _ = state.cache.get(fp); // records the miss
                    Lookup::Compute { claimed: false }
                } else {
                    loop {
                        if state.pending.contains(&fp) {
                            // Another worker is designing this exact job:
                            // wait for it to publish (or fail), then
                            // re-decide.
                            state = self
                                .pending_done
                                .wait(state)
                                .unwrap_or_else(PoisonError::into_inner);
                            continue;
                        }
                        match state.cache.get_verified(fp, verify) {
                            Some(design) => {
                                let compiled = state.cache.compiled_of(fp);
                                break Lookup::Hit(design, compiled);
                            }
                            None => {
                                state.pending.insert(fp);
                                break Lookup::Compute { claimed: true };
                            }
                        }
                    }
                }
            }
        };
        let claimed = match lookup {
            Lookup::Hit(design, compiled) => {
                let fp = fingerprint.unwrap_or_default();
                self.sink.record(&FarmEvent::CacheHit {
                    id,
                    fingerprint: fp,
                });
                let wall = start.elapsed();
                self.sink.record(&FarmEvent::JobFinished {
                    id,
                    cache_hit: true,
                    wall,
                    states: design.fsm().num_states(),
                });
                return JobOutcome {
                    id,
                    result: Ok(design),
                    cache_hit: true,
                    compiled,
                    wall,
                };
            }
            Lookup::Compute { claimed } => claimed,
        };

        let DesignJob {
            input, designer, ..
        } = job;
        let computed: Result<Result<Design, DesignError>, FarmError> =
            catch_unwind(AssertUnwindSafe(move || match input {
                JobInput::Trace(trace) => designer.design_from_trace(&trace),
                JobInput::Model(model) => designer.design_from_model(model),
            }))
            .map_err(|payload| FarmError::WorkerPanic {
                reason: panic_message(payload.as_ref()),
            });
        let result: Result<Arc<Design>, FarmError> = match computed {
            Ok(Ok(design)) => Ok(Arc::new(design)),
            Ok(Err(e)) => Err(FarmError::Design(e)),
            Err(e) => Err(e),
        };
        let wall = start.elapsed();

        // Publish the design and release any single-flight claim in one
        // critical section, waking the workers waiting on it. With a
        // durable store attached the publish also appends to the log —
        // an append failure degrades durability, never the job.
        let mut compiled = None;
        if let Some(fp) = fingerprint {
            let mut state = self.lock_state();
            let CacheState {
                cache,
                store,
                pending,
                ..
            } = &mut *state;
            if let Ok(design) = &result {
                cache.insert_verified(fp, verify, Arc::clone(design));
                // Share the compile-at-insert artifact with this outcome.
                compiled = cache.compiled_of(fp);
                if let Some(store) = store.as_ref() {
                    let _span = obs::span("store_append");
                    match lock_shared_store(store).append(fp, verify, design) {
                        Ok(()) => obs::counter("store_append", "records", 1),
                        Err(err) => obs::mark("farm", "store_append_failed", &err.to_string()),
                    }
                }
            }
            if claimed {
                pending.remove(&fp);
                self.pending_done.notify_all();
            }
        }

        match &result {
            Ok(design) => {
                if let Some(rung) = design.degradation().final_rung() {
                    self.sink.record(&FarmEvent::JobDegraded {
                        id,
                        rung: rung.to_string(),
                    });
                }
                self.sink.record(&FarmEvent::JobFinished {
                    id,
                    cache_hit: false,
                    wall,
                    states: design.fsm().num_states(),
                });
            }
            Err(error) => {
                self.sink.record(&FarmEvent::JobFailed {
                    id,
                    error: error.to_string(),
                });
            }
        }
        // Uncacheable jobs (no fingerprint) and capacity-0 caches still
        // deliver a ready table; only failed jobs go without.
        if compiled.is_none() {
            if let Ok(design) = &result {
                compiled = CompiledMachine::compile(design.fsm()).ok().map(Arc::new);
            }
        }
        JobOutcome {
            id,
            result,
            cache_hit: false,
            compiled,
            wall,
        }
    }

    /// The farm-backed history sweep: same signature and semantics as
    /// [`fsmgen::sweep_histories`], with designs computed on the farm's
    /// worker pool. With `workers = 1` this *is* the sequential sweep.
    ///
    /// Results are bit-identical to the sequential sweep at any worker
    /// count (the determinism tests pin this at 1, 2 and 8 workers).
    ///
    /// # Errors
    ///
    /// Exactly as the sequential sweep: the first non-length-related
    /// [`DesignError`] in history order; lengths the trace cannot fill are
    /// skipped.
    pub fn sweep_histories(
        &self,
        trace: &BitTrace,
        histories: impl IntoIterator<Item = usize>,
        configure: impl Fn(Designer) -> Designer,
    ) -> Result<Vec<SweepPoint>, DesignError> {
        if self.config.workers <= 1 {
            return fsmgen::sweep_histories(trace, histories, configure);
        }
        let lengths: Vec<usize> = histories.into_iter().collect();
        let shared = Arc::new(trace.clone());
        let jobs: Vec<DesignJob> = lengths
            .iter()
            .enumerate()
            .map(|(i, &history)| {
                let designer = configure(Designer::new(history));
                debug_assert_eq!(
                    designer.history(),
                    history,
                    "configure must keep the history"
                );
                DesignJob::from_trace(i as u64, Arc::clone(&shared), designer)
            })
            .collect();
        let report = self.design_batch(jobs);

        let mut points = Vec::new();
        for (history, outcome) in lengths.into_iter().zip(report.outcomes) {
            match outcome.result {
                Ok(design) => {
                    let training_accuracy = replay(&design, trace, history);
                    points.push(SweepPoint {
                        history,
                        design: (*design).clone(),
                        training_accuracy,
                    });
                }
                Err(FarmError::Design(DesignError::TraceTooShort { .. })) => {}
                Err(FarmError::Design(e)) => return Err(e),
                Err(e) => {
                    return Err(DesignError::Internal {
                        stage: "farm-worker",
                        reason: e.to_string(),
                    })
                }
            }
        }
        Ok(points)
    }
}

/// Replays a design over a trace, counting predictions after the warmup
/// window — mirrors the sequential sweep's evaluation exactly.
fn replay(design: &Design, trace: &BitTrace, warmup: usize) -> f64 {
    let mut p = design.predictor();
    let mut correct = 0usize;
    let mut total = 0usize;
    for (i, bit) in trace.iter().enumerate() {
        if i >= warmup {
            total += 1;
            if p.predict() == bit {
                correct += 1;
            }
        }
        p.update(bit);
    }
    correct as f64 / total.max(1) as f64
}

/// Renders a panic payload as a message when it was a string.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Free-function convenience for the farm-backed sweep: designs each
/// history length on `workers` threads. `workers = 1` falls back to the
/// sequential [`fsmgen::sweep_histories`].
///
/// # Errors
///
/// Exactly as [`fsmgen::sweep_histories`].
pub fn sweep_histories_parallel(
    trace: &BitTrace,
    histories: impl IntoIterator<Item = usize>,
    configure: impl Fn(Designer) -> Designer,
    workers: usize,
) -> Result<Vec<SweepPoint>, DesignError> {
    Farm::new(FarmConfig {
        workers,
        cache_capacity: 0,
    })
    .sweep_histories(trace, histories, configure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::CollectingSink;

    fn paper_trace() -> Arc<BitTrace> {
        Arc::new("0000 1000 1011 1101 1110 1111".parse().unwrap())
    }

    #[test]
    fn batch_designs_and_caches() {
        let sink = Arc::new(CollectingSink::new());
        let farm = Farm::with_sink(
            FarmConfig {
                workers: 2,
                cache_capacity: 8,
            },
            Arc::clone(&sink) as Arc<dyn EventSink>,
        );
        let trace = paper_trace();
        let jobs: Vec<DesignJob> = (0..4)
            .map(|i| DesignJob::from_trace(i, Arc::clone(&trace), Designer::new(2)))
            .collect();
        let report = farm.design_batch(jobs);
        assert_eq!(report.metrics.jobs, 4);
        assert_eq!(report.metrics.succeeded, 4);
        // All four jobs are identical: single-flight guarantees exactly
        // one computes (one miss) and the other three hit, whatever the
        // schedule.
        let cache = report.metrics.cache;
        assert_eq!(cache.misses, 1, "single-flight must dedup: {cache:?}");
        assert_eq!(cache.hits, 3, "single-flight must dedup: {cache:?}");
        // Every outcome carries Figure 1's 3-state machine.
        for o in &report.outcomes {
            let design = o.result.as_ref().expect("job succeeded");
            assert_eq!(design.fsm().num_states(), 3);
        }
        // Per-job event order is queued → started → … → finished.
        for id in 0..4 {
            let events = sink.for_job(id);
            assert!(matches!(events.first(), Some(FarmEvent::JobQueued { .. })));
            assert!(matches!(events.last(), Some(FarmEvent::JobFinished { .. })));
        }
    }

    #[test]
    fn outcomes_keep_submission_order_with_mixed_ids() {
        let farm = Farm::new(FarmConfig {
            workers: 4,
            cache_capacity: 0,
        });
        let trace = paper_trace();
        let ids = [42u64, 7, 19, 3, 27];
        let jobs: Vec<DesignJob> = ids
            .iter()
            .map(|&id| DesignJob::from_trace(id, Arc::clone(&trace), Designer::new(2)))
            .collect();
        let report = farm.design_batch(jobs);
        let got: Vec<u64> = report.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(got, ids);
        assert!(report.design(19).is_some());
        assert!(report.design(99).is_none());
    }

    #[test]
    fn failed_job_does_not_poison_batch() {
        let farm = Farm::new(FarmConfig {
            workers: 2,
            cache_capacity: 8,
        });
        let trace = paper_trace();
        let tiny: Arc<BitTrace> = Arc::new("01".parse().unwrap());
        let jobs = vec![
            DesignJob::from_trace(0, Arc::clone(&trace), Designer::new(2)),
            // History 6 cannot be filled by a 2-bit trace: typed failure.
            DesignJob::from_trace(1, tiny, Designer::new(6)),
            DesignJob::from_trace(2, trace, Designer::new(3)),
        ];
        let report = farm.design_batch(jobs);
        assert_eq!(report.metrics.succeeded, 2);
        assert_eq!(report.metrics.failed, 1);
        assert!(matches!(
            report.outcomes[1].result,
            Err(FarmError::Design(DesignError::TraceTooShort { .. }))
        ));
        assert!(report.outcomes[0].result.is_ok());
        assert!(report.outcomes[2].result.is_ok());
    }

    #[test]
    fn model_jobs_design_like_trace_jobs() {
        let trace = paper_trace();
        let model = fsmgen::MarkovModel::from_bit_trace(2, &trace).unwrap();
        let farm = Farm::new(FarmConfig {
            workers: 2,
            cache_capacity: 4,
        });
        let report = farm.design_batch(vec![
            DesignJob::from_model(0, model, Designer::new(2)),
            DesignJob::from_trace(1, trace, Designer::new(2)),
        ]);
        let a = report.design(0).expect("model job");
        let b = report.design(1).expect("trace job");
        assert_eq!(a.fsm(), b.fsm());
    }

    #[test]
    fn degraded_jobs_are_counted_and_reported() {
        let sink = Arc::new(CollectingSink::new());
        let farm = Farm::with_sink(
            FarmConfig {
                workers: 2,
                cache_capacity: 4,
            },
            Arc::clone(&sink) as Arc<dyn EventSink>,
        );
        let trace = paper_trace();
        let budget = DesignBudget {
            max_minterms: Some(1),
            ..DesignBudget::default()
        };
        let report = farm.design_batch(vec![DesignJob::from_trace(
            0,
            trace,
            Designer::new(4).budget(budget),
        )]);
        assert_eq!(report.metrics.degraded, 1);
        assert_eq!(
            report.metrics.rung_histogram["saturating-counter fallback"],
            1
        );
        assert!(sink
            .for_job(0)
            .iter()
            .any(|e| matches!(e, FarmEvent::JobDegraded { .. })));
    }

    #[test]
    fn sweep_matches_sequential_semantics_on_short_trace() {
        let trace: BitTrace = "0110 1".parse().unwrap(); // 5 bits
        let farm = Farm::new(FarmConfig {
            workers: 4,
            cache_capacity: 0,
        });
        let points = farm.sweep_histories(&trace, 2..=8, |d| d).unwrap();
        let lengths: Vec<usize> = points.iter().map(|p| p.history).collect();
        assert_eq!(lengths, vec![2, 3, 4]);
    }

    #[test]
    fn sweep_propagates_config_errors() {
        let trace: BitTrace = "0101".repeat(20).parse().unwrap();
        let err =
            sweep_histories_parallel(&trace, 2..=3, |d| d.prob_threshold(2.0), 3).unwrap_err();
        assert!(matches!(err, DesignError::BadConfig(_)));
    }

    #[test]
    fn snapshot_warm_start_serves_without_computing() {
        let dir = std::env::temp_dir().join(format!("fsmgen-farm-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.fsnap");
        let trace = paper_trace();
        let job = || DesignJob::from_trace(0, Arc::clone(&trace), Designer::new(2));

        // Cold farm: compute, then persist.
        let cold = Farm::new(FarmConfig {
            workers: 1,
            cache_capacity: 16,
        });
        let cold_report = cold.design_batch(vec![job()]);
        let cold_design = cold_report.design(0).unwrap();
        assert_eq!(cold.save_cache_snapshot(&path).unwrap(), 1);

        // Warm farm: load, then the same job is a snapshot hit.
        let sink = Arc::new(CollectingSink::new());
        let warm = Farm::with_sink(
            FarmConfig {
                workers: 1,
                cache_capacity: 16,
            },
            Arc::clone(&sink) as Arc<dyn EventSink>,
        );
        let loaded = warm.load_cache_snapshot(&path).unwrap();
        assert_eq!((loaded.loaded, loaded.skipped), (1, 0));
        let warm_report = warm.design_batch(vec![job()]);
        assert!(warm_report.outcomes[0].cache_hit);
        assert_eq!(warm_report.metrics.cache.snapshot_hits, 1);
        assert_eq!(warm_report.metrics.cache.hits, 0);
        assert_eq!(warm_report.metrics.cache.misses, 0);
        assert_eq!(warm_report.metrics.snapshot.loaded, 1);
        // The restored design is bit-identical to the cold one.
        assert_eq!(**warm_report.design(0).unwrap(), **cold_design);
        // The load showed up on the event sink.
        assert!(sink
            .events()
            .iter()
            .any(|e| matches!(e, FarmEvent::SnapshotLoaded { loaded: 1, .. })));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_snapshot_file_reports_error_and_farm_stays_usable() {
        let farm = Farm::new(FarmConfig {
            workers: 1,
            cache_capacity: 8,
        });
        let err = farm
            .load_cache_snapshot(Path::new("/nonexistent/cache.fsnap"))
            .unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)));
        let report = farm.design_batch(vec![DesignJob::from_trace(
            0,
            paper_trace(),
            Designer::new(2),
        )]);
        assert_eq!(report.metrics.succeeded, 1);
    }

    #[test]
    fn store_append_on_insert_survives_restart() {
        let dir = std::env::temp_dir().join(format!("fsmgen-farm-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("designs.flog");
        let _ = std::fs::remove_file(&path);
        let trace = paper_trace();
        let job = || DesignJob::from_trace(0, Arc::clone(&trace), Designer::new(2));
        let config = StoreConfig {
            flush_every: 1,
            ..StoreConfig::default()
        };

        // Cold farm: the computed design is appended at publish time —
        // no explicit save step.
        let cold = Farm::new(FarmConfig {
            workers: 2,
            cache_capacity: 16,
        });
        cold.attach_store(&path, config).unwrap();
        let cold_report = cold.design_batch(vec![job()]);
        let cold_design = Arc::clone(cold_report.design(0).unwrap());
        assert_eq!(cold_report.metrics.store.appends, 1);
        assert!(cold_report.metrics.store.flushes >= 1);
        drop(cold);

        // Warm farm over the same store: recovery repopulates the cache.
        let sink = Arc::new(CollectingSink::new());
        let warm = Farm::with_sink(
            FarmConfig {
                workers: 2,
                cache_capacity: 16,
            },
            Arc::clone(&sink) as Arc<dyn EventSink>,
        );
        let stats = warm.attach_store(&path, config).unwrap();
        assert_eq!(stats.recovered, 1);
        assert_eq!(stats.truncated, 0);
        let warm_report = warm.design_batch(vec![job()]);
        assert!(warm_report.outcomes[0].cache_hit);
        assert_eq!(warm_report.metrics.cache.snapshot_hits, 1);
        assert_eq!(warm_report.metrics.snapshot.loaded, 1);
        assert_eq!(**warm_report.design(0).unwrap(), *cold_design);
        assert!(sink
            .events()
            .iter()
            .any(|e| matches!(e, FarmEvent::StoreRecovered { recovered: 1, .. })));

        // Online compaction through the farm: dedup leaves one record.
        let report = warm
            .compact_store(&CompactPolicy::default())
            .unwrap()
            .unwrap();
        assert_eq!(report.kept, 1);
        assert!(warm.store_stats().is_some());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_persists_across_batches() {
        let farm = Farm::new(FarmConfig {
            workers: 2,
            cache_capacity: 16,
        });
        let trace = paper_trace();
        let job = || DesignJob::from_trace(0, Arc::clone(&trace), Designer::new(2));
        let first = farm.design_batch(vec![job()]);
        assert_eq!(first.metrics.cache.hits, 0);
        let second = farm.design_batch(vec![job()]);
        assert_eq!(second.metrics.cache.hits, 1);
        assert_eq!(second.metrics.cache.misses, 0);
        assert!(second.outcomes[0].cache_hit);
    }
}
