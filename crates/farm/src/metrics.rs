//! Aggregated batch metrics: throughput, latency percentiles, cache
//! effectiveness and the degradation-rung histogram.
//!
//! Metrics are derived once per batch from the per-job results; the JSON
//! emitter is hand-rolled (the workspace's serde vendor has no
//! serializer) and produces a stable, machine-readable summary for the
//! CLI's `--metrics-json` flag and the benchmark artifacts.

use crate::cache::{CacheStats, SnapshotLoadReport};
use crate::store::StoreStats;
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// Summary of one batch run.
#[derive(Debug, Clone, PartialEq)]
pub struct FarmMetrics {
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs that produced a design.
    pub succeeded: usize,
    /// Jobs that failed with a [`FarmError`](crate::FarmError).
    pub failed: usize,
    /// Jobs whose design took at least one degradation rung.
    pub degraded: usize,
    /// Worker threads the batch ran on.
    pub workers: usize,
    /// Design-cache accounting for the batch's cache.
    pub cache: CacheStats,
    /// What the farm's persistent-snapshot load did (zeros when no
    /// snapshot was loaded).
    pub snapshot: SnapshotLoadReport,
    /// Durability counters of the attached log-structured store (zeros
    /// when no store is attached). Cumulative for the store handle, not
    /// per batch.
    pub store: StoreStats,
    /// Cached designs at the end of the batch.
    pub cache_entries: usize,
    /// The cache's capacity bound.
    pub cache_capacity: usize,
    /// Wall clock for the whole batch.
    pub batch_wall: Duration,
    /// Median per-job design latency (in-worker time, queue wait
    /// excluded). Nearest-rank; [`Duration::ZERO`] for an empty batch
    /// and the sole sample for a 1-job batch.
    pub latency_p50: Duration,
    /// 95th-percentile per-job design latency (same tiny-batch
    /// convention as `latency_p50`).
    pub latency_p95: Duration,
    /// Worst per-job design latency.
    pub latency_max: Duration,
    /// Completed jobs per second of batch wall clock.
    pub throughput_jobs_per_sec: f64,
    /// Count of designs per final degradation rung (rung display name →
    /// occurrences). Empty when nothing degraded.
    pub rung_histogram: BTreeMap<String, usize>,
}

/// Nearest-rank percentile of a sorted duration slice.
///
/// Convention for tiny batches (documented so `p50`/`p95` are always
/// well-defined):
///
/// - empty slice → [`Duration::ZERO`] (there is no latency to report);
/// - one element → that element for every quantile (rank `⌈q·1⌉ = 1`);
/// - otherwise the nearest-rank element `sorted[⌈q·n⌉ - 1]`, with the
///   rank clamped to `[1, n]` so `q = 0.0` and `q = 1.0` are also safe.
fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Raw per-batch inputs to [`FarmMetrics::aggregate`]: counts and cache
/// accounting, `walls` one in-worker duration per completed job, `rungs`
/// one final-rung name per degraded job.
#[derive(Debug)]
pub(crate) struct BatchTally<'a> {
    pub jobs: usize,
    pub succeeded: usize,
    pub failed: usize,
    pub workers: usize,
    pub cache: CacheStats,
    pub snapshot: SnapshotLoadReport,
    pub store: StoreStats,
    pub cache_entries: usize,
    pub cache_capacity: usize,
    pub batch_wall: Duration,
    pub walls: &'a [Duration],
    pub rungs: &'a [String],
}

impl FarmMetrics {
    /// Aggregates one batch's raw tally into the summary.
    #[must_use]
    pub(crate) fn aggregate(tally: BatchTally<'_>) -> Self {
        let mut sorted = tally.walls.to_vec();
        sorted.sort_unstable();
        let mut rung_histogram = BTreeMap::new();
        for rung in tally.rungs {
            *rung_histogram.entry(rung.clone()).or_insert(0) += 1;
        }
        let secs = tally.batch_wall.as_secs_f64();
        FarmMetrics {
            jobs: tally.jobs,
            succeeded: tally.succeeded,
            failed: tally.failed,
            degraded: tally.rungs.len(),
            workers: tally.workers,
            cache: tally.cache,
            snapshot: tally.snapshot,
            store: tally.store,
            cache_entries: tally.cache_entries,
            cache_capacity: tally.cache_capacity,
            batch_wall: tally.batch_wall,
            latency_p50: percentile(&sorted, 0.50),
            latency_p95: percentile(&sorted, 0.95),
            latency_max: sorted.last().copied().unwrap_or(Duration::ZERO),
            throughput_jobs_per_sec: if secs > 0.0 {
                tally.succeeded as f64 / secs
            } else {
                0.0
            },
            rung_histogram,
        }
    }

    /// Renders the summary as one stable JSON object (2-space indented).
    ///
    /// The leading `"version"` field follows the shared obs/farm schema
    /// version ([`fsmgen_obs::SCHEMA_VERSION`]); the full schema is
    /// documented in `DESIGN.md`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let mut rungs = String::new();
        for (i, (rung, count)) in self.rung_histogram.iter().enumerate() {
            if i > 0 {
                rungs.push_str(", ");
            }
            rungs.push_str(&format!("{}: {count}", json_string(rung)));
        }
        format!(
            "{{\n  \"version\": {},\n  \"kind\": \"farm_metrics\",\n  \"jobs\": {},\n  \"succeeded\": {},\n  \"failed\": {},\n  \"degraded\": {},\n  \"workers\": {},\n  \"cache\": {{\"hits\": {}, \"snapshot_hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}, \"insertions\": {}, \"evictions\": {}, \"stale\": {}, \"compiled\": {}, \"entries\": {}, \"capacity\": {}}},\n  \"snapshot\": {{\"loaded\": {}, \"skipped\": {}}},\n  \"store\": {{\"appends\": {}, \"flushes\": {}, \"recovered\": {}, \"skipped\": {}, \"truncated\": {}, \"compacted\": {}, \"migrated\": {}}},\n  \"wall_ms\": {:.3},\n  \"throughput_jobs_per_sec\": {:.3},\n  \"latency_ms\": {{\"p50\": {:.3}, \"p95\": {:.3}, \"max\": {:.3}}},\n  \"degradation_rungs\": {{{}}}\n}}\n",
            fsmgen_obs::SCHEMA_VERSION,
            self.jobs,
            self.succeeded,
            self.failed,
            self.degraded,
            self.workers,
            self.cache.hits,
            self.cache.snapshot_hits,
            self.cache.misses,
            self.cache.hit_rate(),
            self.cache.insertions,
            self.cache.evictions,
            self.cache.stale,
            self.cache.compiled,
            self.cache_entries,
            self.cache_capacity,
            self.snapshot.loaded,
            self.snapshot.skipped,
            self.store.appends,
            self.store.flushes,
            self.store.recovered,
            self.store.skipped,
            self.store.truncated,
            self.store.compacted,
            self.store.migrated,
            ms(self.batch_wall),
            self.throughput_jobs_per_sec,
            ms(self.latency_p50),
            ms(self.latency_p95),
            ms(self.latency_max),
            rungs
        )
    }
}

/// Quotes and escapes a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for FarmMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} jobs on {} workers in {:.1} ms ({:.1} jobs/s)",
            self.jobs,
            self.workers,
            self.batch_wall.as_secs_f64() * 1e3,
            self.throughput_jobs_per_sec
        )?;
        writeln!(
            f,
            "  succeeded {}, failed {}, degraded {}",
            self.succeeded, self.failed, self.degraded
        )?;
        writeln!(
            f,
            "  cache: {} hits + {} warm / {} misses ({:.1}% hit rate), {} entries (cap {})",
            self.cache.hits,
            self.cache.snapshot_hits,
            self.cache.misses,
            100.0 * self.cache.hit_rate(),
            self.cache_entries,
            self.cache_capacity
        )?;
        if self.snapshot.loaded > 0 || self.snapshot.skipped > 0 || self.cache.stale > 0 {
            writeln!(
                f,
                "  snapshot: {} loaded, {} skipped, {} stale",
                self.snapshot.loaded, self.snapshot.skipped, self.cache.stale
            )?;
        }
        if self.store != StoreStats::default() {
            writeln!(
                f,
                "  store: {} appends in {} flushes, {} recovered, {} migrated, \
                 {} skipped, {} truncated, {} compacted",
                self.store.appends,
                self.store.flushes,
                self.store.recovered,
                self.store.migrated,
                self.store.skipped,
                self.store.truncated,
                self.store.compacted
            )?;
        }
        write!(
            f,
            "  latency: p50 {:.2} ms, p95 {:.2} ms, max {:.2} ms",
            self.latency_p50.as_secs_f64() * 1e3,
            self.latency_p95.as_secs_f64() * 1e3,
            self.latency_max.as_secs_f64() * 1e3
        )?;
        for (rung, count) in &self.rung_histogram {
            write!(f, "\n  degraded via {rung}: {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FarmMetrics {
        FarmMetrics::aggregate(BatchTally {
            jobs: 4,
            succeeded: 3,
            failed: 1,
            workers: 2,
            cache: CacheStats {
                hits: 1,
                misses: 3,
                insertions: 3,
                evictions: 0,
                ..CacheStats::default()
            },
            snapshot: SnapshotLoadReport::default(),
            store: StoreStats::default(),
            cache_entries: 3,
            cache_capacity: 64,
            batch_wall: Duration::from_millis(100),
            walls: &[
                Duration::from_millis(10),
                Duration::from_millis(20),
                Duration::from_millis(30),
            ],
            rungs: &["saturating-counter fallback".into()],
        })
    }

    #[test]
    fn aggregation() {
        let m = sample();
        assert_eq!(m.jobs, 4);
        assert_eq!(m.succeeded, 3);
        assert_eq!(m.failed, 1);
        assert_eq!(m.degraded, 1);
        assert_eq!(m.latency_p50, Duration::from_millis(20));
        assert_eq!(m.latency_p95, Duration::from_millis(30));
        assert_eq!(m.latency_max, Duration::from_millis(30));
        assert!((m.throughput_jobs_per_sec - 30.0).abs() < 1e-9);
        assert_eq!(m.rung_histogram["saturating-counter fallback"], 1);
    }

    #[test]
    fn json_is_wellformed_enough() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"jobs\": 4"));
        assert!(json.contains("\"hit_rate\": 0.2500"));
        assert!(json.contains("\"saturating-counter fallback\": 1"));
        // Balanced braces (no nesting surprises).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_carries_snapshot_accounting() {
        let mut m = sample();
        assert!(m
            .to_json()
            .contains("\"snapshot\": {\"loaded\": 0, \"skipped\": 0}"));
        assert!(m.to_json().contains("\"snapshot_hits\": 0"));
        m.snapshot = SnapshotLoadReport {
            loaded: 6,
            skipped: 2,
        };
        m.cache.snapshot_hits = 5;
        m.cache.stale = 2;
        let json = m.to_json();
        assert!(
            json.contains("\"snapshot\": {\"loaded\": 6, \"skipped\": 2}"),
            "{json}"
        );
        assert!(json.contains("\"snapshot_hits\": 5"), "{json}");
        assert!(json.contains("\"stale\": 2"), "{json}");
        // Warm hits count toward the hit rate: (1 + 5) / (1 + 5 + 3).
        assert!(json.contains("\"hit_rate\": 0.6667"), "{json}");
    }

    #[test]
    fn display_mentions_snapshot_only_when_used() {
        let mut m = sample();
        assert!(!m.to_string().contains("snapshot:"));
        m.snapshot.loaded = 3;
        assert!(m
            .to_string()
            .contains("snapshot: 3 loaded, 0 skipped, 0 stale"));
    }

    #[test]
    fn empty_batch_metrics() {
        let m = FarmMetrics::aggregate(BatchTally {
            jobs: 0,
            succeeded: 0,
            failed: 0,
            workers: 1,
            cache: CacheStats::default(),
            snapshot: SnapshotLoadReport::default(),
            store: StoreStats::default(),
            cache_entries: 0,
            cache_capacity: 0,
            batch_wall: Duration::ZERO,
            walls: &[],
            rungs: &[],
        });
        assert_eq!(m.latency_p50, Duration::ZERO);
        assert_eq!(m.throughput_jobs_per_sec, 0.0);
        assert!(m.to_json().contains("\"degradation_rungs\": {}"));
    }

    #[test]
    fn json_carries_store_accounting() {
        let mut m = sample();
        assert!(m.to_json().contains(
            "\"store\": {\"appends\": 0, \"flushes\": 0, \"recovered\": 0, \"skipped\": 0, \
             \"truncated\": 0, \"compacted\": 0, \"migrated\": 0}"
        ));
        assert!(!m.to_string().contains("store:"), "quiet without a store");
        m.store = StoreStats {
            appends: 9,
            flushes: 3,
            recovered: 4,
            skipped: 1,
            truncated: 1,
            compacted: 2,
            migrated: 5,
        };
        let json = m.to_json();
        assert!(
            json.contains(
                "\"store\": {\"appends\": 9, \"flushes\": 3, \"recovered\": 4, \"skipped\": 1, \
                 \"truncated\": 1, \"compacted\": 2, \"migrated\": 5}"
            ),
            "{json}"
        );
        // The snapshot block must stay ahead of the store block: CLI
        // tests extract `loaded`/`skipped` by first occurrence.
        assert!(json.find("\"snapshot\"").unwrap() < json.find("\"store\"").unwrap());
        assert!(m.to_string().contains("store: 9 appends in 3 flushes"));
    }

    #[test]
    fn json_carries_schema_version() {
        let json = sample().to_json();
        assert!(json.starts_with("{\n  \"version\": 1,"), "{json}");
        assert!(json.contains("\"kind\": \"farm_metrics\""));
    }

    #[test]
    fn percentiles_on_empty_slice_are_zero() {
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(percentile(&[], q), Duration::ZERO);
        }
    }

    #[test]
    fn percentiles_on_single_element_return_it() {
        let only = [Duration::from_millis(7)];
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(percentile(&only, q), only[0]);
        }
    }

    #[test]
    fn single_job_batch_has_well_defined_quantiles() {
        let m = FarmMetrics::aggregate(BatchTally {
            jobs: 1,
            succeeded: 1,
            failed: 0,
            workers: 1,
            cache: CacheStats::default(),
            snapshot: SnapshotLoadReport::default(),
            store: StoreStats::default(),
            cache_entries: 1,
            cache_capacity: 8,
            batch_wall: Duration::from_millis(5),
            walls: &[Duration::from_millis(5)],
            rungs: &[],
        });
        assert_eq!(m.latency_p50, Duration::from_millis(5));
        assert_eq!(m.latency_p95, Duration::from_millis(5));
        assert_eq!(m.latency_max, Duration::from_millis(5));
    }

    #[test]
    fn two_element_percentiles_use_nearest_rank() {
        let sorted = [Duration::from_millis(1), Duration::from_millis(9)];
        assert_eq!(percentile(&sorted, 0.50), sorted[0]);
        assert_eq!(percentile(&sorted, 0.95), sorted[1]);
    }

    #[test]
    fn json_string_escaping() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn display_summary_mentions_cache() {
        let text = sample().to_string();
        assert!(text.contains("hit rate"));
        assert!(text.contains("p95"));
    }
}
