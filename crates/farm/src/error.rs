//! Typed failures for batch design jobs.

use fsmgen::DesignError;
use std::fmt;

/// Why one batch job failed. A failed job never poisons its batch: every
/// other job still completes and the failure comes back keyed to the
/// job's id.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FarmError {
    /// The design flow itself failed (bad config, trace too short, budget
    /// exceeded with degradation off, …).
    Design(DesignError),
    /// A fault was injected at the `farm-worker` failpoint.
    InjectedFault {
        /// Message describing the injected fault.
        reason: String,
    },
    /// The job's task panicked inside a worker; the panic was contained
    /// and converted into this error.
    WorkerPanic {
        /// The panic payload, when it was a string.
        reason: String,
    },
}

impl fmt::Display for FarmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FarmError::Design(e) => write!(f, "design failed: {e}"),
            FarmError::InjectedFault { reason } => write!(f, "injected fault: {reason}"),
            FarmError::WorkerPanic { reason } => write!(f, "worker panicked: {reason}"),
        }
    }
}

impl std::error::Error for FarmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FarmError::Design(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DesignError> for FarmError {
    fn from(e: DesignError) -> Self {
        FarmError::Design(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FarmError::from(DesignError::EmptyModel);
        assert!(e.to_string().contains("no observations"));
        assert!(std::error::Error::source(&e).is_some());
        let e = FarmError::InjectedFault {
            reason: "boom".into(),
        };
        assert!(e.to_string().contains("boom"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<T: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<FarmError>();
    }
}
