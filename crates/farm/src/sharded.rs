//! The sharded cache front-end: N independent [`Farm`]s behind one
//! fingerprint-routed facade, sharing ONE durable log.
//!
//! A single [`Farm`] serializes every cache lookup through one monitor
//! lock — fine for batch work, a bottleneck for a high-fanout design
//! service. [`ShardedFarm`] kills that lock by partitioning the
//! content-addressed cache across `shards` farms: a job is routed to
//! shard `fingerprint % shards`, so identical jobs always land on the
//! same shard (single-flight dedup keeps working) while distinct jobs
//! on different shards never contend.
//!
//! Durability stays centralized: [`ShardedFarm::attach_store`] opens the
//! log-structured [`DesignStore`](crate::DesignStore) once, partitions
//! the recovered records into the shard caches by the same routing rule,
//! and hands every shard the same [`SharedStore`] handle — one log on
//! disk, N in-memory front-ends. Appends from different shards
//! interleave in the log; recovery re-partitions them, so the shard
//! count may change between runs without losing designs.

use crate::cache::CacheStats;
use crate::engine::{lock_shared_store, Farm, FarmConfig, JobOutcome, SharedStore};
use crate::error::FarmError;
use crate::job::DesignJob;
use crate::store::{
    CompactPolicy, CompactReport, DesignStore, StoreConfig, StoreError, StoreRecord, StoreStats,
};
use fsmgen::{DesignError, Designer};
use fsmgen_exec::CompiledMachine;
use fsmgen_obs as obs;
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};

/// N fingerprint-partitioned [`Farm`]s sharing one durable log.
///
/// # Examples
///
/// ```
/// use fsmgen::Designer;
/// use fsmgen_farm::{DesignJob, FarmConfig, ShardedFarm};
/// use fsmgen_traces::BitTrace;
/// use std::sync::Arc;
///
/// let trace: Arc<BitTrace> = Arc::new("0000 1000 1011 1101 1110 1111".parse().unwrap());
/// let farm = ShardedFarm::new(4, FarmConfig { workers: 1, cache_capacity: 64 });
/// let first = farm.design(DesignJob::from_trace(0, Arc::clone(&trace), Designer::new(2)));
/// let again = farm.design(DesignJob::from_trace(1, trace, Designer::new(2)));
/// assert!(first.result.is_ok());
/// assert!(again.cache_hit); // same fingerprint → same shard → cache hit
/// assert_eq!(farm.cache_stats().hits, 1);
/// ```
pub struct ShardedFarm {
    shards: Vec<Farm>,
    /// The shared log handle, kept here so flush/compact/stats go
    /// straight to the store without bouncing through a shard.
    store: Mutex<Option<SharedStore>>,
}

impl std::fmt::Debug for ShardedFarm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedFarm")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

impl ShardedFarm {
    /// Creates `shards` farms (at least one), splitting `config`'s cache
    /// capacity evenly across them (rounded up, so the total bound is
    /// never below the requested capacity). Capacity 0 disables caching
    /// on every shard, exactly like a single farm.
    #[must_use]
    pub fn new(shards: usize, config: FarmConfig) -> Self {
        let n = shards.max(1);
        let per_shard = FarmConfig {
            workers: config.workers,
            cache_capacity: if config.cache_capacity == 0 {
                0
            } else {
                config.cache_capacity.div_ceil(n)
            },
        };
        ShardedFarm {
            shards: (0..n).map(|_| Farm::new(per_shard)).collect(),
            store: Mutex::new(None),
        }
    }

    /// How many shards this farm routes across.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The routing rule: which shard serves fingerprint `fp`.
    #[must_use]
    pub fn shard_of_fingerprint(&self, fp: u64) -> usize {
        (fp % self.shards.len() as u64) as usize
    }

    /// Which shard `job` routes to. Uncacheable jobs (deadline budgets
    /// disable the fingerprint) spread by id so they still balance.
    #[must_use]
    pub fn route(&self, job: &DesignJob) -> usize {
        match job.fingerprint() {
            Some(fp) => self.shard_of_fingerprint(fp),
            None => (job.id % self.shards.len() as u64) as usize,
        }
    }

    /// Direct access to one shard (for per-shard accounting and tests).
    ///
    /// # Panics
    ///
    /// Panics when `idx >= shard_count()`.
    #[must_use]
    pub fn shard(&self, idx: usize) -> &Farm {
        &self.shards[idx]
    }

    /// Designs one job on its routed shard. The shard's cache,
    /// single-flight dedup, durable append and failpoints all apply
    /// exactly as on a single farm.
    #[must_use]
    pub fn design(&self, job: DesignJob) -> JobOutcome {
        let id = job.id;
        let shard = self.route(&job);
        let report = self.shards[shard].design_batch(vec![job]);
        report.outcomes.into_iter().next().unwrap_or(JobOutcome {
            id,
            result: Err(FarmError::Design(DesignError::BadConfig(
                "shard batch produced no outcome".into(),
            ))),
            cache_hit: false,
            compiled: None,
            wall: std::time::Duration::ZERO,
        })
    }

    /// The online-redesign entry, routed like any design job: see
    /// [`Farm::redesign`].
    ///
    /// # Errors
    ///
    /// Exactly as [`Farm::redesign`].
    pub fn redesign(
        &self,
        id: u64,
        window: &[bool],
        designer: Designer,
    ) -> Result<Arc<CompiledMachine>, FarmError> {
        let trace: Arc<fsmgen_traces::BitTrace> = Arc::new(window.iter().copied().collect());
        let job = DesignJob::from_trace(id, trace, designer);
        let shard = self.route(&job);
        let outcome = {
            let report = self.shards[shard].design_batch(vec![job]);
            report.outcomes.into_iter().next()
        };
        let Some(outcome) = outcome else {
            return Err(FarmError::Design(DesignError::BadConfig(
                "redesign batch produced no outcome".into(),
            )));
        };
        outcome.result?;
        outcome.compiled.ok_or_else(|| {
            FarmError::Design(DesignError::BadConfig(
                "designed machine does not fit the compiled-table limits".into(),
            ))
        })
    }

    /// Attaches ONE durable store shared by every shard: opens the log at
    /// `path` (crash recovery, legacy migration and torn-tail truncation
    /// as [`Farm::attach_store`]), partitions the recovered records into
    /// the shard caches by `fingerprint % shards`, and hands each shard
    /// the same handle so all publishes append to the same log.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the file cannot serve as a store at
    /// all; no store is attached on error.
    pub fn attach_store(&self, path: &Path, config: StoreConfig) -> Result<StoreStats, StoreError> {
        let _span = obs::span("store_recover");
        let (store, records) = DesignStore::open(path, config)?;
        let stats = store.stats();
        let shared: SharedStore = Arc::new(Mutex::new(store));
        let mut buckets: Vec<Vec<StoreRecord>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for rec in records {
            buckets[self.shard_of_fingerprint(rec.fingerprint)].push(rec);
        }
        for (i, (shard, bucket)) in self.shards.iter().zip(buckets).enumerate() {
            // Recovery-time skips are whole-log accounting; attribute
            // them to shard 0 so they are counted exactly once.
            let skipped = if i == 0 { stats.skipped as usize } else { 0 };
            shard.adopt_store(Arc::clone(&shared), bucket, skipped);
        }
        *self.lock_store() = Some(shared);
        obs::counter("store_recover", "recovered", stats.recovered);
        obs::counter("store_recover", "migrated", stats.migrated);
        obs::counter("store_recover", "skipped", stats.skipped);
        obs::counter("store_recover", "truncated", stats.truncated);
        Ok(stats)
    }

    fn lock_store(&self) -> std::sync::MutexGuard<'_, Option<SharedStore>> {
        self.store.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Forces the shared store's unflushed appends to disk. A no-op
    /// without an attached store.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the fsync fails.
    pub fn flush_store(&self) -> Result<(), StoreError> {
        let store = self.lock_store().clone();
        match store {
            Some(store) => lock_shared_store(&store).flush(),
            None => Ok(()),
        }
    }

    /// Compacts the shared store online (see [`Farm::compact_store`]).
    /// Shards keep serving out of their caches during the rewrite; only
    /// concurrent appends block on the store lock.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the rewrite fails.
    pub fn compact_store(
        &self,
        policy: &CompactPolicy,
    ) -> Result<Option<CompactReport>, StoreError> {
        let Some(store) = self.lock_store().clone() else {
            return Ok(None);
        };
        let _span = obs::span("store_compact");
        let report = lock_shared_store(&store).compact(policy)?;
        obs::counter("store_compact", "kept", report.kept as u64);
        obs::counter("store_compact", "dropped", report.dropped as u64);
        Ok(Some(report))
    }

    /// The shared store's cumulative durability counters, if attached.
    #[must_use]
    pub fn store_stats(&self) -> Option<StoreStats> {
        let store = self.lock_store().clone();
        store.map(|store| lock_shared_store(&store).stats())
    }

    /// Cache accounting summed across every shard — the totals a
    /// single-farm deployment would have reported.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for stats in self.per_shard_cache_stats() {
            total.hits += stats.hits;
            total.snapshot_hits += stats.snapshot_hits;
            total.misses += stats.misses;
            total.insertions += stats.insertions;
            total.evictions += stats.evictions;
            total.stale += stats.stale;
            total.compiled += stats.compiled;
        }
        total
    }

    /// Per-shard cache accounting, indexed by shard.
    #[must_use]
    pub fn per_shard_cache_stats(&self) -> Vec<CacheStats> {
        self.shards.iter().map(Farm::cache_stats).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use fsmgen_traces::BitTrace;

    fn trace_of(pattern: &str) -> Arc<BitTrace> {
        Arc::new(pattern.parse().unwrap())
    }

    fn distinct_traces(n: usize) -> Vec<Arc<BitTrace>> {
        // Distinct periodic patterns → distinct fingerprints.
        (0..n)
            .map(|i| {
                let block = format!("{:06b}", (i * 7 + 9) % 64);
                trace_of(&block.repeat(8))
            })
            .collect()
    }

    #[test]
    fn routing_is_fingerprint_mod_shards_and_deterministic() {
        let farm = ShardedFarm::new(
            4,
            FarmConfig {
                workers: 1,
                cache_capacity: 64,
            },
        );
        for (i, trace) in distinct_traces(16).into_iter().enumerate() {
            let job = DesignJob::from_trace(i as u64, trace, Designer::new(2));
            let fp = job.fingerprint().unwrap();
            assert_eq!(farm.route(&job), (fp % 4) as usize);
        }
    }

    #[test]
    fn identical_jobs_hit_the_same_shard_cache() {
        let farm = ShardedFarm::new(
            4,
            FarmConfig {
                workers: 1,
                cache_capacity: 64,
            },
        );
        let trace = trace_of("0000 1000 1011 1101 1110 1111");
        let a = farm.design(DesignJob::from_trace(
            0,
            Arc::clone(&trace),
            Designer::new(2),
        ));
        let b = farm.design(DesignJob::from_trace(1, trace, Designer::new(2)));
        assert!(a.result.is_ok());
        assert!(b.cache_hit, "same fingerprint must hit its shard's cache");
        let totals = farm.cache_stats();
        assert_eq!((totals.hits, totals.misses), (1, 1));
        // Exactly one shard saw the traffic.
        let active = farm
            .per_shard_cache_stats()
            .iter()
            .filter(|s| s.hits + s.misses > 0)
            .count();
        assert_eq!(active, 1);
    }

    #[test]
    fn shard_results_match_single_farm_bit_for_bit() {
        let single = Farm::new(FarmConfig {
            workers: 1,
            cache_capacity: 64,
        });
        let sharded = ShardedFarm::new(
            4,
            FarmConfig {
                workers: 1,
                cache_capacity: 64,
            },
        );
        for (i, trace) in distinct_traces(12).into_iter().enumerate() {
            let job = || DesignJob::from_trace(i as u64, Arc::clone(&trace), Designer::new(3));
            let a = single.design_batch(vec![job()]);
            let b = sharded.design(job());
            assert_eq!(
                **a.design(i as u64).unwrap(),
                **b.result.as_ref().unwrap(),
                "shard routing must not change the designed machine"
            );
        }
    }

    #[test]
    fn shared_store_recovers_across_shard_counts() {
        let dir = std::env::temp_dir().join(format!("fsmgen-shardstore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("designs.flog");
        let _ = std::fs::remove_file(&path);
        let config = StoreConfig {
            flush_every: 1,
            ..StoreConfig::default()
        };

        // Write through 4 shards: every shard appends to the ONE log.
        let farm4 = ShardedFarm::new(
            4,
            FarmConfig {
                workers: 1,
                cache_capacity: 64,
            },
        );
        farm4.attach_store(&path, config).unwrap();
        let traces = distinct_traces(8);
        let mut designs = Vec::new();
        for (i, trace) in traces.iter().enumerate() {
            let out = farm4.design(DesignJob::from_trace(
                i as u64,
                Arc::clone(trace),
                Designer::new(2),
            ));
            designs.push(Arc::clone(out.result.as_ref().unwrap()));
        }
        assert_eq!(farm4.store_stats().unwrap().appends, 8);
        drop(farm4);

        // Recover into a DIFFERENT shard count: records re-partition.
        let farm2 = ShardedFarm::new(
            2,
            FarmConfig {
                workers: 1,
                cache_capacity: 64,
            },
        );
        let stats = farm2.attach_store(&path, config).unwrap();
        assert_eq!(stats.recovered, 8);
        for (i, trace) in traces.iter().enumerate() {
            let out = farm2.design(DesignJob::from_trace(
                i as u64,
                Arc::clone(trace),
                Designer::new(2),
            ));
            assert!(out.cache_hit, "recovered record must serve job {i}");
            assert_eq!(**out.result.as_ref().unwrap(), *designs[i]);
        }
        // Compaction through the facade still works.
        let report = farm2
            .compact_store(&CompactPolicy::default())
            .unwrap()
            .unwrap();
        assert_eq!(report.kept, 8);

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
