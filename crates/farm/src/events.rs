//! Structured farm events and the pluggable sink they flow through.
//!
//! Every job's lifecycle emits [`FarmEvent`]s — queued, started,
//! cache-hit, degraded, finished or failed — through an [`EventSink`]
//! shared by all workers. Sinks must be cheap and non-blocking in spirit:
//! they are called from worker threads on the design hot path. The
//! provided sinks are [`NullSink`] (drop everything, the default),
//! [`CollectingSink`] (buffer in memory, for tests and post-hoc analysis)
//! and [`StderrSink`] (line-oriented live progress, for the CLI's verbose
//! mode).

use fsmgen_obs::{ObsEvent, ObsSink};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// One structured event in a batch run's lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FarmEvent {
    /// A job was accepted into the batch, before any scheduling.
    JobQueued {
        /// The job's caller-chosen id.
        id: u64,
    },
    /// A worker picked the job up.
    JobStarted {
        /// The job's caller-chosen id.
        id: u64,
    },
    /// The job's fingerprint was found in the design cache; the cached
    /// design is returned without running the flow.
    CacheHit {
        /// The job's caller-chosen id.
        id: u64,
        /// The content fingerprint that matched.
        fingerprint: u64,
    },
    /// The design completed but took at least one degradation-ladder rung.
    JobDegraded {
        /// The job's caller-chosen id.
        id: u64,
        /// Human-readable name of the final rung taken.
        rung: String,
    },
    /// The job produced a design.
    JobFinished {
        /// The job's caller-chosen id.
        id: u64,
        /// Whether the design came from the cache.
        cache_hit: bool,
        /// Wall-clock time the job spent in a worker (queue wait
        /// excluded).
        wall: Duration,
        /// States in the final machine.
        states: usize,
    },
    /// The job failed with a typed error.
    JobFailed {
        /// The job's caller-chosen id.
        id: u64,
        /// The rendered [`FarmError`](crate::FarmError).
        error: String,
    },
    /// A persistent cache snapshot was loaded into the farm's cache.
    SnapshotLoaded {
        /// The snapshot file.
        path: String,
        /// Records restored as warm cache entries.
        loaded: usize,
        /// Records skipped for corruption or truncation.
        skipped: usize,
    },
    /// The farm's cache was written out as a persistent snapshot.
    SnapshotSaved {
        /// The snapshot file.
        path: String,
        /// Records written.
        records: usize,
    },
    /// A durable store was attached and crash recovery ran.
    StoreRecovered {
        /// The store file.
        path: String,
        /// Valid log records replayed into the cache.
        recovered: usize,
        /// Records migrated from a legacy snapshot-format file.
        migrated: usize,
        /// Corrupt-but-framed records skipped.
        skipped: usize,
        /// Torn-tail truncation events (0 or 1 per open).
        truncated: usize,
    },
    /// The attached store was compacted online.
    StoreCompacted {
        /// The store file.
        path: String,
        /// Records surviving the rewrite.
        kept: usize,
        /// Records dropped (duplicates, stale generations, corruption).
        dropped: usize,
    },
}

impl FarmEvent {
    /// The id of the job the event concerns, or `None` for farm-level
    /// events (snapshot loads and saves) that belong to no single job.
    #[must_use]
    pub fn job_id(&self) -> Option<u64> {
        match *self {
            FarmEvent::JobQueued { id }
            | FarmEvent::JobStarted { id }
            | FarmEvent::CacheHit { id, .. }
            | FarmEvent::JobDegraded { id, .. }
            | FarmEvent::JobFinished { id, .. }
            | FarmEvent::JobFailed { id, .. } => Some(id),
            FarmEvent::SnapshotLoaded { .. }
            | FarmEvent::SnapshotSaved { .. }
            | FarmEvent::StoreRecovered { .. }
            | FarmEvent::StoreCompacted { .. } => None,
        }
    }
}

/// Receives [`FarmEvent`]s from every worker thread.
pub trait EventSink: Send + Sync {
    /// Records one event. Called from worker threads; implementations
    /// should be fast and must not panic.
    fn record(&self, event: &FarmEvent);
}

/// Discards every event — the default sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&self, _event: &FarmEvent) {}
}

/// Buffers every event in memory, in arrival order.
///
/// Arrival order interleaves worker threads nondeterministically; tests
/// should assert on per-job event sequences (see [`CollectingSink::for_job`])
/// or on counts, not on global order.
#[derive(Debug, Default)]
pub struct CollectingSink {
    events: Mutex<Vec<FarmEvent>>,
}

impl CollectingSink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        CollectingSink::default()
    }

    /// A snapshot of everything recorded so far.
    #[must_use]
    pub fn events(&self) -> Vec<FarmEvent> {
        self.lock().clone()
    }

    /// The recorded events for one job, in arrival order (which *is*
    /// deterministic per job: queued, started, then the outcome events).
    #[must_use]
    pub fn for_job(&self, id: u64) -> Vec<FarmEvent> {
        self.lock()
            .iter()
            .filter(|e| e.job_id() == Some(id))
            .cloned()
            .collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<FarmEvent>> {
        self.events.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl EventSink for CollectingSink {
    fn record(&self, event: &FarmEvent) {
        self.lock().push(event.clone());
    }
}

/// Prints one line per event to stderr — live progress for CLI runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct StderrSink;

impl EventSink for StderrSink {
    fn record(&self, event: &FarmEvent) {
        match event {
            FarmEvent::JobQueued { .. } | FarmEvent::JobStarted { .. } => {}
            FarmEvent::CacheHit { id, fingerprint } => {
                eprintln!("farm: job {id} cache hit ({fingerprint:#018x})");
            }
            FarmEvent::JobDegraded { id, rung } => {
                eprintln!("farm: job {id} degraded ({rung})");
            }
            FarmEvent::JobFinished {
                id,
                cache_hit,
                wall,
                states,
            } => {
                eprintln!(
                    "farm: job {id} finished in {:.2} ms ({states} states{})",
                    wall.as_secs_f64() * 1e3,
                    if *cache_hit { ", cached" } else { "" }
                );
            }
            FarmEvent::JobFailed { id, error } => {
                eprintln!("farm: job {id} FAILED: {error}");
            }
            FarmEvent::SnapshotLoaded {
                path,
                loaded,
                skipped,
            } => {
                eprintln!("farm: snapshot {path}: {loaded} designs loaded, {skipped} skipped");
            }
            FarmEvent::SnapshotSaved { path, records } => {
                eprintln!("farm: snapshot {path}: {records} designs saved");
            }
            FarmEvent::StoreRecovered {
                path,
                recovered,
                migrated,
                skipped,
                truncated,
            } => {
                eprintln!(
                    "farm: store {path}: {recovered} recovered, {migrated} migrated, \
                     {skipped} skipped, {truncated} torn tail(s) truncated"
                );
            }
            FarmEvent::StoreCompacted {
                path,
                kept,
                dropped,
            } => {
                eprintln!("farm: store {path}: compacted to {kept} records ({dropped} dropped)");
            }
        }
    }
}

/// Bridges farm lifecycle events into the `fsmgen-obs` event stream, so
/// one [`ObsSink`] (e.g. a JSONL writer) receives both the pipeline's
/// stage spans and the farm's job lifecycle through a single versioned
/// schema.
///
/// Lifecycle events become `mark` events in the `"farm"` scope (name =
/// snake_case event kind, detail = human-readable summary); a
/// [`FarmEvent::JobDegraded`] additionally mirrors the per-attempt rung
/// events the designer emits.
#[derive(Clone)]
pub struct ObsBridgeSink {
    sink: Arc<dyn ObsSink>,
}

impl ObsBridgeSink {
    /// Forwards every farm event to `sink` as an [`ObsEvent`].
    #[must_use]
    pub fn new(sink: Arc<dyn ObsSink>) -> Self {
        ObsBridgeSink { sink }
    }
}

impl std::fmt::Debug for ObsBridgeSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsBridgeSink").finish_non_exhaustive()
    }
}

impl EventSink for ObsBridgeSink {
    fn record(&self, event: &FarmEvent) {
        self.sink.record(&to_obs_event(event));
    }
}

/// Converts one farm lifecycle event to its obs-schema equivalent.
#[must_use]
pub fn to_obs_event(event: &FarmEvent) -> ObsEvent {
    let mark = |name: &str, detail: String| ObsEvent::Mark {
        scope: "farm".to_string(),
        name: name.to_string(),
        detail,
    };
    match event {
        FarmEvent::JobQueued { id } => mark("job_queued", format!("job {id}")),
        FarmEvent::JobStarted { id } => mark("job_started", format!("job {id}")),
        FarmEvent::CacheHit { id, fingerprint } => mark(
            "cache_hit",
            format!("job {id} fingerprint {fingerprint:#018x}"),
        ),
        FarmEvent::JobDegraded { id, rung } => ObsEvent::Rung {
            rung: rung.clone(),
            stage: "farm".to_string(),
            reason: format!("job {id} degraded"),
        },
        FarmEvent::JobFinished {
            id,
            cache_hit,
            wall,
            states,
        } => mark(
            "job_finished",
            format!(
                "job {id} in {:.3} ms, {states} states{}",
                wall.as_secs_f64() * 1e3,
                if *cache_hit { ", cached" } else { "" }
            ),
        ),
        FarmEvent::JobFailed { id, error } => mark("job_failed", format!("job {id}: {error}")),
        FarmEvent::SnapshotLoaded {
            path,
            loaded,
            skipped,
        } => mark(
            "cache_snapshot_load",
            format!("{path}: {loaded} loaded, {skipped} skipped"),
        ),
        FarmEvent::SnapshotSaved { path, records } => {
            mark("cache_snapshot_save", format!("{path}: {records} records"))
        }
        FarmEvent::StoreRecovered {
            path,
            recovered,
            migrated,
            skipped,
            truncated,
        } => mark(
            "store_recover",
            format!(
                "{path}: {recovered} recovered, {migrated} migrated, \
                 {skipped} skipped, {truncated} truncated"
            ),
        ),
        FarmEvent::StoreCompacted {
            path,
            kept,
            dropped,
        } => mark(
            "store_compact",
            format!("{path}: {kept} kept, {dropped} dropped"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collecting_sink_buffers_in_order() {
        let sink = CollectingSink::new();
        sink.record(&FarmEvent::JobQueued { id: 1 });
        sink.record(&FarmEvent::JobStarted { id: 1 });
        sink.record(&FarmEvent::JobQueued { id: 2 });
        assert_eq!(sink.events().len(), 3);
        let one = sink.for_job(1);
        assert_eq!(
            one,
            vec![
                FarmEvent::JobQueued { id: 1 },
                FarmEvent::JobStarted { id: 1 }
            ]
        );
    }

    #[test]
    fn job_id_extraction() {
        assert_eq!(
            FarmEvent::JobFailed {
                id: 9,
                error: "x".into()
            }
            .job_id(),
            Some(9)
        );
        assert_eq!(
            FarmEvent::CacheHit {
                id: 3,
                fingerprint: 0
            }
            .job_id(),
            Some(3)
        );
        assert_eq!(
            FarmEvent::SnapshotSaved {
                path: "cache.fsnap".into(),
                records: 4
            }
            .job_id(),
            None
        );
    }

    #[test]
    fn snapshot_events_bridge_to_marks() {
        let loaded = to_obs_event(&FarmEvent::SnapshotLoaded {
            path: "cache.fsnap".into(),
            loaded: 5,
            skipped: 1,
        });
        assert!(matches!(&loaded, ObsEvent::Mark { scope, name, detail }
                if scope == "farm"
                    && name == "cache_snapshot_load"
                    && detail == "cache.fsnap: 5 loaded, 1 skipped"));
        let saved = to_obs_event(&FarmEvent::SnapshotSaved {
            path: "cache.fsnap".into(),
            records: 7,
        });
        assert!(matches!(&saved, ObsEvent::Mark { name, detail, .. }
                if name == "cache_snapshot_save" && detail.contains("7 records")));
    }

    #[test]
    fn null_sink_is_a_no_op() {
        NullSink.record(&FarmEvent::JobQueued { id: 0 });
    }

    #[test]
    fn obs_bridge_forwards_lifecycle_as_marks_and_rungs() {
        let obs = Arc::new(fsmgen_obs::CollectingObsSink::new());
        let bridge = ObsBridgeSink::new(obs.clone());
        bridge.record(&FarmEvent::JobQueued { id: 7 });
        bridge.record(&FarmEvent::JobDegraded {
            id: 7,
            rung: "saturating-counter fallback".into(),
        });
        bridge.record(&FarmEvent::JobFinished {
            id: 7,
            cache_hit: true,
            wall: Duration::from_millis(2),
            states: 3,
        });
        let events = obs.events();
        assert_eq!(events.len(), 3);
        assert!(matches!(&events[0], ObsEvent::Mark { scope, name, detail }
                if scope == "farm" && name == "job_queued" && detail == "job 7"));
        assert!(matches!(&events[1], ObsEvent::Rung { rung, stage, .. }
                if rung == "saturating-counter fallback" && stage == "farm"));
        assert!(matches!(&events[2], ObsEvent::Mark { name, detail, .. }
                if name == "job_finished" && detail.contains("cached")));
    }

    #[test]
    fn bridged_events_render_as_versioned_jsonl() {
        let line = to_obs_event(&FarmEvent::JobFailed {
            id: 1,
            error: "boom".into(),
        })
        .to_jsonl();
        assert!(line.starts_with("{\"v\": 1, \"type\": \"mark\""), "{line}");
        assert!(line.contains("job 1: boom"), "{line}");
    }
}
