//! Structured farm events and the pluggable sink they flow through.
//!
//! Every job's lifecycle emits [`FarmEvent`]s — queued, started,
//! cache-hit, degraded, finished or failed — through an [`EventSink`]
//! shared by all workers. Sinks must be cheap and non-blocking in spirit:
//! they are called from worker threads on the design hot path. The
//! provided sinks are [`NullSink`] (drop everything, the default),
//! [`CollectingSink`] (buffer in memory, for tests and post-hoc analysis)
//! and [`StderrSink`] (line-oriented live progress, for the CLI's verbose
//! mode).

use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// One structured event in a batch run's lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FarmEvent {
    /// A job was accepted into the batch, before any scheduling.
    JobQueued {
        /// The job's caller-chosen id.
        id: u64,
    },
    /// A worker picked the job up.
    JobStarted {
        /// The job's caller-chosen id.
        id: u64,
    },
    /// The job's fingerprint was found in the design cache; the cached
    /// design is returned without running the flow.
    CacheHit {
        /// The job's caller-chosen id.
        id: u64,
        /// The content fingerprint that matched.
        fingerprint: u64,
    },
    /// The design completed but took at least one degradation-ladder rung.
    JobDegraded {
        /// The job's caller-chosen id.
        id: u64,
        /// Human-readable name of the final rung taken.
        rung: String,
    },
    /// The job produced a design.
    JobFinished {
        /// The job's caller-chosen id.
        id: u64,
        /// Whether the design came from the cache.
        cache_hit: bool,
        /// Wall-clock time the job spent in a worker (queue wait
        /// excluded).
        wall: Duration,
        /// States in the final machine.
        states: usize,
    },
    /// The job failed with a typed error.
    JobFailed {
        /// The job's caller-chosen id.
        id: u64,
        /// The rendered [`FarmError`](crate::FarmError).
        error: String,
    },
}

impl FarmEvent {
    /// The id of the job the event concerns.
    #[must_use]
    pub fn job_id(&self) -> u64 {
        match *self {
            FarmEvent::JobQueued { id }
            | FarmEvent::JobStarted { id }
            | FarmEvent::CacheHit { id, .. }
            | FarmEvent::JobDegraded { id, .. }
            | FarmEvent::JobFinished { id, .. }
            | FarmEvent::JobFailed { id, .. } => id,
        }
    }
}

/// Receives [`FarmEvent`]s from every worker thread.
pub trait EventSink: Send + Sync {
    /// Records one event. Called from worker threads; implementations
    /// should be fast and must not panic.
    fn record(&self, event: &FarmEvent);
}

/// Discards every event — the default sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&self, _event: &FarmEvent) {}
}

/// Buffers every event in memory, in arrival order.
///
/// Arrival order interleaves worker threads nondeterministically; tests
/// should assert on per-job event sequences (see [`CollectingSink::for_job`])
/// or on counts, not on global order.
#[derive(Debug, Default)]
pub struct CollectingSink {
    events: Mutex<Vec<FarmEvent>>,
}

impl CollectingSink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        CollectingSink::default()
    }

    /// A snapshot of everything recorded so far.
    #[must_use]
    pub fn events(&self) -> Vec<FarmEvent> {
        self.lock().clone()
    }

    /// The recorded events for one job, in arrival order (which *is*
    /// deterministic per job: queued, started, then the outcome events).
    #[must_use]
    pub fn for_job(&self, id: u64) -> Vec<FarmEvent> {
        self.lock()
            .iter()
            .filter(|e| e.job_id() == id)
            .cloned()
            .collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<FarmEvent>> {
        self.events.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl EventSink for CollectingSink {
    fn record(&self, event: &FarmEvent) {
        self.lock().push(event.clone());
    }
}

/// Prints one line per event to stderr — live progress for CLI runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct StderrSink;

impl EventSink for StderrSink {
    fn record(&self, event: &FarmEvent) {
        match event {
            FarmEvent::JobQueued { .. } | FarmEvent::JobStarted { .. } => {}
            FarmEvent::CacheHit { id, fingerprint } => {
                eprintln!("farm: job {id} cache hit ({fingerprint:#018x})");
            }
            FarmEvent::JobDegraded { id, rung } => {
                eprintln!("farm: job {id} degraded ({rung})");
            }
            FarmEvent::JobFinished {
                id,
                cache_hit,
                wall,
                states,
            } => {
                eprintln!(
                    "farm: job {id} finished in {:.2} ms ({states} states{})",
                    wall.as_secs_f64() * 1e3,
                    if *cache_hit { ", cached" } else { "" }
                );
            }
            FarmEvent::JobFailed { id, error } => {
                eprintln!("farm: job {id} FAILED: {error}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collecting_sink_buffers_in_order() {
        let sink = CollectingSink::new();
        sink.record(&FarmEvent::JobQueued { id: 1 });
        sink.record(&FarmEvent::JobStarted { id: 1 });
        sink.record(&FarmEvent::JobQueued { id: 2 });
        assert_eq!(sink.events().len(), 3);
        let one = sink.for_job(1);
        assert_eq!(
            one,
            vec![
                FarmEvent::JobQueued { id: 1 },
                FarmEvent::JobStarted { id: 1 }
            ]
        );
    }

    #[test]
    fn job_id_extraction() {
        assert_eq!(
            FarmEvent::JobFailed {
                id: 9,
                error: "x".into()
            }
            .job_id(),
            9
        );
        assert_eq!(
            FarmEvent::CacheHit {
                id: 3,
                fingerprint: 0
            }
            .job_id(),
            3
        );
    }

    #[test]
    fn null_sink_is_a_no_op() {
        NullSink.record(&FarmEvent::JobQueued { id: 0 });
    }
}
