//! Persistent design-cache snapshots: a versioned, checksummed on-disk
//! format for [`Design`] results keyed by job fingerprint.
//!
//! # File format (version 1)
//!
//! All integers are little-endian.
//!
//! ```text
//! header   := magic (8 bytes, "FSMFARMS") version (u32) record_count (u32)
//! record   := fingerprint (u64) verify (u64) payload_len (u32)
//!             payload (payload_len bytes) checksum (u64)
//! checksum := FNV-1a over fingerprint_le ‖ verify_le ‖ payload
//! ```
//!
//! The checksum covers the record *header* fields as well as the payload,
//! so a flipped byte anywhere inside a record — including its length field
//! — is detected. The payload is a self-contained encoding of one
//! [`Design`] (Markov model, pattern sets, cover, optional regex, both
//! Moore machines, degradation report and effective history), decoded
//! entirely through validating constructors so corrupted bytes can never
//! reach a panicking API.
//!
//! # Corruption policy
//!
//! Header problems (bad magic, unsupported version, file shorter than the
//! header) are [`SnapshotError`]s: the caller gets nothing and should fall
//! back to a cold cache. Everything past a valid header degrades
//! per-record: a record that fails its checksum or decode is *skipped and
//! counted*, and a truncation mid-record ends the load with the remaining
//! declared records counted as skipped. Loading never panics and never
//! aborts a batch.
//!
//! Saving goes through a temporary file in the destination directory
//! followed by an atomic rename, so a crash mid-save leaves any previous
//! snapshot intact.

use crate::fnv::Fnv1a;
use fsmgen::{Degradation, DegradationStep, Design, MarkovModel, PatternSets, Rung};
use fsmgen_automata::{Dfa, Regex};
use fsmgen_logicmin::{Cover, Cube, FunctionSpec, MAX_VARS};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;

/// Magic bytes identifying a farm cache snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"FSMFARMS";

/// The snapshot format version this build writes and reads.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Fixed byte length of the snapshot header.
const HEADER_LEN: usize = 16;

/// Maximum regex nesting depth the decoder will follow. The designer's
/// own expressions are a handful of levels deep; the cap only bounds
/// adversarial input.
const MAX_REGEX_DEPTH: usize = 256;

/// The known design-pipeline stage names a degradation step may carry.
/// Decoding maps stored stage strings back onto these statics; unknown
/// strings (possible only across version skew) become `"unknown"`.
const KNOWN_STAGES: [&str; 7] = [
    "patterns", "minimize", "nfa", "dfa", "hopcroft", "reduce", "counter",
];

/// A whole-file failure: nothing could be loaded. Per-record corruption is
/// *not* an error — see the module docs' corruption policy.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The file declares a format version this build does not understand.
    UnsupportedVersion(u32),
    /// The file ends before the header does.
    TruncatedHeader,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => f.write_str("not a farm cache snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads version {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::TruncatedHeader => f.write_str("snapshot shorter than its header"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// One successfully decoded snapshot record.
#[derive(Debug, Clone)]
pub struct SnapshotRecord {
    /// The job fingerprint the design was cached under.
    pub fingerprint: u64,
    /// The independent verification digest of the producing job (see
    /// [`DesignJob::verify_hash`](crate::DesignJob::verify_hash)).
    pub verify: u64,
    /// The design itself.
    pub design: Arc<Design>,
}

/// The result of decoding a snapshot: the records that survived, plus a
/// count of those that did not.
#[derive(Debug, Clone, Default)]
pub struct DecodedSnapshot {
    /// Records that passed their checksum and decoded cleanly, in file
    /// order (the saver writes most-recently-used first).
    pub records: Vec<SnapshotRecord>,
    /// Declared records that were corrupt, undecodable or truncated away.
    pub skipped: usize,
}

// ---------------------------------------------------------------------------
// Primitive writer / reader
// ---------------------------------------------------------------------------

/// Byte-buffer writer for the payload encoding.
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed UTF-8 string.
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked byte-buffer reader. Every accessor verifies the bytes
/// exist before touching them, so corrupted lengths surface as `Err`, never
/// as a panic or an oversized allocation.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], String> {
        if n > self.remaining() {
            return Err(format!(
                "truncated: wanted {n} bytes, {} remain",
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.bytes(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a count that prefixes `elem_size`-byte elements, rejecting
    /// counts the remaining buffer cannot possibly hold (an overflow-safe
    /// guard against allocation bombs from corrupted lengths).
    fn count(&mut self, elem_size: usize) -> Result<usize, String> {
        let n = self.u32()? as usize;
        match n.checked_mul(elem_size) {
            Some(total) if total <= self.remaining() => Ok(n),
            _ => Err(format!(
                "count {n} x {elem_size}B exceeds {} remaining bytes",
                self.remaining()
            )),
        }
    }

    /// Length-prefixed UTF-8 string.
    fn str(&mut self) -> Result<String, String> {
        let n = self.count(1)?;
        let bytes = self.bytes(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("invalid UTF-8 string: {e}"))
    }
}

// ---------------------------------------------------------------------------
// Design payload codec
// ---------------------------------------------------------------------------

/// Encodes one design into a self-contained payload.
#[must_use]
pub fn encode_design(design: &Design) -> Vec<u8> {
    let mut w = Writer::new();

    // 1. Markov model.
    let model = design.model();
    w.u32(model.order() as u32);
    w.u32(model.iter().count() as u32);
    for (history, counts) in model.iter() {
        w.u32(history);
        w.u64(counts.zeros);
        w.u64(counts.ones);
    }

    // 2. Pattern sets.
    let sets = design.pattern_sets();
    let spec = sets.spec();
    w.u32(spec.width() as u32);
    for set in [spec.on_set(), spec.off_set(), spec.explicit_dont_cares()] {
        w.u32(set.len() as u32);
        for &m in set {
            w.u32(m);
        }
    }
    w.u64(sets.dont_care_observations());
    w.u64(sets.total_observations());

    // 3. Minimized cover.
    let cover = design.cover();
    w.u32(cover.width() as u32);
    w.u32(cover.len() as u32);
    for cube in cover.cubes() {
        w.u32(cube.mask());
        w.u32(cube.bits());
    }

    // 4. Optional regex.
    match design.regex() {
        None => w.u8(0),
        Some(re) => {
            w.u8(1);
            encode_regex(re, &mut w);
        }
    }

    // 5 + 6. Both Moore machines.
    encode_dfa(design.minimized_with_startup(), &mut w);
    encode_dfa(design.fsm(), &mut w);

    // 7. Degradation report.
    let steps = design.degradation().steps();
    w.u32(steps.len() as u32);
    for step in steps {
        match step.rung {
            Rung::HeuristicMinimizer => w.u8(0),
            Rung::ReducedOrder(n) => {
                w.u8(1);
                w.u32(n as u32);
            }
            // `Rung` is non-exhaustive: a future variant needs a format
            // version bump; until then the deepest known rung is the
            // closest conservative encoding.
            Rung::SaturatingCounter | _ => w.u8(2),
        }
        w.str(step.stage);
        w.str(&step.reason);
    }

    // 8. Effective history.
    w.u32(design.effective_history() as u32);

    w.buf
}

fn encode_regex(re: &Regex, w: &mut Writer) {
    match re {
        Regex::Epsilon => w.u8(0),
        Regex::Literal(bit) => {
            w.u8(1);
            w.u8(u8::from(*bit));
        }
        Regex::AnyBit => w.u8(2),
        Regex::Concat(parts) => {
            w.u8(3);
            w.u32(parts.len() as u32);
            for p in parts {
                encode_regex(p, w);
            }
        }
        Regex::Alt(parts) => {
            w.u8(4);
            w.u32(parts.len() as u32);
            for p in parts {
                encode_regex(p, w);
            }
        }
        Regex::Star(inner) => {
            w.u8(5);
            encode_regex(inner, w);
        }
    }
}

fn encode_dfa(dfa: &Dfa, w: &mut Writer) {
    w.u32(dfa.num_states() as u32);
    w.u32(dfa.start());
    for (t, &out) in dfa.transitions().iter().zip(dfa.outputs()) {
        w.u32(t[0]);
        w.u32(t[1]);
        w.u8(u8::from(out));
    }
}

/// Decodes one design payload, validating every field before it reaches a
/// panicking constructor.
///
/// # Errors
///
/// Returns a description of the first inconsistency found — truncation, an
/// out-of-range field, or a constructor-level validation failure.
pub fn decode_design(bytes: &[u8]) -> Result<Design, String> {
    let mut r = Reader::new(bytes);

    // 1. Markov model.
    let order = r.u32()? as usize;
    let n = r.count(4 + 8 + 8)?;
    let mut counts = Vec::with_capacity(n);
    for _ in 0..n {
        let history = r.u32()?;
        let zeros = r.u64()?;
        let ones = r.u64()?;
        counts.push((history, fsmgen::HistoryCounts { zeros, ones }));
    }
    let model =
        MarkovModel::from_counts(order, counts).map_err(|e| format!("markov model: {e}"))?;

    // 2. Pattern sets.
    let width = r.u32()? as usize;
    let mut sets3: [Vec<u32>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for set in &mut sets3 {
        let n = r.count(4)?;
        set.reserve(n);
        for _ in 0..n {
            set.push(r.u32()?);
        }
    }
    let [on, off, dc] = sets3;
    let mut spec =
        FunctionSpec::from_sets(width, on, off).map_err(|e| format!("function spec: {e}"))?;
    for m in dc {
        spec.add_dont_care(m)
            .map_err(|e| format!("function spec don't-care: {e}"))?;
    }
    let dont_care_observations = r.u64()?;
    let total_observations = r.u64()?;
    let sets = PatternSets::from_parts(spec, dont_care_observations, total_observations);

    // 3. Minimized cover.
    let cover_width = r.u32()? as usize;
    if cover_width == 0 || cover_width > MAX_VARS {
        return Err(format!("cover width {cover_width} out of 1..={MAX_VARS}"));
    }
    let n = r.count(8)?;
    let mut cubes = Vec::with_capacity(n);
    for _ in 0..n {
        let mask = r.u32()?;
        let bits = r.u32()?;
        cubes.push(Cube::new(mask, bits));
    }
    let cover = Cover::from_cubes(cover_width, cubes);

    // 4. Optional regex.
    let regex = match r.u8()? {
        0 => None,
        1 => Some(decode_regex(&mut r, 0)?),
        t => return Err(format!("bad regex presence tag {t}")),
    };

    // 5 + 6. Both Moore machines.
    let minimized = decode_dfa(&mut r)?;
    let fsm = decode_dfa(&mut r)?;

    // 7. Degradation report.
    let n = r.count(1)?;
    let mut steps = Vec::with_capacity(n);
    for _ in 0..n {
        let rung = match r.u8()? {
            0 => Rung::HeuristicMinimizer,
            1 => Rung::ReducedOrder(r.u32()? as usize),
            2 => Rung::SaturatingCounter,
            t => return Err(format!("bad degradation rung tag {t}")),
        };
        let stage = r.str()?;
        let stage: &'static str = KNOWN_STAGES
            .iter()
            .find(|&&s| s == stage)
            .copied()
            .unwrap_or("unknown");
        let reason = r.str()?;
        steps.push(DegradationStep {
            rung,
            stage,
            reason,
        });
    }
    let degradation = Degradation::from_steps(steps);

    // 8. Effective history.
    let effective_history = r.u32()? as usize;

    if r.remaining() != 0 {
        return Err(format!("{} trailing bytes after design", r.remaining()));
    }

    Ok(Design::from_parts(
        model,
        sets,
        cover,
        regex,
        minimized,
        fsm,
        degradation,
        effective_history,
    ))
}

/// Decodes a regex tree, constructing raw variants (the smart constructors
/// normalize, which would break exact round-tripping).
fn decode_regex(r: &mut Reader<'_>, depth: usize) -> Result<Regex, String> {
    if depth > MAX_REGEX_DEPTH {
        return Err(format!("regex nesting exceeds {MAX_REGEX_DEPTH}"));
    }
    let tag = r.u8()?;
    match tag {
        0 => Ok(Regex::Epsilon),
        1 => match r.u8()? {
            0 => Ok(Regex::Literal(false)),
            1 => Ok(Regex::Literal(true)),
            b => Err(format!("bad literal bit {b}")),
        },
        2 => Ok(Regex::AnyBit),
        3 | 4 => {
            let n = r.count(1)?;
            let mut parts = Vec::with_capacity(n);
            for _ in 0..n {
                parts.push(decode_regex(r, depth + 1)?);
            }
            Ok(if tag == 3 {
                Regex::Concat(parts)
            } else {
                Regex::Alt(parts)
            })
        }
        5 => Ok(Regex::Star(Box::new(decode_regex(r, depth + 1)?))),
        t => Err(format!("bad regex tag {t}")),
    }
}

/// Decodes one Moore machine, checking all the invariants
/// [`Dfa::from_parts`] would otherwise assert.
fn decode_dfa(r: &mut Reader<'_>) -> Result<Dfa, String> {
    let n = r.count(4 + 4 + 1)?;
    if n == 0 {
        return Err("DFA with zero states".into());
    }
    let start = r.u32()?;
    if start as usize >= n {
        return Err(format!("DFA start state {start} out of range 0..{n}"));
    }
    let mut transitions = Vec::with_capacity(n);
    let mut accept = Vec::with_capacity(n);
    for s in 0..n {
        let t0 = r.u32()?;
        let t1 = r.u32()?;
        if t0 as usize >= n || t1 as usize >= n {
            return Err(format!("DFA state {s} transition out of range 0..{n}"));
        }
        let out = match r.u8()? {
            0 => false,
            1 => true,
            b => return Err(format!("bad DFA output flag {b}")),
        };
        transitions.push([t0, t1]);
        accept.push(out);
    }
    Ok(Dfa::from_parts(transitions, accept, start))
}

// ---------------------------------------------------------------------------
// Whole-snapshot codec
// ---------------------------------------------------------------------------

/// The FNV-1a digest guarding one record (covers the record's own header
/// fields as well as its payload, so a corrupted length is caught too).
fn record_checksum(fingerprint: u64, verify: u64, payload: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(fingerprint);
    h.write_u64(verify);
    h.write(payload);
    h.finish()
}

/// Encodes a full snapshot — header plus one record per
/// `(fingerprint, verify, design)` triple, in iteration order.
#[must_use]
pub fn encode_snapshot<'a, I>(records: I) -> Vec<u8>
where
    I: IntoIterator<Item = (u64, u64, &'a Design)>,
{
    let records: Vec<(u64, u64, Vec<u8>)> = records
        .into_iter()
        .map(|(fp, verify, design)| (fp, verify, encode_design(design)))
        .collect();

    let mut out = Vec::new();
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for (fp, verify, payload) in records {
        out.extend_from_slice(&fp.to_le_bytes());
        out.extend_from_slice(&verify.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&record_checksum(fp, verify, &payload).to_le_bytes());
    }
    out
}

/// Decodes a snapshot byte buffer.
///
/// # Errors
///
/// Returns [`SnapshotError`] only for whole-file problems (short header,
/// bad magic, unsupported version). Per-record corruption — checksum
/// mismatches, undecodable payloads, truncation mid-record — is absorbed
/// into [`DecodedSnapshot::skipped`].
pub fn decode_snapshot(bytes: &[u8]) -> Result<DecodedSnapshot, SnapshotError> {
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::TruncatedHeader);
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let declared = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize;

    let mut r = Reader::new(&bytes[HEADER_LEN..]);
    let mut decoded = DecodedSnapshot::default();
    for i in 0..declared {
        match decode_record(&mut r) {
            Ok(Some(rec)) => decoded.records.push(rec),
            // Framing intact but the record is bad: skip it, keep going.
            Ok(None) => decoded.skipped += 1,
            // Truncation: everything still declared is gone.
            Err(()) => {
                decoded.skipped += declared - i;
                break;
            }
        }
    }
    Ok(decoded)
}

/// One record: `Ok(Some)` on success, `Ok(None)` for a corrupt-but-framed
/// record (checksum or decode failure), `Err(())` when the buffer ran out.
#[allow(clippy::result_unit_err)]
fn decode_record(r: &mut Reader<'_>) -> Result<Option<SnapshotRecord>, ()> {
    let fingerprint = r.u64().map_err(drop)?;
    let verify = r.u64().map_err(drop)?;
    let len = r.u32().map_err(drop)? as usize;
    // A corrupted length larger than the file reads as truncation: record
    // boundaries are unrecoverable past this point.
    let payload = r.bytes(len).map_err(drop)?;
    let stored = r.u64().map_err(drop)?;
    if stored != record_checksum(fingerprint, verify, payload) {
        return Ok(None);
    }
    match decode_design(payload) {
        Ok(design) => Ok(Some(SnapshotRecord {
            fingerprint,
            verify,
            design: Arc::new(design),
        })),
        Err(_) => Ok(None),
    }
}

// ---------------------------------------------------------------------------
// File wrappers
// ---------------------------------------------------------------------------

/// Writes a snapshot atomically: the bytes go to a sibling temporary file
/// which is then renamed over `path`, so a crash mid-write leaves any
/// previous snapshot intact.
///
/// # Errors
///
/// Returns [`SnapshotError::Io`] when the temporary file cannot be written
/// or renamed.
pub fn write_snapshot_file<'a, I>(path: &Path, records: I) -> Result<(), SnapshotError>
where
    I: IntoIterator<Item = (u64, u64, &'a Design)>,
{
    let bytes = encode_snapshot(records);
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads and decodes a snapshot file.
///
/// # Errors
///
/// Returns [`SnapshotError`] for I/O failures and whole-file format
/// problems; per-record corruption is reported through
/// [`DecodedSnapshot::skipped`] instead.
pub fn read_snapshot_file(path: &Path) -> Result<DecodedSnapshot, SnapshotError> {
    let bytes = fs::read(path)?;
    decode_snapshot(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmgen::Designer;
    use fsmgen_traces::BitTrace;

    fn sample_design() -> Design {
        let t: BitTrace = "0000 1000 1011 1101 1110 1111".parse().unwrap();
        Designer::new(2).design_from_trace(&t).unwrap()
    }

    #[test]
    fn design_round_trips_exactly() {
        let design = sample_design();
        let bytes = encode_design(&design);
        let back = decode_design(&bytes).unwrap();
        assert_eq!(design, back);
    }

    #[test]
    fn snapshot_round_trips() {
        let design = sample_design();
        let bytes = encode_snapshot([(7u64, 11u64, &design), (13u64, 17u64, &design)]);
        let decoded = decode_snapshot(&bytes).unwrap();
        assert_eq!(decoded.skipped, 0);
        assert_eq!(decoded.records.len(), 2);
        assert_eq!(decoded.records[0].fingerprint, 7);
        assert_eq!(decoded.records[0].verify, 11);
        assert_eq!(*decoded.records[1].design, design);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let bytes = encode_snapshot(std::iter::empty());
        let decoded = decode_snapshot(&bytes).unwrap();
        assert!(decoded.records.is_empty());
        assert_eq!(decoded.skipped, 0);
    }

    #[test]
    fn header_errors_are_structured() {
        assert!(matches!(
            decode_snapshot(&[]),
            Err(SnapshotError::TruncatedHeader)
        ));
        assert!(matches!(
            decode_snapshot(b"NOTAFARM\x01\x00\x00\x00\x00\x00\x00\x00"),
            Err(SnapshotError::BadMagic)
        ));
        let mut bytes = encode_snapshot(std::iter::empty());
        bytes[8] = 99;
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn corrupt_record_is_skipped_not_fatal() {
        let design = sample_design();
        let bytes = encode_snapshot([(1u64, 2u64, &design), (3u64, 4u64, &design)]);
        // Flip a byte inside the first record's payload.
        let mut corrupted = bytes.clone();
        corrupted[HEADER_LEN + 25] ^= 0xFF;
        let decoded = decode_snapshot(&corrupted).unwrap();
        assert_eq!(decoded.skipped, 1);
        assert_eq!(decoded.records.len(), 1);
        assert_eq!(decoded.records[0].fingerprint, 3);
    }

    #[test]
    fn corrupt_length_field_is_caught_by_checksum() {
        let design = sample_design();
        let bytes = encode_snapshot([(1u64, 2u64, &design)]);
        // The payload-length field sits right after fingerprint + verify.
        let mut corrupted = bytes.clone();
        corrupted[HEADER_LEN + 16] = corrupted[HEADER_LEN + 16].wrapping_sub(1);
        let decoded = decode_snapshot(&corrupted).unwrap();
        assert_eq!(decoded.records.len(), 0);
        assert_eq!(decoded.skipped, 1);
    }

    #[test]
    fn truncation_counts_all_remaining_records() {
        let design = sample_design();
        let bytes = encode_snapshot([(1u64, 2u64, &design), (3u64, 4u64, &design)]);
        for cut in [bytes.len() - 1, bytes.len() / 2, HEADER_LEN + 3] {
            let decoded = decode_snapshot(&bytes[..cut]).unwrap();
            assert_eq!(
                decoded.records.len() + decoded.skipped,
                2,
                "cut at {cut} lost records silently"
            );
        }
    }

    #[test]
    fn file_round_trip_is_atomic_and_reloadable() {
        let design = sample_design();
        let dir = std::env::temp_dir().join(format!("fsmgen-snap-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.fsnap");
        write_snapshot_file(&path, [(42u64, 43u64, &design)]).unwrap();
        assert!(
            !path.with_extension("tmp").exists(),
            "temp file left behind"
        );
        let decoded = read_snapshot_file(&path).unwrap();
        assert_eq!(decoded.records.len(), 1);
        assert_eq!(*decoded.records[0].design, design);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_snapshot_file(Path::new("/nonexistent/cache.fsnap")).unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)));
    }
}
