//! Batch design jobs and their content fingerprints.
//!
//! A [`DesignJob`] pairs one behaviour input (a raw [`BitTrace`] or a
//! prebuilt [`MarkovModel`]) with the [`Designer`] configuration to run it
//! under. The job's [`fingerprint`](DesignJob::fingerprint) is a stable
//! 64-bit FNV-1a digest over everything that determines the resulting
//! design — trace bits, history order, pattern thresholds, minimization
//! algorithm and budget caps — so the farm's cache can treat two jobs with
//! equal fingerprints as the same design.

use crate::fnv::Fnv1a;
use fsmgen::{Designer, MarkovModel};
use fsmgen_logicmin::Algorithm;
use fsmgen_traces::BitTrace;
use std::sync::Arc;

/// Seed distinguishing [`DesignJob::verify_hash`] from
/// [`DesignJob::fingerprint`] (an arbitrary odd constant).
const VERIFY_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// The behaviour input a job designs from.
#[derive(Debug, Clone)]
pub enum JobInput {
    /// A 0/1 behaviour trace; the designer builds the Markov model itself.
    /// Shared via `Arc` so a fleet of jobs over one trace (e.g. a history
    /// sweep) costs one allocation.
    Trace(Arc<BitTrace>),
    /// A prebuilt model — the per-branch, global-history models the §7.3
    /// custom-predictor trainer produces.
    Model(MarkovModel),
}

/// One unit of batch work: design a predictor for `input` under
/// `designer`'s configuration.
#[derive(Debug, Clone)]
pub struct DesignJob {
    /// Caller-chosen identifier; results come back keyed by it, in
    /// submission order, regardless of scheduling.
    pub id: u64,
    /// The behaviour to design from.
    pub input: JobInput,
    /// The design-flow configuration.
    pub designer: Designer,
}

impl DesignJob {
    /// A job designing from a shared trace.
    #[must_use]
    pub fn from_trace(id: u64, trace: Arc<BitTrace>, designer: Designer) -> Self {
        DesignJob {
            id,
            input: JobInput::Trace(trace),
            designer,
        }
    }

    /// A job designing from a prebuilt Markov model.
    #[must_use]
    pub fn from_model(id: u64, model: MarkovModel, designer: Designer) -> Self {
        DesignJob {
            id,
            input: JobInput::Model(model),
            designer,
        }
    }

    /// The job's content fingerprint, or `None` when the job is not
    /// cacheable.
    ///
    /// A job with a wall-clock deadline in its budget is *never* cacheable:
    /// its outcome depends on when it runs, so memoizing it would make
    /// batch results scheduling-dependent. Everything else that influences
    /// the produced design is folded in: input bits (or model counts),
    /// history order, pattern thresholds, algorithm, degradation switch
    /// and each budget cap (with presence tags, so `Some(0)` ≠ `None`).
    #[must_use]
    pub fn fingerprint(&self) -> Option<u64> {
        self.digest(Fnv1a::new())
    }

    /// A second, independent digest over the same job contents, used by the
    /// persistent snapshot layer to re-verify that a fingerprint match is a
    /// content match and not a 64-bit collision. Same cacheability rule as
    /// [`fingerprint`](DesignJob::fingerprint); the two digests differ only
    /// in their FNV seed, so a collision in one is (with overwhelming
    /// probability) not a collision in the other.
    #[must_use]
    pub fn verify_hash(&self) -> Option<u64> {
        self.digest(Fnv1a::with_seed(VERIFY_SEED))
    }

    /// Walks every content field of the job into `h`. Shared by the cache
    /// fingerprint and the snapshot verification hash.
    fn digest(&self, mut h: Fnv1a) -> Option<u64> {
        let budget = self.designer.design_budget();
        if budget.deadline.is_some() {
            return None;
        }

        // Input: tag the variant, then the canonical contents.
        match &self.input {
            JobInput::Trace(trace) => {
                h.write_u64(1);
                h.write_usize(trace.len());
                for &w in trace.words() {
                    h.write_u64(w);
                }
            }
            JobInput::Model(model) => {
                h.write_u64(2);
                h.write_usize(model.order());
                // BTreeMap iteration order is deterministic by history.
                for (history, counts) in model.iter() {
                    h.write_u64(u64::from(history));
                    h.write_u64(counts.zeros);
                    h.write_u64(counts.ones);
                }
            }
        }

        // Designer configuration.
        h.write_usize(self.designer.history());
        let patterns = self.designer.pattern_settings();
        h.write_f64(patterns.prob_threshold);
        h.write_f64(patterns.dont_care_fraction);
        h.write_u64(u64::from(self.designer.degrade_enabled()));
        match self.designer.minimize_algorithm() {
            Algorithm::Exact => h.write_u64(0),
            Algorithm::Heuristic => h.write_u64(1),
            Algorithm::ShortWindow => h.write_u64(2),
            Algorithm::Auto { exact_up_to } => {
                h.write_u64(3);
                h.write_usize(exact_up_to);
            }
        }

        // Budget caps (deadline ruled out above).
        h.write_opt_usize(budget.max_dfa_states);
        h.write_opt_usize(budget.max_nfa_states);
        h.write_opt_usize(budget.max_minterms);
        h.write_opt_usize(budget.max_primes);
        h.write_opt_usize(budget.max_cover_nodes);

        Some(h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmgen::DesignBudget;
    use std::time::{Duration, Instant};

    fn trace() -> Arc<BitTrace> {
        Arc::new("0000 1000 1011 1101 1110 1111".parse().unwrap())
    }

    #[test]
    fn equal_jobs_share_a_fingerprint() {
        let a = DesignJob::from_trace(0, trace(), Designer::new(2));
        let b = DesignJob::from_trace(7, trace(), Designer::new(2));
        // The id is routing information, not content.
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(a.fingerprint().is_some());
    }

    #[test]
    fn config_fields_separate_fingerprints() {
        let base = DesignJob::from_trace(0, trace(), Designer::new(2));
        let variants = [
            DesignJob::from_trace(0, trace(), Designer::new(3)),
            DesignJob::from_trace(0, trace(), Designer::new(2).prob_threshold(0.75)),
            DesignJob::from_trace(0, trace(), Designer::new(2).dont_care_fraction(0.0)),
            DesignJob::from_trace(0, trace(), Designer::new(2).algorithm(Algorithm::Heuristic)),
            DesignJob::from_trace(0, trace(), Designer::new(2).degrade(false)),
            DesignJob::from_trace(
                0,
                trace(),
                Designer::new(2).budget(DesignBudget {
                    max_dfa_states: Some(64),
                    ..DesignBudget::default()
                }),
            ),
        ];
        for v in &variants {
            assert_ne!(base.fingerprint(), v.fingerprint());
        }
    }

    #[test]
    fn trace_and_model_never_collide_by_tag() {
        let t = trace();
        let model = MarkovModel::from_bit_trace(2, &t).unwrap();
        let a = DesignJob::from_trace(0, t, Designer::new(2));
        let b = DesignJob::from_model(0, model, Designer::new(2));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn verify_hash_is_independent_of_fingerprint() {
        let job = DesignJob::from_trace(0, trace(), Designer::new(2));
        let fp = job.fingerprint().unwrap();
        let vh = job.verify_hash().unwrap();
        assert_ne!(fp, vh);
        // Both are stable content digests: equal jobs agree on both.
        let twin = DesignJob::from_trace(9, trace(), Designer::new(2));
        assert_eq!(twin.fingerprint(), Some(fp));
        assert_eq!(twin.verify_hash(), Some(vh));
        // And both move when content moves.
        let other = DesignJob::from_trace(0, trace(), Designer::new(3));
        assert_ne!(other.verify_hash(), Some(vh));
    }

    #[test]
    fn deadline_disables_caching() {
        let job = DesignJob::from_trace(
            0,
            trace(),
            Designer::new(2).budget(DesignBudget {
                deadline: Some(Instant::now() + Duration::from_secs(3600)),
                ..DesignBudget::default()
            }),
        );
        assert_eq!(job.fingerprint(), None);
    }
}
