//! A minimal 64-bit FNV-1a hasher for content fingerprints.
//!
//! The farm's design cache keys on a *stable* hash of the job contents:
//! the fingerprint must not change across processes, platforms or library
//! versions, which rules out `std::hash` (`SipHash` with random per-process
//! keys, and explicitly unstable). FNV-1a is tiny, dependency-free and has
//! good dispersion on the short, structured inputs we feed it (trace words
//! and config scalars).

/// FNV-1a offset basis for 64-bit hashes.
const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime for 64-bit hashes.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental 64-bit FNV-1a hasher.
///
/// # Examples
///
/// ```
/// use fsmgen_farm::Fnv1a;
///
/// let mut h = Fnv1a::new();
/// h.write_u64(42);
/// let a = h.finish();
/// let mut h = Fnv1a::new();
/// h.write_u64(43);
/// assert_ne!(a, h.finish());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// Creates a hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv1a {
            state: OFFSET_BASIS,
        }
    }

    /// Creates a hasher whose initial state is the offset basis folded
    /// with `seed`. Two hashers with different seeds walk the same input
    /// to independent digests — the snapshot layer uses this for the
    /// per-record verification hash that guards against fingerprint
    /// collisions.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        let mut h = Fnv1a::new();
        h.write_u64(seed);
        h
    }

    /// Folds raw bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(PRIME);
        }
    }

    /// Folds one `u64` (little-endian) into the hash.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds one `usize` into the hash (widened to `u64` so 32- and 64-bit
    /// targets fingerprint identically).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds an `Option<usize>` with an explicit presence tag, so
    /// `Some(0)` and `None` never collide.
    pub fn write_opt_usize(&mut self, v: Option<usize>) {
        match v {
            None => self.write_u64(0),
            Some(n) => {
                self.write_u64(1);
                self.write_u64(n as u64);
            }
        }
    }

    /// Folds one `f64` by exact bit pattern (configs are compared by
    /// identity, not numeric tolerance).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The current hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // FNV-1a("") = offset basis; FNV-1a("a") = 0xaf63dc4c8601ec8c.
        assert_eq!(Fnv1a::new().finish(), OFFSET_BASIS);
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn option_tagging_disambiguates() {
        let mut a = Fnv1a::new();
        a.write_opt_usize(None);
        a.write_opt_usize(Some(0));
        let mut b = Fnv1a::new();
        b.write_opt_usize(Some(0));
        b.write_opt_usize(None);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut a = Fnv1a::new();
        a.write(b"hello ");
        a.write(b"world");
        let mut b = Fnv1a::new();
        b.write(b"hello world");
        assert_eq!(a.finish(), b.finish());
    }
}
