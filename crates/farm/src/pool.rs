//! A dependency-free work-stealing pool for one-shot batches.
//!
//! The farm's workload is a fixed batch of independent, coarse-grained
//! jobs (each job is a full design-flow run, milliseconds to seconds), so
//! the pool is deliberately simple: tasks are dealt round-robin into
//! per-worker deques up front, each worker drains its own deque from the
//! front and *steals from the back* of its siblings' deques when it runs
//! dry. Stealing from the opposite end keeps the owner and thieves off the
//! same cache lines of work and is the classic Chase–Lev discipline,
//! implemented here with plain mutexed deques — contention is one lock op
//! per job, which is noise next to a design run.
//!
//! Results are returned **in task-submission order**, whatever the
//! scheduling: each worker records `(index, result)` pairs and the batch
//! is reassembled by index at the end. Combined with a deterministic task
//! body this makes the whole batch deterministic in the worker count.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

/// Locks a mutex, surviving poisoning (worker panics propagate through
/// [`std::thread::scope`] anyway; the queues hold plain data).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `tasks` on `workers` threads, returning results in task order.
///
/// With one worker (or one task) everything runs inline on the calling
/// thread — the sequential fallback, which also keeps thread-local state
/// (e.g. thread-local failpoints) visible to the tasks.
pub(crate) fn run_batch<T, F>(workers: usize, tasks: Vec<F>) -> Vec<T>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    let n_tasks = tasks.len();
    let workers = workers.max(1).min(n_tasks.max(1));
    if workers <= 1 {
        return tasks.into_iter().map(|task| task()).collect();
    }

    // Deal tasks round-robin so every worker starts with a fair share.
    let deques: Vec<Mutex<VecDeque<(usize, F)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (index, task) in tasks.into_iter().enumerate() {
        lock(&deques[index % workers]).push_back((index, task));
    }

    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n_tasks));
    std::thread::scope(|scope| {
        for me in 0..workers {
            let deques = &deques;
            let collected = &collected;
            scope.spawn(move || {
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    // Own work first (front), then steal (back). The own
                    // pop is a separate statement so its guard drops
                    // before any victim deque is locked — chaining them
                    // would hold both locks at once and two stealing
                    // workers could deadlock ABBA-style.
                    let own = lock(&deques[me]).pop_front();
                    let job = own.or_else(|| {
                        (1..workers)
                            .map(|d| (me + d) % workers)
                            .find_map(|victim| lock(&deques[victim]).pop_back())
                    });
                    match job {
                        Some((index, task)) => local.push((index, task())),
                        None => break,
                    }
                }
                lock(collected).append(&mut local);
            });
        }
    });

    let mut pairs = collected
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    debug_assert_eq!(pairs.len(), n_tasks, "every task must produce a result");
    pairs.sort_unstable_by_key(|&(index, _)| index);
    pairs.into_iter().map(|(_, result)| result).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_task_order() {
        for workers in [1, 2, 3, 8] {
            let tasks: Vec<_> = (0..50).map(|i| move || i * 10).collect();
            let out = run_batch(workers, tasks);
            assert_eq!(out, (0..50).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        static RUNS: AtomicUsize = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..200)
            .map(|i| {
                move || {
                    RUNS.fetch_add(1, Ordering::Relaxed);
                    i
                }
            })
            .collect();
        let out = run_batch(4, tasks);
        assert_eq!(RUNS.load(Ordering::Relaxed), 200);
        assert_eq!(out.len(), 200);
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        let tasks: Vec<_> = (0..3).map(|i| move || i).collect();
        assert_eq!(run_batch(64, tasks), vec![0, 1, 2]);
    }

    #[test]
    fn empty_batch() {
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = Vec::new();
        assert!(run_batch(4, tasks).is_empty());
    }

    #[test]
    fn stealing_drains_imbalanced_queues() {
        // One slow task pins a worker; the others must steal the rest of
        // its deque. With round-robin dealing, worker 0 holds the slow
        // task plus every 4th task — if stealing were broken this would
        // take ~4 slow-task times instead of ~1.
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..40)
            .map(|i| {
                let f: Box<dyn FnOnce() -> usize + Send> = if i == 0 {
                    Box::new(|| {
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        0
                    })
                } else {
                    Box::new(move || i)
                };
                f
            })
            .collect();
        let out = run_batch(4, tasks);
        assert_eq!(out, (0..40).collect::<Vec<_>>());
    }
}
