//! The content-addressed design cache: an LRU map from job fingerprints to
//! finished designs.
//!
//! Fleets of predictors re-design the same configurations constantly — the
//! same hot branch shows up across benchmark inputs, a history sweep
//! revisits a length, a search loop re-evaluates a candidate. Keying
//! finished [`Design`]s by the job's content fingerprint makes every
//! repeat free. Entries are bounded by an LRU policy and hit/miss/eviction
//! counts are kept for the farm's metrics.
//!
//! The map is a classic intrusive LRU: a slab of entries doubly linked in
//! recency order plus a fingerprint index, so `get` and `insert` are O(1).

use crate::snapshot::{read_snapshot_file, write_snapshot_file, SnapshotError};
use fsmgen::Design;
use fsmgen_exec::CompiledMachine;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Sentinel for "no neighbour" in the intrusive list.
const NONE: usize = usize::MAX;

struct Entry {
    key: u64,
    design: Arc<Design>,
    /// The design's machine lowered to a dense transition table, done
    /// once at insert so every hit — including warm snapshot/store
    /// restores — hands back a ready-to-run artifact. `None` only for
    /// machines beyond the table limit (not producible by the designer).
    compiled: Option<Arc<CompiledMachine>>,
    /// The producing job's independent verification digest (0 for entries
    /// inserted through the plain [`DesignCache::insert`]).
    verify: u64,
    /// `true` when the entry came from a persistent snapshot rather than
    /// being computed in this process. Warm entries are re-verified on
    /// lookup; fresh ones are trusted.
    warm: bool,
    prev: usize,
    next: usize,
}

/// Running cache accounting, cheap to copy into metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a design computed in this process.
    pub hits: u64,
    /// Lookups that found a design restored from a persistent snapshot.
    pub snapshot_hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Designs inserted.
    pub insertions: u64,
    /// Designs evicted by the LRU bound.
    pub evictions: u64,
    /// Snapshot records rejected: skipped at load (corrupt or truncated)
    /// plus warm entries whose verification digest did not match at lookup.
    pub stale: u64,
    /// Designs lowered to compiled transition tables at insert time.
    pub compiled: u64,
}

impl CacheStats {
    /// Hits (in-memory and snapshot) over total lookups, or 0.0 before any
    /// lookup.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits + self.snapshot_hits;
        let total = hits + self.misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// What a snapshot load did: how many designs were restored into the
/// cache and how many stored records were rejected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotLoadReport {
    /// Records decoded and inserted as warm entries.
    pub loaded: usize,
    /// Records skipped for corruption, truncation or decode failure.
    pub skipped: usize,
}

/// A bounded LRU cache of finished designs keyed by content fingerprint.
///
/// # Examples
///
/// ```
/// use fsmgen::Designer;
/// use fsmgen_farm::DesignCache;
/// use fsmgen_traces::BitTrace;
/// use std::sync::Arc;
///
/// let trace: BitTrace = "0000 1000 1011 1101 1110 1111".parse().unwrap();
/// let design = Arc::new(Designer::new(2).design_from_trace(&trace).unwrap());
/// let mut cache = DesignCache::new(2);
/// cache.insert(42, design);
/// assert!(cache.get(42).is_some());
/// assert!(cache.get(7).is_none());
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
pub struct DesignCache {
    capacity: usize,
    index: HashMap<u64, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    stats: CacheStats,
}

impl std::fmt::Debug for DesignCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DesignCache")
            .field("capacity", &self.capacity)
            .field("len", &self.index.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl DesignCache {
    /// Creates a cache holding at most `capacity` designs. Capacity 0 is a
    /// valid always-miss cache (lookup accounting still runs).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        DesignCache {
            capacity,
            index: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
            stats: CacheStats::default(),
        }
    }

    /// Number of cached designs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The configured capacity bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The running hit/miss/eviction accounting.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up a design by fingerprint, marking it most recently used.
    /// In-memory entries count as [`CacheStats::hits`]; warm
    /// (snapshot-restored) entries count as [`CacheStats::snapshot_hits`]
    /// but are *not* re-verified — use [`DesignCache::get_verified`] when
    /// the caller knows the job's verification digest.
    pub fn get(&mut self, key: u64) -> Option<Arc<Design>> {
        match self.index.get(&key).copied() {
            Some(slot) => {
                if self.slab[slot].warm {
                    self.stats.snapshot_hits += 1;
                } else {
                    self.stats.hits += 1;
                }
                self.detach(slot);
                self.attach_front(slot);
                Some(Arc::clone(&self.slab[slot].design))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Looks up a design by fingerprint, re-verifying warm entries against
    /// the job's independent digest.
    ///
    /// A fresh (computed-in-process) entry is returned unconditionally — a
    /// fingerprint collision within one process would already have served
    /// the wrong design through [`DesignCache::get`], and the 64-bit space
    /// makes that a non-concern for in-memory lifetimes. A *warm* entry is
    /// the suspect case: its fingerprint was computed by another process
    /// over different inputs, so a matching fingerprint with a mismatched
    /// verification digest marks the entry stale — it is evicted, counted
    /// in [`CacheStats::stale`], and the lookup reports a miss.
    pub fn get_verified(&mut self, key: u64, verify: u64) -> Option<Arc<Design>> {
        if let Some(&slot) = self.index.get(&key) {
            if self.slab[slot].warm && self.slab[slot].verify != verify {
                self.remove_slot(slot);
                self.stats.stale += 1;
                self.stats.misses += 1;
                return None;
            }
        }
        self.get(key)
    }

    /// Inserts (or refreshes) a design under `key`, evicting the least
    /// recently used entry when over capacity.
    pub fn insert(&mut self, key: u64, design: Arc<Design>) {
        self.insert_entry(key, 0, design, false);
    }

    /// [`DesignCache::insert`] carrying the job's verification digest, so
    /// the entry can be re-verified after a snapshot round-trip.
    pub fn insert_verified(&mut self, key: u64, verify: u64, design: Arc<Design>) {
        self.insert_entry(key, verify, design, false);
    }

    /// Inserts a snapshot-restored design: served as
    /// [`CacheStats::snapshot_hits`] and re-verified by
    /// [`DesignCache::get_verified`].
    pub fn insert_warm(&mut self, key: u64, verify: u64, design: Arc<Design>) {
        self.insert_entry(key, verify, design, true);
    }

    fn insert_entry(&mut self, key: u64, verify: u64, design: Arc<Design>, warm: bool) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot) = self.index.get(&key) {
            // Same fingerprint, same design contents: refresh recency only.
            self.detach(slot);
            self.attach_front(slot);
            return;
        }
        if self.index.len() >= self.capacity {
            self.evict_lru();
        }
        // Compile once here — hits (cold, warm, and every repeat) then
        // hand back the ready table alongside the design.
        let compiled = CompiledMachine::compile(design.fsm()).ok().map(Arc::new);
        if compiled.is_some() {
            self.stats.compiled += 1;
        }
        let entry = Entry {
            key,
            design,
            compiled,
            verify,
            warm,
            prev: NONE,
            next: NONE,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = entry;
                slot
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        };
        self.index.insert(key, slot);
        self.attach_front(slot);
        self.stats.insertions += 1;
    }

    /// The compiled transition table for `key`, if cached. A peek: no
    /// recency or hit/miss accounting — callers pair it with the
    /// [`DesignCache::get`]/[`DesignCache::get_verified`] lookup that
    /// already counted.
    #[must_use]
    pub fn compiled_of(&self, key: u64) -> Option<Arc<CompiledMachine>> {
        self.index
            .get(&key)
            .and_then(|&slot| self.slab[slot].compiled.clone())
    }

    /// Visits every cached design from most to least recently used, as
    /// `(fingerprint, verify, design)` triples — the order snapshots are
    /// written in, so a bounded reload keeps the hottest entries.
    pub fn iter_mru(&self) -> impl Iterator<Item = (u64, u64, &Design)> {
        let mut slot = self.head;
        std::iter::from_fn(move || {
            if slot == NONE {
                return None;
            }
            let e = &self.slab[slot];
            slot = e.next;
            Some((e.key, e.verify, &*e.design))
        })
    }

    /// Writes the cache contents to `path` in snapshot format, most
    /// recently used first, via a temporary file and an atomic rename.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] when the file cannot be written.
    pub fn save_snapshot(&self, path: &Path) -> Result<(), SnapshotError> {
        write_snapshot_file(path, self.iter_mru())
    }

    /// Loads a snapshot file into the cache as warm entries, preserving
    /// the stored recency order (up to this cache's capacity bound — the
    /// most recently used records win).
    ///
    /// Corrupt records are skipped, counted in the returned report and in
    /// [`CacheStats::stale`]; they never abort the load.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] only for whole-file problems: I/O
    /// failure, bad magic, unsupported version or a truncated header. The
    /// caller should treat that as "start cold".
    pub fn load_snapshot(&mut self, path: &Path) -> Result<SnapshotLoadReport, SnapshotError> {
        let decoded = read_snapshot_file(path)?;
        // Records are stored most-recent-first; inserting in reverse keeps
        // the stored recency (the last insert becomes the cache's MRU).
        let loaded = decoded.records.len();
        for rec in decoded.records.into_iter().rev() {
            self.insert_warm(rec.fingerprint, rec.verify, rec.design);
        }
        self.stats.stale += decoded.skipped as u64;
        Ok(SnapshotLoadReport {
            loaded,
            skipped: decoded.skipped,
        })
    }

    fn evict_lru(&mut self) {
        let slot = self.tail;
        if slot == NONE {
            return;
        }
        self.remove_slot(slot);
        self.stats.evictions += 1;
    }

    /// Unlinks `slot` from the list and index and returns it to the free
    /// pool (no stats side effects).
    fn remove_slot(&mut self, slot: usize) {
        self.detach(slot);
        let key = self.slab[slot].key;
        self.index.remove(&key);
        self.free.push(slot);
    }

    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        if prev != NONE {
            self.slab[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NONE {
            self.slab[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slab[slot].prev = NONE;
        self.slab[slot].next = NONE;
    }

    fn attach_front(&mut self, slot: usize) {
        self.slab[slot].prev = NONE;
        self.slab[slot].next = self.head;
        if self.head != NONE {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NONE {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmgen::Designer;
    use fsmgen_traces::BitTrace;

    fn design() -> Arc<Design> {
        let t: BitTrace = "0101".repeat(10).parse().unwrap();
        Arc::new(Designer::new(2).design_from_trace(&t).unwrap())
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut cache = DesignCache::new(2);
        let d = design();
        cache.insert(1, Arc::clone(&d));
        cache.insert(2, Arc::clone(&d));
        assert!(cache.get(1).is_some()); // 1 is now most recent
        cache.insert(3, d); // evicts 2
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut cache = DesignCache::new(0);
        cache.insert(1, design());
        assert!(cache.get(1).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().insertions, 0);
    }

    #[test]
    fn reinsert_refreshes_recency_without_duplicating() {
        let mut cache = DesignCache::new(2);
        let d = design();
        cache.insert(1, Arc::clone(&d));
        cache.insert(2, Arc::clone(&d));
        cache.insert(1, Arc::clone(&d)); // refresh, not duplicate
        assert_eq!(cache.len(), 2);
        cache.insert(3, d); // evicts 2, the least recent
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
    }

    #[test]
    fn stats_accounting() {
        let mut cache = DesignCache::new(4);
        assert_eq!(cache.stats().hit_rate(), 0.0);
        cache.insert(1, design());
        let _ = cache.get(1);
        let _ = cache.get(9);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn warm_hits_are_counted_separately() {
        let mut cache = DesignCache::new(4);
        cache.insert_verified(1, 100, design());
        cache.insert_warm(2, 200, design());
        assert!(cache.get_verified(1, 100).is_some());
        assert!(cache.get_verified(2, 200).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.snapshot_hits, s.misses, s.stale), (1, 1, 0, 0));
    }

    #[test]
    fn warm_verify_mismatch_is_stale_and_evicted() {
        let mut cache = DesignCache::new(4);
        cache.insert_warm(1, 200, design());
        // A fingerprint collision across processes: same key, different
        // verification digest. Must not serve the wrong design.
        assert!(cache.get_verified(1, 999).is_none());
        let s = cache.stats();
        assert_eq!((s.snapshot_hits, s.misses, s.stale), (0, 1, 1));
        assert_eq!(cache.len(), 0);
        // The slot is reusable afterwards.
        cache.insert_verified(1, 999, design());
        assert!(cache.get_verified(1, 999).is_some());
    }

    #[test]
    fn fresh_entries_skip_verification() {
        let mut cache = DesignCache::new(4);
        cache.insert_verified(1, 100, design());
        // In-process entries are trusted even on digest mismatch.
        assert!(cache.get_verified(1, 999).is_some());
        assert_eq!(cache.stats().stale, 0);
    }

    #[test]
    fn snapshot_round_trip_preserves_entries_and_recency() {
        let dir = std::env::temp_dir().join(format!("fsmgen-cache-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.fsnap");

        let mut cache = DesignCache::new(8);
        let d = design();
        for k in 1..=4u64 {
            cache.insert_verified(k, k * 10, Arc::clone(&d));
        }
        let _ = cache.get(1); // 1 becomes MRU: order 1, 4, 3, 2
        cache.save_snapshot(&path).unwrap();

        let mut warm = DesignCache::new(8);
        let report = warm.load_snapshot(&path).unwrap();
        assert_eq!(
            report,
            SnapshotLoadReport {
                loaded: 4,
                skipped: 0
            }
        );
        let order: Vec<u64> = warm.iter_mru().map(|(k, _, _)| k).collect();
        assert_eq!(order, vec![1, 4, 3, 2]);
        let verifies: Vec<u64> = warm.iter_mru().map(|(_, v, _)| v).collect();
        assert_eq!(verifies, vec![10, 40, 30, 20]);
        // Warm entries serve with a matching digest…
        assert!(warm.get_verified(1, 10).is_some());
        assert_eq!(warm.stats().snapshot_hits, 1);
        // …and the restored design is the one we saved.
        assert_eq!(*warm.get(2).unwrap(), *d);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bounded_load_keeps_most_recent_records() {
        let dir = std::env::temp_dir().join(format!("fsmgen-cache-bound-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.fsnap");

        let mut cache = DesignCache::new(8);
        let d = design();
        for k in 1..=6u64 {
            cache.insert_verified(k, 0, Arc::clone(&d));
        }
        cache.save_snapshot(&path).unwrap();

        // A smaller cache keeps the hottest (most recently used) records.
        let mut warm = DesignCache::new(2);
        let report = warm.load_snapshot(&path).unwrap();
        assert_eq!(report.loaded, 6);
        let order: Vec<u64> = warm.iter_mru().map(|(k, _, _)| k).collect();
        assert_eq!(order, vec![6, 5]);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn designs_compile_at_insert() {
        let mut cache = DesignCache::new(4);
        let d = design();
        cache.insert(1, Arc::clone(&d));
        let compiled = cache.compiled_of(1).unwrap();
        assert_eq!(compiled.num_states() as usize, d.fsm().num_states());
        assert_eq!(cache.stats().compiled, 1);
        // Warm (snapshot-restored) inserts compile too: a warm hit hands
        // back a ready table, not a machine still to lower.
        cache.insert_warm(2, 9, Arc::clone(&d));
        assert!(cache.compiled_of(2).is_some());
        assert_eq!(cache.stats().compiled, 2);
        assert!(cache.compiled_of(42).is_none());
        // The artifact runs the same machine.
        let dfa = compiled.decompile();
        assert_eq!(&dfa, d.fsm());
    }

    #[test]
    fn churn_over_many_keys_stays_bounded() {
        let mut cache = DesignCache::new(8);
        let d = design();
        for k in 0..100u64 {
            cache.insert(k, Arc::clone(&d));
        }
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.stats().evictions, 92);
        // The survivors are exactly the 8 most recent keys.
        for k in 92..100 {
            assert!(cache.get(k).is_some(), "key {k} should survive");
        }
        for k in 0..92 {
            assert!(cache.get(k).is_none(), "key {k} should be evicted");
        }
    }
}
