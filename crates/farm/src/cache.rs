//! The content-addressed design cache: an LRU map from job fingerprints to
//! finished designs.
//!
//! Fleets of predictors re-design the same configurations constantly — the
//! same hot branch shows up across benchmark inputs, a history sweep
//! revisits a length, a search loop re-evaluates a candidate. Keying
//! finished [`Design`]s by the job's content fingerprint makes every
//! repeat free. Entries are bounded by an LRU policy and hit/miss/eviction
//! counts are kept for the farm's metrics.
//!
//! The map is a classic intrusive LRU: a slab of entries doubly linked in
//! recency order plus a fingerprint index, so `get` and `insert` are O(1).

use fsmgen::Design;
use std::collections::HashMap;
use std::sync::Arc;

/// Sentinel for "no neighbour" in the intrusive list.
const NONE: usize = usize::MAX;

struct Entry {
    key: u64,
    design: Arc<Design>,
    prev: usize,
    next: usize,
}

/// Running cache accounting, cheap to copy into metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a design.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Designs inserted.
    pub insertions: u64,
    /// Designs evicted by the LRU bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits over total lookups, or 0.0 before any lookup.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded LRU cache of finished designs keyed by content fingerprint.
///
/// # Examples
///
/// ```
/// use fsmgen::Designer;
/// use fsmgen_farm::DesignCache;
/// use fsmgen_traces::BitTrace;
/// use std::sync::Arc;
///
/// let trace: BitTrace = "0000 1000 1011 1101 1110 1111".parse().unwrap();
/// let design = Arc::new(Designer::new(2).design_from_trace(&trace).unwrap());
/// let mut cache = DesignCache::new(2);
/// cache.insert(42, design);
/// assert!(cache.get(42).is_some());
/// assert!(cache.get(7).is_none());
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
pub struct DesignCache {
    capacity: usize,
    index: HashMap<u64, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    stats: CacheStats,
}

impl std::fmt::Debug for DesignCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DesignCache")
            .field("capacity", &self.capacity)
            .field("len", &self.index.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl DesignCache {
    /// Creates a cache holding at most `capacity` designs. Capacity 0 is a
    /// valid always-miss cache (lookup accounting still runs).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        DesignCache {
            capacity,
            index: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
            stats: CacheStats::default(),
        }
    }

    /// Number of cached designs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The configured capacity bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The running hit/miss/eviction accounting.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up a design by fingerprint, marking it most recently used.
    pub fn get(&mut self, key: u64) -> Option<Arc<Design>> {
        match self.index.get(&key).copied() {
            Some(slot) => {
                self.stats.hits += 1;
                self.detach(slot);
                self.attach_front(slot);
                Some(Arc::clone(&self.slab[slot].design))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) a design under `key`, evicting the least
    /// recently used entry when over capacity.
    pub fn insert(&mut self, key: u64, design: Arc<Design>) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot) = self.index.get(&key) {
            // Same fingerprint, same design contents: refresh recency only.
            self.detach(slot);
            self.attach_front(slot);
            return;
        }
        if self.index.len() >= self.capacity {
            self.evict_lru();
        }
        let entry = Entry {
            key,
            design,
            prev: NONE,
            next: NONE,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = entry;
                slot
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        };
        self.index.insert(key, slot);
        self.attach_front(slot);
        self.stats.insertions += 1;
    }

    fn evict_lru(&mut self) {
        let slot = self.tail;
        if slot == NONE {
            return;
        }
        self.detach(slot);
        let key = self.slab[slot].key;
        self.index.remove(&key);
        self.free.push(slot);
        self.stats.evictions += 1;
    }

    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        if prev != NONE {
            self.slab[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NONE {
            self.slab[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slab[slot].prev = NONE;
        self.slab[slot].next = NONE;
    }

    fn attach_front(&mut self, slot: usize) {
        self.slab[slot].prev = NONE;
        self.slab[slot].next = self.head;
        if self.head != NONE {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NONE {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmgen::Designer;
    use fsmgen_traces::BitTrace;

    fn design() -> Arc<Design> {
        let t: BitTrace = "0101".repeat(10).parse().unwrap();
        Arc::new(Designer::new(2).design_from_trace(&t).unwrap())
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut cache = DesignCache::new(2);
        let d = design();
        cache.insert(1, Arc::clone(&d));
        cache.insert(2, Arc::clone(&d));
        assert!(cache.get(1).is_some()); // 1 is now most recent
        cache.insert(3, d); // evicts 2
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut cache = DesignCache::new(0);
        cache.insert(1, design());
        assert!(cache.get(1).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().insertions, 0);
    }

    #[test]
    fn reinsert_refreshes_recency_without_duplicating() {
        let mut cache = DesignCache::new(2);
        let d = design();
        cache.insert(1, Arc::clone(&d));
        cache.insert(2, Arc::clone(&d));
        cache.insert(1, Arc::clone(&d)); // refresh, not duplicate
        assert_eq!(cache.len(), 2);
        cache.insert(3, d); // evicts 2, the least recent
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
    }

    #[test]
    fn stats_accounting() {
        let mut cache = DesignCache::new(4);
        assert_eq!(cache.stats().hit_rate(), 0.0);
        cache.insert(1, design());
        let _ = cache.get(1);
        let _ = cache.get(9);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn churn_over_many_keys_stays_bounded() {
        let mut cache = DesignCache::new(8);
        let d = design();
        for k in 0..100u64 {
            cache.insert(k, Arc::clone(&d));
        }
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.stats().evictions, 92);
        // The survivors are exactly the 8 most recent keys.
        for k in 92..100 {
            assert!(cache.get(k).is_some(), "key {k} should survive");
        }
        for k in 0..92 {
            assert!(cache.get(k).is_none(), "key {k} should be evicted");
        }
    }
}
