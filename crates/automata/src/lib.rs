//! Finite automata machinery for FSM predictor design.
//!
//! Implements the back half of Sherwood & Calder's design flow (ISCA 2001,
//! §4.5–4.7): regular expressions over the binary alphabet, Thompson NFA
//! construction, subset construction to a DFA, Hopcroft minimization,
//! start-state (steady-state) reduction, and a runnable Moore-machine
//! predictor.
//!
//! # Examples
//!
//! Reproducing Figure 1 of the paper end to end — the language "anything
//! ending in `1x` or `x1`" becomes a 5-state minimal DFA whose start-up
//! states are then removed, leaving the 3-state steady predictor:
//!
//! ```
//! use fsmgen_automata::{Dfa, MoorePredictor, Nfa, Regex};
//!
//! let lang = Regex::ending_in(vec![
//!     Regex::pattern(&[Some(true), None]),  // 1x
//!     Regex::pattern(&[None, Some(true)]),  // x1
//! ]);
//! let with_startup = Dfa::from_nfa(&Nfa::from_regex(&lang)).minimized();
//! assert_eq!(with_startup.num_states(), 5);
//! let steady = with_startup.steady_state_reduced();
//! assert_eq!(steady.num_states(), 3);
//!
//! let mut predictor = MoorePredictor::new(steady);
//! predictor.update(true);
//! predictor.update(true);
//! assert!(predictor.predict()); // history 11 is in the predict-1 set
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod budget;
mod dfa;
mod moore;
mod nfa;
mod ops;
mod patterns;
mod regex;
mod serial;

pub use budget::{AutomataBudget, AutomataError};
pub use dfa::Dfa;
pub use moore::MoorePredictor;
pub use nfa::Nfa;
pub use patterns::{parse_pattern, parse_pattern_list, pattern_to_string, ParsePatternError};
pub use regex::Regex;
pub use serial::{machine_from_table, machine_to_table, ParseMachineError};

/// One-call convenience running the whole §4.5–4.7 pipeline: patterns →
/// regex → NFA → DFA → Hopcroft minimization → start-state reduction.
///
/// Each pattern is a fixed-length history template, oldest bit first, with
/// `None` meaning "either bit" (the `x` of the paper's figures).
///
/// Returns the steady-state Moore machine. An empty pattern list produces
/// the one-state always-predict-0 machine.
///
/// # Examples
///
/// ```
/// use fsmgen_automata::compile_patterns;
///
/// // Figure 6's machine: predict 1 on histories matching 1x.
/// let fsm = compile_patterns(&[vec![Some(true), None]]);
/// assert_eq!(fsm.num_states(), 4);
/// ```
#[must_use]
pub fn compile_patterns(patterns: &[Vec<Option<bool>>]) -> Dfa {
    match compile_patterns_checked(patterns, &AutomataBudget::unlimited()) {
        Ok(dfa) => dfa,
        Err(_) => unreachable!("unlimited budgets never abort"),
    }
}

/// [`compile_patterns`] under an [`AutomataBudget`]: every stage of the
/// pipeline (Thompson construction, subset construction, Hopcroft
/// minimization, steady-state reduction) enforces the budget's limits and
/// deadline, so pathological pattern sets abort with a typed error instead
/// of exhausting memory or time.
///
/// # Errors
///
/// Returns an [`AutomataError`] naming the violated limit.
pub fn compile_patterns_checked(
    patterns: &[Vec<Option<bool>>],
    budget: &AutomataBudget,
) -> Result<Dfa, AutomataError> {
    if patterns.is_empty() {
        return Ok(Dfa::from_parts(vec![[0, 0]], vec![false], 0));
    }
    let alts: Vec<Regex> = patterns.iter().map(|p| Regex::pattern(p)).collect();
    let lang = Regex::ending_in(alts);
    let nfa = Nfa::from_regex_checked(&lang, budget)?;
    Dfa::from_nfa_checked(&nfa, budget)?
        .minimized_checked(budget)?
        .steady_state_reduced_checked(budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_patterns_empty_is_constant_zero() {
        let fsm = compile_patterns(&[]);
        assert_eq!(fsm.num_states(), 1);
        assert!(!fsm.output(0));
    }

    #[test]
    fn compile_patterns_figure7() {
        let fsm = compile_patterns(&[
            vec![Some(false), None, Some(true), None],
            vec![Some(false), None, None, Some(true), None],
        ]);
        assert_eq!(fsm.num_states(), 11);
    }

    #[test]
    fn checked_with_generous_budget_matches_unlimited() {
        let patterns = vec![
            vec![Some(false), None, Some(true), None],
            vec![Some(false), None, None, Some(true), None],
        ];
        let budget = AutomataBudget {
            max_nfa_states: Some(10_000),
            max_dfa_states: Some(10_000),
            deadline: None,
        };
        let checked = compile_patterns_checked(&patterns, &budget).unwrap();
        assert_eq!(checked, compile_patterns(&patterns));
    }

    #[test]
    fn nfa_state_budget_rejects_large_pattern_sets() {
        let patterns = vec![vec![Some(true); 16]; 8];
        let budget = AutomataBudget {
            max_nfa_states: Some(8),
            ..AutomataBudget::default()
        };
        assert!(matches!(
            compile_patterns_checked(&patterns, &budget),
            Err(AutomataError::NfaStates { .. })
        ));
    }

    #[test]
    fn dfa_state_budget_caps_subset_construction() {
        let patterns = vec![
            vec![Some(true), None, None, None, None, None, None, Some(true)],
            vec![
                Some(false),
                Some(true),
                None,
                None,
                None,
                None,
                Some(false),
                None,
            ],
        ];
        let budget = AutomataBudget {
            max_dfa_states: Some(4),
            ..AutomataBudget::default()
        };
        assert!(matches!(
            compile_patterns_checked(&patterns, &budget),
            Err(AutomataError::DfaStates { .. })
        ));
    }

    #[test]
    fn expired_deadline_aborts_compilation() {
        use std::time::{Duration, Instant};
        let budget = AutomataBudget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..AutomataBudget::default()
        };
        assert!(matches!(
            compile_patterns_checked(&[vec![Some(true), None]], &budget),
            Err(AutomataError::DeadlineExpired { .. })
        ));
    }
}
