//! Finite automata machinery for FSM predictor design.
//!
//! Implements the back half of Sherwood & Calder's design flow (ISCA 2001,
//! §4.5–4.7): regular expressions over the binary alphabet, Thompson NFA
//! construction, subset construction to a DFA, Hopcroft minimization,
//! start-state (steady-state) reduction, and a runnable Moore-machine
//! predictor.
//!
//! # Examples
//!
//! Reproducing Figure 1 of the paper end to end — the language "anything
//! ending in `1x` or `x1`" becomes a 5-state minimal DFA whose start-up
//! states are then removed, leaving the 3-state steady predictor:
//!
//! ```
//! use fsmgen_automata::{Dfa, MoorePredictor, Nfa, Regex};
//!
//! let lang = Regex::ending_in(vec![
//!     Regex::pattern(&[Some(true), None]),  // 1x
//!     Regex::pattern(&[None, Some(true)]),  // x1
//! ]);
//! let with_startup = Dfa::from_nfa(&Nfa::from_regex(&lang)).minimized();
//! assert_eq!(with_startup.num_states(), 5);
//! let steady = with_startup.steady_state_reduced();
//! assert_eq!(steady.num_states(), 3);
//!
//! let mut predictor = MoorePredictor::new(steady);
//! predictor.update(true);
//! predictor.update(true);
//! assert!(predictor.predict()); // history 11 is in the predict-1 set
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod dfa;
mod moore;
mod nfa;
mod ops;
mod patterns;
mod regex;
mod serial;

pub use dfa::Dfa;
pub use moore::MoorePredictor;
pub use nfa::Nfa;
pub use patterns::{parse_pattern, parse_pattern_list, pattern_to_string, ParsePatternError};
pub use regex::Regex;
pub use serial::{machine_from_table, machine_to_table, ParseMachineError};

/// One-call convenience running the whole §4.5–4.7 pipeline: patterns →
/// regex → NFA → DFA → Hopcroft minimization → start-state reduction.
///
/// Each pattern is a fixed-length history template, oldest bit first, with
/// `None` meaning "either bit" (the `x` of the paper's figures).
///
/// Returns the steady-state Moore machine. An empty pattern list produces
/// the one-state always-predict-0 machine.
///
/// # Examples
///
/// ```
/// use fsmgen_automata::compile_patterns;
///
/// // Figure 6's machine: predict 1 on histories matching 1x.
/// let fsm = compile_patterns(&[vec![Some(true), None]]);
/// assert_eq!(fsm.num_states(), 4);
/// ```
#[must_use]
pub fn compile_patterns(patterns: &[Vec<Option<bool>>]) -> Dfa {
    if patterns.is_empty() {
        return Dfa::from_parts(vec![[0, 0]], vec![false], 0);
    }
    let alts: Vec<Regex> = patterns.iter().map(|p| Regex::pattern(p)).collect();
    let lang = Regex::ending_in(alts);
    Dfa::from_nfa(&Nfa::from_regex(&lang))
        .minimized()
        .steady_state_reduced()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_patterns_empty_is_constant_zero() {
        let fsm = compile_patterns(&[]);
        assert_eq!(fsm.num_states(), 1);
        assert!(!fsm.output(0));
    }

    #[test]
    fn compile_patterns_figure7() {
        let fsm = compile_patterns(&[
            vec![Some(false), None, Some(true), None],
            vec![Some(false), None, None, Some(true), None],
        ]);
        assert_eq!(fsm.num_states(), 11);
    }
}
