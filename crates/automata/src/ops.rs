//! Boolean operations on Moore machines: complement, union and
//! intersection via the product construction.
//!
//! These make machine-level reasoning possible: Figure 7's machine, for
//! example, is exactly the union of the two single-pattern machines, and
//! the tests verify that identity.

use crate::dfa::Dfa;
use std::collections::{BTreeMap, VecDeque};

impl Dfa {
    /// The machine recognizing the complement language: same transitions,
    /// outputs flipped.
    #[must_use]
    pub fn complemented(&self) -> Dfa {
        Dfa::from_parts(
            self.transitions().to_vec(),
            self.outputs().iter().map(|&o| !o).collect(),
            self.start(),
        )
    }

    /// Product construction with an arbitrary output combiner; only the
    /// reachable part of the product is built.
    fn product(&self, other: &Dfa, combine: impl Fn(bool, bool) -> bool) -> Dfa {
        let mut index: BTreeMap<(u32, u32), u32> = BTreeMap::new();
        let mut order: Vec<(u32, u32)> = Vec::new();
        let start = (self.start(), other.start());
        index.insert(start, 0);
        order.push(start);
        let mut queue = VecDeque::from([start]);
        let mut transitions: Vec<[u32; 2]> = Vec::new();
        let mut outputs: Vec<bool> = Vec::new();
        while let Some((a, b)) = queue.pop_front() {
            let mut row = [0u32; 2];
            for bit in [false, true] {
                let next = (self.step(a, bit), other.step(b, bit));
                let id = *index.entry(next).or_insert_with(|| {
                    order.push(next);
                    queue.push_back(next);
                    (order.len() - 1) as u32
                });
                row[usize::from(bit)] = id;
            }
            transitions.push(row);
            outputs.push(combine(self.output(a), other.output(b)));
        }
        Dfa::from_parts(transitions, outputs, 0)
    }

    /// The machine whose output is the OR of the two machines' outputs
    /// (language union), minimized.
    #[must_use]
    pub fn union(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a || b).minimized()
    }

    /// The machine whose output is the AND of the two machines' outputs
    /// (language intersection), minimized.
    #[must_use]
    pub fn intersection(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a && b).minimized()
    }
}

#[cfg(test)]
mod tests {

    use crate::compile_patterns;

    #[test]
    fn figure7_is_the_union_of_its_patterns() {
        let p1 = compile_patterns(&[vec![Some(false), None, Some(true), None]]);
        let p2 = compile_patterns(&[vec![Some(false), None, None, Some(true), None]]);
        let joint = compile_patterns(&[
            vec![Some(false), None, Some(true), None],
            vec![Some(false), None, None, Some(true), None],
        ]);
        let union = p1.union(&p2);
        assert!(union.equivalent(&joint));
        assert_eq!(union.num_states(), joint.minimized().num_states());
    }

    #[test]
    fn complement_is_involutive_and_disjoint() {
        let fsm = compile_patterns(&[vec![Some(true), None]]);
        let comp = fsm.complemented();
        assert!(fsm.complemented().complemented().equivalent(&fsm));
        // Intersection of a language and its complement is empty: every
        // state of the (minimized) intersection outputs 0.
        let empty = fsm.intersection(&comp);
        for s in 0..empty.num_states() as u32 {
            assert!(!empty.output(s));
        }
        assert_eq!(
            empty.num_states(),
            1,
            "constant-false minimizes to one state"
        );
    }

    #[test]
    fn union_with_complement_is_everything() {
        let fsm = compile_patterns(&[vec![Some(false), None, Some(true), None]]);
        let all = fsm.union(&fsm.complemented());
        assert_eq!(all.num_states(), 1);
        assert!(all.output(0));
    }

    #[test]
    fn intersection_requires_both_patterns() {
        // Histories ending in 1x AND x1 means last two bits were 1,1...
        // no wait: 1x fixes two-back = 1; x1 fixes one-back = 1; both
        // together fix the last two bits to 1,1.
        let a = compile_patterns(&[vec![Some(true), None]]);
        let b = compile_patterns(&[vec![None, Some(true)]]);
        let both = a.intersection(&b);
        let direct = compile_patterns(&[vec![Some(true), Some(true)]]);
        assert!(both.equivalent(&direct));
    }

    #[test]
    fn operations_preserve_determinism_and_totality() {
        let a = compile_patterns(&[vec![Some(true), None, Some(false)]]);
        let b = compile_patterns(&[vec![Some(false), Some(false)]]);
        for m in [a.union(&b), a.intersection(&b), a.complemented()] {
            for s in 0..m.num_states() as u32 {
                // from_parts already validates ranges; just exercise.
                let _ = m.step(s, false);
                let _ = m.step(s, true);
            }
        }
    }
}
