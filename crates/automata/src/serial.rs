//! Plain-text serialization of Moore machines.
//!
//! The format mirrors classic FSM table files (one state per line) so
//! machines survive a round trip through files, version control and
//! hand-editing:
//!
//! ```text
//! # fsmgen moore machine
//! states 3
//! start 0
//! 0 1 2 0   # state, next-on-0, next-on-1, output
//! 1 1 2 1
//! 2 1 2 1
//! ```

use crate::dfa::Dfa;
use std::fmt;

/// Error produced when parsing a machine table fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMachineError {
    line: usize,
    message: String,
}

impl ParseMachineError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseMachineError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number of the offending input line (0 for
    /// whole-document problems).
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseMachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseMachineError {}

/// Renders a machine in the text table format accepted by
/// [`machine_from_table`].
#[must_use]
pub fn machine_to_table(dfa: &Dfa) -> String {
    use fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# fsmgen moore machine");
    let _ = writeln!(out, "states {}", dfa.num_states());
    let _ = writeln!(out, "start {}", dfa.start());
    for s in 0..dfa.num_states() as u32 {
        let _ = writeln!(
            out,
            "{s} {} {} {}",
            dfa.step(s, false),
            dfa.step(s, true),
            u8::from(dfa.output(s))
        );
    }
    out
}

/// Parses a machine from its text table form.
///
/// # Errors
///
/// Returns [`ParseMachineError`] with the offending line for malformed
/// headers, rows, out-of-range transitions, duplicate or missing states.
///
/// # Examples
///
/// ```
/// use fsmgen_automata::{compile_patterns, machine_from_table, machine_to_table};
///
/// let fsm = compile_patterns(&[vec![Some(true), None]]);
/// let text = machine_to_table(&fsm);
/// let back = machine_from_table(&text)?;
/// assert_eq!(back, fsm);
/// # Ok::<(), fsmgen_automata::ParseMachineError>(())
/// ```
pub fn machine_from_table(text: &str) -> Result<Dfa, ParseMachineError> {
    let mut states: Option<usize> = None;
    let mut start: Option<u32> = None;
    let mut rows: Vec<Option<([u32; 2], bool)>> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = content.split_whitespace().collect();
        match tokens.as_slice() {
            ["states", n] => {
                let n: usize = n
                    .parse()
                    .map_err(|_| ParseMachineError::new(line, "invalid state count"))?;
                if n == 0 {
                    return Err(ParseMachineError::new(line, "a machine needs >= 1 state"));
                }
                states = Some(n);
                rows = vec![None; n];
            }
            ["start", s] => {
                start = Some(
                    s.parse()
                        .map_err(|_| ParseMachineError::new(line, "invalid start state"))?,
                );
            }
            [s, t0, t1, out] => {
                let n = states.ok_or_else(|| {
                    ParseMachineError::new(line, "row before the 'states N' header")
                })?;
                let parse = |tok: &str, what: &str| -> Result<u32, ParseMachineError> {
                    tok.parse().map_err(|_| {
                        ParseMachineError::new(line, format!("invalid {what} {tok:?}"))
                    })
                };
                let s = parse(s, "state id")? as usize;
                if s >= n {
                    return Err(ParseMachineError::new(
                        line,
                        format!("state {s} out of range"),
                    ));
                }
                if rows[s].is_some() {
                    return Err(ParseMachineError::new(line, format!("duplicate state {s}")));
                }
                let t0 = parse(t0, "transition")?;
                let t1 = parse(t1, "transition")?;
                if t0 as usize >= n || t1 as usize >= n {
                    return Err(ParseMachineError::new(
                        line,
                        "transition target out of range",
                    ));
                }
                let output = match *out {
                    "0" => false,
                    "1" => true,
                    other => {
                        return Err(ParseMachineError::new(
                            line,
                            format!("invalid output {other:?}, expected 0 or 1"),
                        ))
                    }
                };
                rows[s] = Some(([t0, t1], output));
            }
            _ => return Err(ParseMachineError::new(line, "unrecognized line")),
        }
    }

    let n = states.ok_or_else(|| ParseMachineError::new(0, "missing 'states N' header"))?;
    let start = start.unwrap_or(0);
    if start as usize >= n {
        return Err(ParseMachineError::new(0, "start state out of range"));
    }
    let mut transitions = Vec::with_capacity(n);
    let mut outputs = Vec::with_capacity(n);
    for (s, row) in rows.into_iter().enumerate() {
        let (t, o) =
            row.ok_or_else(|| ParseMachineError::new(0, format!("state {s} has no row")))?;
        transitions.push(t);
        outputs.push(o);
    }
    Ok(Dfa::from_parts(transitions, outputs, start))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_patterns;

    #[test]
    fn round_trip_paper_machines() {
        for patterns in [
            vec![vec![Some(true), None]],
            vec![
                vec![Some(false), None, Some(true), None],
                vec![Some(false), None, None, Some(true), None],
            ],
        ] {
            let fsm = compile_patterns(&patterns);
            let back = machine_from_table(&machine_to_table(&fsm)).unwrap();
            assert_eq!(back, fsm);
        }
    }

    #[test]
    fn tolerates_comments_and_order() {
        let text = "# hand-written\nstates 2\n1 0 1 1\n0 0 1 0 # flip\nstart 1\n";
        let m = machine_from_table(text).unwrap();
        assert_eq!(m.num_states(), 2);
        assert_eq!(m.start(), 1);
        assert!(m.output(1));
        assert!(!m.output(0));
    }

    #[test]
    fn rejects_malformed_input() {
        for (text, needle) in [
            ("", "missing 'states"),
            ("states 0\n", ">= 1 state"),
            ("states x\n", "invalid state count"),
            ("0 0 0 0\n", "before the 'states"),
            ("states 1\n0 0 0 0\n0 0 0 0\n", "duplicate"),
            ("states 1\n5 0 0 0\n", "out of range"),
            ("states 1\n0 7 0 0\n", "target out of range"),
            ("states 1\n0 0 0 2\n", "invalid output"),
            ("states 2\n0 0 1 0\n", "state 1 has no row"),
            ("states 1\nstart 9\n0 0 0 1\n", "start state out of range"),
            ("states 1\nbogus line with five tokens\n", "unrecognized"),
            ("states 1\nbogus line here extra2\n", "invalid state id"),
        ] {
            let err = machine_from_table(text).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{text:?} gave {err}, expected {needle:?}"
            );
        }
    }
}
