//! Regular expressions over the binary alphabet `{0, 1}`.
//!
//! The design flow builds one of these from a minimized sum-of-products
//! cover (§4.5 of the paper): each cube becomes a concatenation of `0`, `1`
//! and "either" symbols, the cubes are alternated, and the whole thing is
//! prefixed with `{0|1}*` so the language contains every string that *ends*
//! in a pattern.

use std::fmt;

/// A regular expression over the binary alphabet.
///
/// # Examples
///
/// Building the paper's expression `{0|1}* { 1{0|1} | {0|1}1 }` by hand:
///
/// ```
/// use fsmgen_automata::Regex;
///
/// let pattern = Regex::alt(vec![
///     Regex::concat(vec![Regex::one(), Regex::any_bit()]),
///     Regex::concat(vec![Regex::any_bit(), Regex::one()]),
/// ]);
/// let lang = Regex::concat(vec![Regex::any_prefix(), pattern]);
/// assert_eq!(lang.to_string(), "{0|1}*{{1{0|1}}|{{0|1}1}}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Regex {
    /// The empty string ε.
    Epsilon,
    /// A single literal bit.
    Literal(bool),
    /// Either bit: `{0|1}`.
    AnyBit,
    /// Concatenation of sub-expressions, in order.
    Concat(Vec<Regex>),
    /// Alternation (union) of sub-expressions.
    Alt(Vec<Regex>),
    /// Kleene star of a sub-expression.
    Star(Box<Regex>),
}

impl Regex {
    /// The literal bit `0`.
    #[must_use]
    pub fn zero() -> Self {
        Regex::Literal(false)
    }

    /// The literal bit `1`.
    #[must_use]
    pub fn one() -> Self {
        Regex::Literal(true)
    }

    /// The "either bit" expression `{0|1}`.
    #[must_use]
    pub fn any_bit() -> Self {
        Regex::AnyBit
    }

    /// `{0|1}*` — any string, used as the prefix that lets a pattern match
    /// at the end of an arbitrarily long input (§4.5).
    #[must_use]
    pub fn any_prefix() -> Self {
        Regex::Star(Box::new(Regex::AnyBit))
    }

    /// Concatenation, flattening nested concatenations and dropping ε.
    #[must_use]
    pub fn concat(parts: Vec<Regex>) -> Self {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Epsilon => {}
                Regex::Concat(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() > 1 {
            return Regex::Concat(flat);
        }
        flat.pop().unwrap_or(Regex::Epsilon)
    }

    /// Alternation, flattening nested alternations and deduplicating.
    #[must_use]
    pub fn alt(parts: Vec<Regex>) -> Self {
        let mut flat: Vec<Regex> = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Alt(inner) => {
                    for i in inner {
                        if !flat.contains(&i) {
                            flat.push(i);
                        }
                    }
                }
                other => {
                    if !flat.contains(&other) {
                        flat.push(other);
                    }
                }
            }
        }
        if flat.len() > 1 {
            return Regex::Alt(flat);
        }
        flat.pop().unwrap_or(Regex::Epsilon)
    }

    /// Kleene star.
    #[must_use]
    pub fn star(inner: Regex) -> Self {
        match inner {
            s @ Regex::Star(_) => s,
            Regex::Epsilon => Regex::Epsilon,
            other => Regex::Star(Box::new(other)),
        }
    }

    /// A fixed-length pattern from literals and don't-cares: `Some(bit)`
    /// positions are literal, `None` positions match either bit. The slice
    /// is read left-to-right in input order (oldest bit first).
    ///
    /// # Examples
    ///
    /// ```
    /// use fsmgen_automata::Regex;
    ///
    /// // The Figure 6 pattern "1x": a 1 followed by anything.
    /// let p = Regex::pattern(&[Some(true), None]);
    /// assert_eq!(p.to_string(), "1{0|1}");
    /// ```
    #[must_use]
    pub fn pattern(bits: &[Option<bool>]) -> Self {
        Regex::concat(
            bits.iter()
                .map(|b| match b {
                    Some(bit) => Regex::Literal(*bit),
                    None => Regex::AnyBit,
                })
                .collect(),
        )
    }

    /// The language of "any input ending in one of these patterns":
    /// `{0|1}* (p1 | p2 | ...)`. This is the exact §4.5 construction.
    ///
    /// Returns `Regex::Epsilon`-prefixed nothing (just the empty language
    /// wrapper) if `patterns` is empty — callers should treat an empty
    /// pattern list before calling (an all-zero predictor).
    #[must_use]
    pub fn ending_in(patterns: Vec<Regex>) -> Self {
        Regex::concat(vec![Regex::any_prefix(), Regex::alt(patterns)])
    }

    /// `true` when the expression matches the empty string.
    #[must_use]
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Epsilon => true,
            Regex::Literal(_) | Regex::AnyBit => false,
            Regex::Concat(parts) => parts.iter().all(Regex::nullable),
            Regex::Alt(parts) => parts.iter().any(Regex::nullable),
            Regex::Star(_) => true,
        }
    }

    /// Reference semantics used by the tests: does the expression match the
    /// whole bit string? Implemented by naive backtracking; exponential in
    /// the worst case, so only suitable for short strings in tests.
    #[must_use]
    pub fn matches(&self, input: &[bool]) -> bool {
        fn go(re: &Regex, input: &[bool], k: &mut dyn FnMut(usize) -> bool, from: usize) -> bool {
            match re {
                Regex::Epsilon => k(from),
                Regex::Literal(b) => from < input.len() && input[from] == *b && k(from + 1),
                Regex::AnyBit => from < input.len() && k(from + 1),
                Regex::Alt(parts) => parts.iter().any(|p| go(p, input, k, from)),
                Regex::Concat(parts) => {
                    fn chain(
                        parts: &[Regex],
                        input: &[bool],
                        k: &mut dyn FnMut(usize) -> bool,
                        from: usize,
                    ) -> bool {
                        match parts.split_first() {
                            None => k(from),
                            Some((head, rest)) => {
                                go(head, input, &mut |next| chain(rest, input, k, next), from)
                            }
                        }
                    }
                    chain(parts, input, k, from)
                }
                Regex::Star(inner) => {
                    fn star(
                        inner: &Regex,
                        input: &[bool],
                        k: &mut dyn FnMut(usize) -> bool,
                        from: usize,
                    ) -> bool {
                        if k(from) {
                            return true;
                        }
                        go(
                            inner,
                            input,
                            &mut |next| next > from && star(inner, input, k, next),
                            from,
                        )
                    }
                    star(inner, input, k, from)
                }
            }
        }
        go(self, input, &mut |end| end == input.len(), 0)
    }
}

impl fmt::Display for Regex {
    /// Renders in the paper's `{a|b}` notation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Regex::Epsilon => write!(f, "ε"),
            Regex::Literal(false) => write!(f, "0"),
            Regex::Literal(true) => write!(f, "1"),
            Regex::AnyBit => write!(f, "{{0|1}}"),
            Regex::Concat(parts) => {
                for p in parts {
                    match p {
                        Regex::Alt(_) => write!(f, "{{{p}}}")?,
                        _ => write!(f, "{p}")?,
                    }
                }
                Ok(())
            }
            Regex::Alt(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    match p {
                        Regex::Concat(_) | Regex::Alt(_) => write!(f, "{{{p}}}")?,
                        _ => write!(f, "{p}")?,
                    }
                }
                Ok(())
            }
            Regex::Star(inner) => match **inner {
                Regex::Literal(_) | Regex::AnyBit => write!(f, "{inner}*"),
                _ => write!(f, "{{{inner}}}*"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &str) -> Vec<bool> {
        s.chars().map(|c| c == '1').collect()
    }

    #[test]
    fn literal_matching() {
        let re = Regex::concat(vec![Regex::one(), Regex::zero()]);
        assert!(re.matches(&bits("10")));
        assert!(!re.matches(&bits("11")));
        assert!(!re.matches(&bits("1")));
        assert!(!re.matches(&bits("100")));
    }

    #[test]
    fn any_prefix_language() {
        // {0|1}* 1 {0|1} : anything ending in 1x.
        let re = Regex::ending_in(vec![Regex::pattern(&[Some(true), None])]);
        assert!(re.matches(&bits("10")));
        assert!(re.matches(&bits("11")));
        assert!(re.matches(&bits("00010")));
        assert!(!re.matches(&bits("00")));
        assert!(!re.matches(&bits("01")));
        assert!(!re.matches(&bits("1")));
        assert!(!re.matches(&[]));
    }

    #[test]
    fn paper_expression_matches_section_4_5() {
        // {0|1}* { 1{0|1} | {0|1}1 } — ends in 1x or x1.
        let re = Regex::ending_in(vec![
            Regex::pattern(&[Some(true), None]),
            Regex::pattern(&[None, Some(true)]),
        ]);
        for (s, expect) in [("00", false), ("01", true), ("10", true), ("11", true)] {
            assert_eq!(re.matches(&bits(s)), expect, "suffix {s}");
            // Same with arbitrary prefixes.
            let with_prefix = format!("0110{s}");
            assert_eq!(
                re.matches(&bits(&with_prefix)),
                expect,
                "string {with_prefix}"
            );
        }
    }

    #[test]
    fn nullable() {
        assert!(Regex::Epsilon.nullable());
        assert!(Regex::any_prefix().nullable());
        assert!(!Regex::one().nullable());
        assert!(Regex::alt(vec![Regex::one(), Regex::Epsilon]).nullable());
        assert!(!Regex::concat(vec![Regex::any_prefix(), Regex::one()]).nullable());
    }

    #[test]
    fn smart_constructors_flatten() {
        let c = Regex::concat(vec![
            Regex::concat(vec![Regex::one(), Regex::zero()]),
            Regex::Epsilon,
            Regex::one(),
        ]);
        assert_eq!(
            c,
            Regex::Concat(vec![Regex::one(), Regex::zero(), Regex::one()])
        );
        let a = Regex::alt(vec![Regex::one(), Regex::one(), Regex::zero()]);
        assert_eq!(a, Regex::Alt(vec![Regex::one(), Regex::zero()]));
        assert_eq!(
            Regex::star(Regex::star(Regex::one())),
            Regex::star(Regex::one())
        );
    }

    #[test]
    fn display_notation() {
        let re = Regex::ending_in(vec![
            Regex::pattern(&[Some(true), None]),
            Regex::pattern(&[None, Some(true)]),
        ]);
        assert_eq!(re.to_string(), "{0|1}*{{1{0|1}}|{{0|1}1}}");
    }

    #[test]
    fn star_matching() {
        let re = Regex::star(Regex::one());
        assert!(re.matches(&[]));
        assert!(re.matches(&bits("111")));
        assert!(!re.matches(&bits("110")));
    }
}
