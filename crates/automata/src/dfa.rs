//! Deterministic finite automata over the binary alphabet: subset
//! construction, Hopcroft minimization and start-state (steady-state)
//! reduction (§4.6–4.7 of the paper).

use crate::budget::{AutomataBudget, AutomataError};
use crate::nfa::Nfa;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A complete deterministic finite automaton over the binary alphabet.
///
/// Every state has exactly one successor per input bit, so the automaton
/// doubles as a Moore machine: the per-state output is its accepting flag,
/// which for predictor languages means "the input consumed so far ends in a
/// predict-1 pattern".
///
/// # Examples
///
/// ```
/// use fsmgen_automata::{Dfa, Nfa, Regex};
///
/// // The paper's §4.5 language: anything ending in 1x or x1.
/// let re = Regex::ending_in(vec![
///     Regex::pattern(&[Some(true), None]),
///     Regex::pattern(&[None, Some(true)]),
/// ]);
/// let dfa = Dfa::from_nfa(&Nfa::from_regex(&re)).minimized();
/// assert!(dfa.accepts([true, false]));  // "10"
/// assert!(!dfa.accepts([false, false])); // "00"
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfa {
    /// `transitions[s][b]` = successor of state `s` on input bit `b`.
    transitions: Vec<[u32; 2]>,
    /// Per-state accepting flag (the Moore output).
    accept: Vec<bool>,
    start: u32,
}

impl Dfa {
    /// Builds a DFA directly from parts.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty, `accept` has a different length, the
    /// start state is out of range, or any transition targets a missing
    /// state.
    #[must_use]
    pub fn from_parts(transitions: Vec<[u32; 2]>, accept: Vec<bool>, start: u32) -> Self {
        assert!(!transitions.is_empty(), "a DFA needs at least one state");
        assert_eq!(
            transitions.len(),
            accept.len(),
            "accept flags must match state count"
        );
        let n = transitions.len() as u32;
        assert!(start < n, "start state {start} out of range");
        for (s, t) in transitions.iter().enumerate() {
            assert!(
                t[0] < n && t[1] < n,
                "state {s} has a transition out of range"
            );
        }
        Dfa {
            transitions,
            accept,
            start,
        }
    }

    /// Subset construction (§4.6): converts an NFA into an equivalent
    /// complete DFA. A non-accepting sink state is added if some subset has
    /// no successors.
    #[must_use]
    pub fn from_nfa(nfa: &Nfa) -> Self {
        match Dfa::from_nfa_checked(nfa, &AutomataBudget::unlimited()) {
            Ok(dfa) => dfa,
            Err(_) => unreachable!("unlimited budgets never abort"),
        }
    }

    /// [`Dfa::from_nfa`] under an [`AutomataBudget`]: subset construction
    /// aborts as soon as it materializes more than `max_dfa_states` subsets
    /// or the deadline passes. This is the exponential step of the
    /// pipeline, so the limit is enforced incrementally — the work done
    /// before a violation is proportional to the limit.
    ///
    /// # Errors
    ///
    /// Returns an [`AutomataError`] naming the violated limit.
    pub fn from_nfa_checked(nfa: &Nfa, budget: &AutomataBudget) -> Result<Self, AutomataError> {
        let start_set = nfa.epsilon_closure(&BTreeSet::from([nfa.start()]));
        let mut index: BTreeMap<BTreeSet<u32>, u32> = BTreeMap::new();
        let mut order: Vec<BTreeSet<u32>> = Vec::new();
        let mut queue: VecDeque<BTreeSet<u32>> = VecDeque::new();

        index.insert(start_set.clone(), 0);
        order.push(start_set.clone());
        queue.push_back(start_set);

        let mut transitions: Vec<[u32; 2]> = Vec::new();
        while let Some(set) = queue.pop_front() {
            budget.check_deadline("subset construction")?;
            let mut row = [0u32; 2];
            for bit in [false, true] {
                let next = nfa.epsilon_closure(&nfa.step(&set, bit));
                let id = match index.get(&next) {
                    Some(&id) => id,
                    None => {
                        let id = order.len() as u32;
                        if let Some(limit) = budget.max_dfa_states {
                            if order.len() + 1 > limit {
                                return Err(AutomataError::DfaStates {
                                    generated: order.len() + 1,
                                    limit,
                                });
                            }
                        }
                        index.insert(next.clone(), id);
                        order.push(next.clone());
                        queue.push_back(next);
                        id
                    }
                };
                row[usize::from(bit)] = id;
            }
            transitions.push(row);
        }
        let accept: Vec<bool> = order.iter().map(|s| s.contains(&nfa.accept())).collect();
        fsmgen_obs::counter("dfa", "subset_states", transitions.len() as u64);
        Ok(Dfa {
            transitions,
            accept,
            start: 0,
        })
    }

    /// Number of states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// The start state.
    #[must_use]
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Successor of `state` on input `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn step(&self, state: u32, bit: bool) -> u32 {
        self.transitions[state as usize][usize::from(bit)]
    }

    /// The Moore output (accepting flag) of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn output(&self, state: u32) -> bool {
        self.accept[state as usize]
    }

    /// The raw transition table (`[on-0, on-1]` per state).
    #[must_use]
    pub fn transitions(&self) -> &[[u32; 2]] {
        &self.transitions
    }

    /// The raw per-state outputs.
    #[must_use]
    pub fn outputs(&self) -> &[bool] {
        &self.accept
    }

    /// Runs the DFA over `input` from the start state and reports whether
    /// the final state accepts.
    #[must_use]
    pub fn accepts<I: IntoIterator<Item = bool>>(&self, input: I) -> bool {
        let mut s = self.start;
        for b in input {
            s = self.step(s, b);
        }
        self.accept[s as usize]
    }

    /// Removes states unreachable from the start state, renumbering in BFS
    /// order (so results are canonical for equal automata).
    // expect() is fine here: the BFS maps every successor of a visited
    // state when it is discovered, so by construction the lookups below
    // only ever see mapped states.
    #[allow(clippy::expect_used)]
    #[must_use]
    pub fn trimmed(&self) -> Dfa {
        let mut map: Vec<Option<u32>> = vec![None; self.num_states()];
        let mut order: Vec<u32> = Vec::new();
        let mut queue = VecDeque::from([self.start]);
        map[self.start as usize] = Some(0);
        order.push(self.start);
        while let Some(s) = queue.pop_front() {
            for bit in [false, true] {
                let t = self.step(s, bit);
                if map[t as usize].is_none() {
                    map[t as usize] = Some(order.len() as u32);
                    order.push(t);
                    queue.push_back(t);
                }
            }
        }
        let transitions: Vec<[u32; 2]> = order
            .iter()
            .map(|&s| {
                [
                    map[self.step(s, false) as usize].expect("reachable"),
                    map[self.step(s, true) as usize].expect("reachable"),
                ]
            })
            .collect();
        let accept: Vec<bool> = order.iter().map(|&s| self.accept[s as usize]).collect();
        Dfa {
            transitions,
            accept,
            start: 0,
        }
    }

    /// Hopcroft's partition-refinement minimization (§4.6): removes
    /// unreachable states and merges indistinguishable ones. The result is
    /// the canonical minimal DFA for the language.
    #[must_use]
    pub fn minimized(&self) -> Dfa {
        match self.minimized_checked(&AutomataBudget::unlimited()) {
            Ok(dfa) => dfa,
            Err(_) => unreachable!("unlimited budgets never abort"),
        }
    }

    /// [`Dfa::minimized`] under an [`AutomataBudget`]. Hopcroft refinement
    /// is polynomial, so only the deadline applies; it is polled once per
    /// splitter taken off the worklist.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::DeadlineExpired`] when the deadline passes
    /// mid-refinement.
    // expect() is fine here: a DFA always has at least one state, so the
    // initial partition always has at least one block.
    #[allow(clippy::expect_used)]
    pub fn minimized_checked(&self, budget: &AutomataBudget) -> Result<Dfa, AutomataError> {
        let trimmed = self.trimmed();
        let n = trimmed.num_states();

        // Precompute reverse transitions.
        let mut reverse: Vec<[Vec<u32>; 2]> = vec![[Vec::new(), Vec::new()]; n];
        for (s, row) in trimmed.transitions.iter().enumerate() {
            for bit in 0..2 {
                reverse[row[bit] as usize][bit].push(s as u32);
            }
        }

        // Initial partition: accepting vs non-accepting.
        let mut block_of: Vec<u32> = trimmed
            .accept
            .iter()
            .map(|&a| if a { 1 } else { 0 })
            .collect();
        let mut blocks: Vec<Vec<u32>> = vec![Vec::new(), Vec::new()];
        for (s, &b) in block_of.iter().enumerate() {
            blocks[b as usize].push(s as u32);
        }
        // Drop an empty initial block.
        if blocks[1].is_empty() {
            blocks.pop();
        } else if blocks[0].is_empty() {
            blocks.swap_remove(0);
            block_of.fill(0);
        }

        let mut worklist: VecDeque<(u32, usize)> = VecDeque::new();
        for bit in 0..2 {
            // Put the smaller block on the worklist (classic Hopcroft).
            let smaller = (0..blocks.len() as u32)
                .min_by_key(|&b| blocks[b as usize].len())
                .expect("at least one block");
            worklist.push_back((smaller, bit));
        }

        while let Some((splitter, bit)) = worklist.pop_front() {
            budget.check_deadline("hopcroft refinement")?;
            // X = states with a transition on `bit` into the splitter block.
            let mut x: BTreeSet<u32> = BTreeSet::new();
            for &s in &blocks[splitter as usize] {
                for &p in &reverse[s as usize][bit] {
                    x.insert(p);
                }
            }
            if x.is_empty() {
                continue;
            }
            // Split every block crossed by X.
            let affected: BTreeSet<u32> = x.iter().map(|&s| block_of[s as usize]).collect();
            for b in affected {
                let block = &blocks[b as usize];
                let (inside, outside): (Vec<u32>, Vec<u32>) =
                    block.iter().partition(|s| x.contains(s));
                if inside.is_empty() || outside.is_empty() {
                    continue;
                }
                // Replace block b with `inside`; create a new block with
                // `outside`.
                let new_id = blocks.len() as u32;
                for &s in &outside {
                    block_of[s as usize] = new_id;
                }
                blocks[b as usize] = inside;
                blocks.push(outside);
                for wbit in 0..2 {
                    // Standard refinement bookkeeping: if b was pending,
                    // both halves are now pending; otherwise add the
                    // smaller half.
                    if worklist.contains(&(b, wbit)) {
                        worklist.push_back((new_id, wbit));
                    } else if blocks[b as usize].len() <= blocks[new_id as usize].len() {
                        worklist.push_back((b, wbit));
                    } else {
                        worklist.push_back((new_id, wbit));
                    }
                }
            }
        }

        // Build the quotient automaton, renumbered in BFS order from the
        // start block for canonical output.
        let quotient_start = block_of[trimmed.start as usize];
        let num_blocks = blocks.len();
        let mut q_trans: Vec<[u32; 2]> = vec![[0; 2]; num_blocks];
        let mut q_accept: Vec<bool> = vec![false; num_blocks];
        for (b, members) in blocks.iter().enumerate() {
            let rep = members[0];
            q_trans[b] = [
                block_of[trimmed.step(rep, false) as usize],
                block_of[trimmed.step(rep, true) as usize],
            ];
            q_accept[b] = trimmed.accept[rep as usize];
        }
        let minimized = Dfa {
            transitions: q_trans,
            accept: q_accept,
            start: quotient_start,
        }
        .trimmed();
        fsmgen_obs::counter(
            "hopcroft",
            "minimized_states",
            minimized.num_states() as u64,
        );
        Ok(minimized)
    }

    /// Start-state reduction (§4.7): removes *start-up states* — states only
    /// visited while the history register is still filling — keeping just
    /// the steady-state core. "There can be up to 2^N start-up states, and
    /// they typically account for around one half of all states."
    ///
    /// The steady-state core is the set of states still visited at
    /// arbitrarily late times. It is computed by iterating the one-step
    /// image of the reachable-set sequence `S₀ = {start}`,
    /// `Sₖ₊₁ = δ(Sₖ, {0,1})` until the (eventually periodic) sequence
    /// cycles, and taking the union over the cycle. The new start state is
    /// the lowest-numbered state in the core.
    ///
    /// As the paper notes, this changes behaviour only on a bounded number
    /// of short strings; every string long enough to fill the history is
    /// classified identically (asserted by tests and the property suite).
    #[must_use]
    pub fn steady_state_reduced(&self) -> Dfa {
        match self.steady_state_reduced_checked(&AutomataBudget::unlimited()) {
            Ok(dfa) => dfa,
            Err(_) => unreachable!("unlimited budgets never abort"),
        }
    }

    /// [`Dfa::steady_state_reduced`] under an [`AutomataBudget`]: the
    /// reachable-subset sequence is eventually periodic but its transient
    /// plus cycle can in principle be exponential in the state count, so
    /// its length is capped by `max_dfa_states` and the deadline is polled
    /// each step.
    ///
    /// # Errors
    ///
    /// Returns an [`AutomataError`] naming the violated limit.
    pub fn steady_state_reduced_checked(
        &self,
        budget: &AutomataBudget,
    ) -> Result<Dfa, AutomataError> {
        let trimmed = self.trimmed();
        let mut seen: BTreeMap<BTreeSet<u32>, usize> = BTreeMap::new();
        let mut sequence: Vec<BTreeSet<u32>> = Vec::new();
        let mut current: BTreeSet<u32> = BTreeSet::from([trimmed.start]);
        let cycle_start = loop {
            if let Some(&at) = seen.get(&current) {
                break at;
            }
            budget.check_deadline("steady-state iteration")?;
            if let Some(limit) = budget.max_dfa_states {
                if sequence.len() + 1 > limit {
                    return Err(AutomataError::DfaStates {
                        generated: sequence.len() + 1,
                        limit,
                    });
                }
            }
            seen.insert(current.clone(), sequence.len());
            sequence.push(current.clone());
            let mut next = BTreeSet::new();
            for &s in &current {
                next.insert(trimmed.step(s, false));
                next.insert(trimmed.step(s, true));
            }
            current = next;
        };
        let mut core: BTreeSet<u32> = BTreeSet::new();
        for set in &sequence[cycle_start..] {
            core.extend(set.iter().copied());
        }
        debug_assert!(!core.is_empty());

        // Renumber: keep only core states, start at the lowest-numbered one.
        let order: Vec<u32> = core.iter().copied().collect();
        let map: BTreeMap<u32, u32> = order
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as u32))
            .collect();
        let transitions: Vec<[u32; 2]> = order
            .iter()
            .map(|&s| [map[&trimmed.step(s, false)], map[&trimmed.step(s, true)]])
            .collect();
        let accept: Vec<bool> = order.iter().map(|&s| trimmed.accept[s as usize]).collect();
        fsmgen_obs::counter("reduce", "steady_states", transitions.len() as u64);
        Ok(Dfa {
            transitions,
            accept,
            start: 0,
        })
    }

    /// `true` when the two DFAs accept the same language, decided by BFS
    /// over the product automaton.
    #[must_use]
    pub fn equivalent(&self, other: &Dfa) -> bool {
        let mut seen: BTreeSet<(u32, u32)> = BTreeSet::new();
        let mut queue = VecDeque::from([(self.start, other.start)]);
        seen.insert((self.start, other.start));
        while let Some((a, b)) = queue.pop_front() {
            if self.accept[a as usize] != other.accept[b as usize] {
                return false;
            }
            for bit in [false, true] {
                let pair = (self.step(a, bit), other.step(b, bit));
                if seen.insert(pair) {
                    queue.push_back(pair);
                }
            }
        }
        true
    }

    /// Graphviz DOT rendering in the style of the paper's figures: each
    /// state is labelled `sN [output]`, edges are labelled with the input
    /// bit, and the start state is marked with an `init` arrow.
    #[must_use]
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph {name} {{");
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  init [shape=none, label=\"init\"];");
        let _ = writeln!(out, "  init -> s{};", self.start);
        for (s, &acc) in self.accept.iter().enumerate() {
            let _ = writeln!(
                out,
                "  s{s} [shape=circle, label=\"s{s}\\n[{}]\"];",
                u8::from(acc)
            );
        }
        for (s, row) in self.transitions.iter().enumerate() {
            if row[0] == row[1] {
                let _ = writeln!(out, "  s{s} -> s{} [label=\"-\"];", row[0]);
            } else {
                let _ = writeln!(out, "  s{s} -> s{} [label=\"0\"];", row[0]);
                let _ = writeln!(out, "  s{s} -> s{} [label=\"1\"];", row[1]);
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    fn dfa_for(re: &Regex) -> Dfa {
        Dfa::from_nfa(&Nfa::from_regex(re))
    }

    #[test]
    fn subset_construction_matches_nfa() {
        let re = Regex::ending_in(vec![
            Regex::pattern(&[Some(true), None]),
            Regex::pattern(&[None, Some(true)]),
        ]);
        let nfa = Nfa::from_regex(&re);
        let dfa = Dfa::from_nfa(&nfa);
        for len in 0..=10usize {
            for v in 0..(1u32 << len.min(16)) {
                let input: Vec<bool> = (0..len).map(|i| v >> i & 1 == 1).collect();
                assert_eq!(dfa.accepts(input.iter().copied()), nfa.accepts(&input));
            }
        }
    }

    #[test]
    fn minimization_preserves_language_and_shrinks() {
        let re = Regex::ending_in(vec![
            Regex::pattern(&[Some(false), None, Some(true), None]),
            Regex::pattern(&[Some(false), None, None, Some(true), None]),
        ]);
        let dfa = dfa_for(&re);
        let min = dfa.minimized();
        assert!(min.num_states() <= dfa.num_states());
        assert!(min.equivalent(&dfa));
        // Minimizing twice is idempotent in size.
        assert_eq!(min.minimized().num_states(), min.num_states());
    }

    #[test]
    fn paper_figure1_state_counts() {
        // The §4.2 trace t yields predict-1 histories {01, 10, 11} at N=2.
        // Figure 1: the minimized machine has 5 states including start-up
        // states; removing them leaves 3 states.
        let re = Regex::ending_in(vec![
            Regex::pattern(&[Some(true), None]),
            Regex::pattern(&[None, Some(true)]),
        ]);
        let min = dfa_for(&re).minimized();
        assert_eq!(min.num_states(), 5, "with start-up states");
        let reduced = min.steady_state_reduced();
        assert_eq!(reduced.num_states(), 3, "after start state removal");
    }

    #[test]
    fn steady_state_reduction_preserves_long_string_behaviour() {
        let re = Regex::ending_in(vec![
            Regex::pattern(&[Some(true), None]),
            Regex::pattern(&[None, Some(true)]),
        ]);
        let min = dfa_for(&re).minimized();
        let reduced = min.steady_state_reduced();
        // For every string of length >= N (2 here), classification agrees.
        for len in 2..=10usize {
            for v in 0..(1u32 << len) {
                let input: Vec<bool> = (0..len).map(|i| v >> i & 1 == 1).collect();
                assert_eq!(
                    min.accepts(input.iter().copied()),
                    reduced.accepts(input.iter().copied()),
                    "input {input:?}"
                );
            }
        }
    }

    #[test]
    fn figure6_pattern_from_any_state() {
        // Figure 6: the ijpeg FSM capturing "1x" — from ANY state, applying
        // 1 then anything lands on an output-1 state; 0 then anything lands
        // on output-0.
        let re = Regex::ending_in(vec![Regex::pattern(&[Some(true), None])]);
        let fsm = dfa_for(&re).minimized().steady_state_reduced();
        assert_eq!(fsm.num_states(), 4, "paper shows a 4-state machine");
        for s in 0..fsm.num_states() as u32 {
            for second in [false, true] {
                let end1 = fsm.step(fsm.step(s, true), second);
                assert!(fsm.output(end1), "1x must predict 1 from state {s}");
                let end0 = fsm.step(fsm.step(s, false), second);
                assert!(!fsm.output(end0), "0x must predict 0 from state {s}");
            }
        }
    }

    #[test]
    fn figure7_pattern_from_any_state() {
        // Figure 7: the gs FSM capturing 0x1x | 0xx1x (11 states in the
        // paper). From any state, traversing a matching pattern ends on 1.
        let re = Regex::ending_in(vec![
            Regex::pattern(&[Some(false), None, Some(true), None]),
            Regex::pattern(&[Some(false), None, None, Some(true), None]),
        ]);
        let fsm = dfa_for(&re).minimized().steady_state_reduced();
        assert_eq!(fsm.num_states(), 11, "paper shows an 11-state machine");
        // Check the 4-bit pattern property from every state.
        for s in 0..fsm.num_states() as u32 {
            for v in 0..16u32 {
                let walk = [v & 8 != 0, v & 4 != 0, v & 2 != 0, v & 1 != 0];
                let mut cur = s;
                for b in walk {
                    cur = fsm.step(cur, b);
                }
                let matches_0x1x = !walk[0] && walk[2];
                if matches_0x1x {
                    assert!(fsm.output(cur), "0x1x from state {s} must predict 1");
                }
            }
        }
    }

    #[test]
    fn trimmed_removes_unreachable() {
        let dfa = Dfa::from_parts(
            vec![[0, 1], [1, 0], [2, 2]], // state 2 unreachable
            vec![false, true, true],
            0,
        );
        let t = dfa.trimmed();
        assert_eq!(t.num_states(), 2);
        assert!(t.equivalent(&dfa));
    }

    #[test]
    fn equivalence_detects_difference() {
        let a = dfa_for(&Regex::ending_in(vec![Regex::pattern(&[Some(true)])]));
        let b = dfa_for(&Regex::ending_in(vec![Regex::pattern(&[Some(false)])]));
        assert!(!a.equivalent(&b));
        assert!(a.equivalent(&a));
    }

    #[test]
    fn dot_output_contains_all_states() {
        let re = Regex::ending_in(vec![Regex::pattern(&[Some(true), None])]);
        let fsm = dfa_for(&re).minimized().steady_state_reduced();
        let dot = fsm.to_dot("fig6");
        assert!(dot.starts_with("digraph fig6 {"));
        for s in 0..fsm.num_states() {
            assert!(dot.contains(&format!("s{s} [shape=circle")));
        }
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn from_parts_rejects_empty() {
        let _ = Dfa::from_parts(vec![], vec![], 0);
    }

    #[test]
    fn sud_counter_as_dfa_roundtrip() {
        // A 2-bit saturating counter expressed as a DFA: states 0..=3,
        // predict taken when >= 2.
        let trans: Vec<[u32; 2]> = (0u32..4)
            .map(|s| [s.saturating_sub(1), (s + 1).min(3)])
            .collect();
        let accept = vec![false, false, true, true];
        let dfa = Dfa::from_parts(trans, accept, 0);
        // The 2-bit counter is already minimal and steady.
        assert_eq!(dfa.minimized().num_states(), 4);
        assert_eq!(dfa.steady_state_reduced().num_states(), 4);
    }
}
