//! Thompson construction: [`Regex`] → non-deterministic finite automaton.
//!
//! "The first step in building a FSM from a regular expression is the
//! construction of a non-deterministic finite state machine, which is a
//! fairly straight forward process of enumerating paths" (§4.6).

use crate::budget::{AutomataBudget, AutomataError};
use crate::regex::Regex;
use std::collections::BTreeSet;

/// A non-deterministic finite automaton over the binary alphabet with
/// ε-transitions, as produced by Thompson's construction.
///
/// # Examples
///
/// ```
/// use fsmgen_automata::{Nfa, Regex};
///
/// let re = Regex::ending_in(vec![Regex::pattern(&[Some(true), None])]);
/// let nfa = Nfa::from_regex(&re);
/// assert!(nfa.accepts(&[false, true, false])); // ...10 ends in 1x
/// assert!(!nfa.accepts(&[false, false]));
/// ```
#[derive(Debug, Clone)]
pub struct Nfa {
    /// `transitions[s][b]` = states reachable from `s` on input bit `b`.
    transitions: Vec<[Vec<u32>; 2]>,
    /// `epsilon[s]` = states reachable from `s` on ε.
    epsilon: Vec<Vec<u32>>,
    start: u32,
    accept: u32,
}

impl Nfa {
    /// Builds the Thompson NFA for `regex`. Each operator adds a constant
    /// number of states, so the NFA has `O(|regex|)` states.
    #[must_use]
    pub fn from_regex(regex: &Regex) -> Self {
        let mut nfa = Nfa {
            transitions: Vec::new(),
            epsilon: Vec::new(),
            start: 0,
            accept: 0,
        };
        let (start, accept) = nfa.build(regex);
        nfa.start = start;
        nfa.accept = accept;
        nfa
    }

    /// [`Nfa::from_regex`] under an [`AutomataBudget`].
    ///
    /// Construction is linear in the regex size, so the state limit is
    /// checked after building — the work done before a violation is
    /// detected is proportional to the regex, never exponential.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::NfaStates`] when the machine exceeds
    /// `max_nfa_states`, or [`AutomataError::DeadlineExpired`] when the
    /// budget's deadline has already passed.
    pub fn from_regex_checked(
        regex: &Regex,
        budget: &AutomataBudget,
    ) -> Result<Self, AutomataError> {
        budget.check_deadline("thompson construction")?;
        let nfa = Nfa::from_regex(regex);
        if let Some(limit) = budget.max_nfa_states {
            if nfa.num_states() > limit {
                return Err(AutomataError::NfaStates {
                    generated: nfa.num_states(),
                    limit,
                });
            }
        }
        fsmgen_obs::counter("nfa", "thompson_states", nfa.num_states() as u64);
        Ok(nfa)
    }

    fn add_state(&mut self) -> u32 {
        self.transitions.push([Vec::new(), Vec::new()]);
        self.epsilon.push(Vec::new());
        (self.transitions.len() - 1) as u32
    }

    fn add_edge(&mut self, from: u32, bit: bool, to: u32) {
        self.transitions[from as usize][usize::from(bit)].push(to);
    }

    fn add_eps(&mut self, from: u32, to: u32) {
        self.epsilon[from as usize].push(to);
    }

    /// Recursive Thompson construction; returns `(start, accept)` for the
    /// sub-automaton.
    fn build(&mut self, regex: &Regex) -> (u32, u32) {
        match regex {
            Regex::Epsilon => {
                let s = self.add_state();
                let a = self.add_state();
                self.add_eps(s, a);
                (s, a)
            }
            Regex::Literal(b) => {
                let s = self.add_state();
                let a = self.add_state();
                self.add_edge(s, *b, a);
                (s, a)
            }
            Regex::AnyBit => {
                let s = self.add_state();
                let a = self.add_state();
                self.add_edge(s, false, a);
                self.add_edge(s, true, a);
                (s, a)
            }
            Regex::Concat(parts) => match parts.split_first() {
                // An empty concatenation is ε; Regex::concat never builds
                // one, but ε is the correct meaning rather than a panic.
                None => {
                    let s = self.add_state();
                    let a = self.add_state();
                    self.add_eps(s, a);
                    (s, a)
                }
                Some((first, rest)) => {
                    let (start, mut accept) = self.build(first);
                    for p in rest {
                        let (s, a) = self.build(p);
                        self.add_eps(accept, s);
                        accept = a;
                    }
                    (start, accept)
                }
            },
            Regex::Alt(parts) => {
                let s = self.add_state();
                let a = self.add_state();
                for p in parts {
                    let (ps, pa) = self.build(p);
                    self.add_eps(s, ps);
                    self.add_eps(pa, a);
                }
                (s, a)
            }
            Regex::Star(inner) => {
                let s = self.add_state();
                let a = self.add_state();
                let (is, ia) = self.build(inner);
                self.add_eps(s, is);
                self.add_eps(s, a);
                self.add_eps(ia, is);
                self.add_eps(ia, a);
                (s, a)
            }
        }
    }

    /// Number of states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// The start state.
    #[must_use]
    pub fn start(&self) -> u32 {
        self.start
    }

    /// The (single, Thompson-style) accepting state.
    #[must_use]
    pub fn accept(&self) -> u32 {
        self.accept
    }

    /// ε-closure of a set of states.
    #[must_use]
    pub fn epsilon_closure(&self, states: &BTreeSet<u32>) -> BTreeSet<u32> {
        let mut closure = states.clone();
        let mut stack: Vec<u32> = states.iter().copied().collect();
        while let Some(s) = stack.pop() {
            for &t in &self.epsilon[s as usize] {
                if closure.insert(t) {
                    stack.push(t);
                }
            }
        }
        closure
    }

    /// One subset-construction step: all states reachable from `states` on
    /// `bit`, before taking the ε-closure.
    #[must_use]
    pub fn step(&self, states: &BTreeSet<u32>, bit: bool) -> BTreeSet<u32> {
        let mut out = BTreeSet::new();
        for &s in states {
            out.extend(
                self.transitions[s as usize][usize::from(bit)]
                    .iter()
                    .copied(),
            );
        }
        out
    }

    /// Reference acceptance check by direct subset simulation.
    #[must_use]
    pub fn accepts(&self, input: &[bool]) -> bool {
        let mut current = self.epsilon_closure(&BTreeSet::from([self.start]));
        for &b in input {
            current = self.epsilon_closure(&self.step(&current, b));
            if current.is_empty() {
                return false;
            }
        }
        current.contains(&self.accept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &str) -> Vec<bool> {
        s.chars().map(|c| c == '1').collect()
    }

    #[test]
    fn literal_nfa() {
        let nfa = Nfa::from_regex(&Regex::one());
        assert!(nfa.accepts(&bits("1")));
        assert!(!nfa.accepts(&bits("0")));
        assert!(!nfa.accepts(&[]));
        assert!(!nfa.accepts(&bits("11")));
    }

    #[test]
    fn epsilon_nfa() {
        let nfa = Nfa::from_regex(&Regex::Epsilon);
        assert!(nfa.accepts(&[]));
        assert!(!nfa.accepts(&bits("0")));
    }

    #[test]
    fn alt_and_concat() {
        // (01)|(10)
        let re = Regex::alt(vec![
            Regex::concat(vec![Regex::zero(), Regex::one()]),
            Regex::concat(vec![Regex::one(), Regex::zero()]),
        ]);
        let nfa = Nfa::from_regex(&re);
        assert!(nfa.accepts(&bits("01")));
        assert!(nfa.accepts(&bits("10")));
        assert!(!nfa.accepts(&bits("00")));
        assert!(!nfa.accepts(&bits("11")));
    }

    #[test]
    fn star() {
        let re = Regex::star(Regex::concat(vec![Regex::one(), Regex::zero()]));
        let nfa = Nfa::from_regex(&re);
        assert!(nfa.accepts(&[]));
        assert!(nfa.accepts(&bits("10")));
        assert!(nfa.accepts(&bits("1010")));
        assert!(!nfa.accepts(&bits("101")));
    }

    #[test]
    fn agrees_with_regex_matcher_on_short_strings() {
        let res = [
            Regex::ending_in(vec![Regex::pattern(&[Some(true), None])]),
            Regex::ending_in(vec![
                Regex::pattern(&[Some(false), None, Some(true), None]),
                Regex::pattern(&[Some(false), None, None, Some(true), None]),
            ]),
            Regex::star(Regex::alt(vec![
                Regex::one(),
                Regex::concat(vec![Regex::zero(), Regex::zero()]),
            ])),
        ];
        for re in &res {
            let nfa = Nfa::from_regex(re);
            for len in 0..=8usize {
                for v in 0..(1u32 << len) {
                    let input: Vec<bool> = (0..len).map(|i| v >> i & 1 == 1).collect();
                    assert_eq!(
                        nfa.accepts(&input),
                        re.matches(&input),
                        "regex {re} input {input:?}"
                    );
                }
            }
        }
    }
}
