//! Parsing of the paper's pattern notation (`1x`, `0x1x`, `0xx1x`, …).
//!
//! Figures 6 and 7 describe machines by the history patterns they
//! capture, written oldest bit first with `x` as "don't care". This
//! module parses that notation so machines can be specified the way the
//! paper writes them — including from the command line.

use std::fmt;

/// Error produced when parsing a history pattern fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePatternError {
    kind: ParsePatternErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParsePatternErrorKind {
    Empty,
    BadChar(char),
    NoPatterns,
}

impl fmt::Display for ParsePatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParsePatternErrorKind::Empty => write!(f, "empty pattern"),
            ParsePatternErrorKind::BadChar(c) => {
                write!(
                    f,
                    "invalid pattern character {c:?}, expected '0', '1' or 'x'"
                )
            }
            ParsePatternErrorKind::NoPatterns => write!(f, "no patterns given"),
        }
    }
}

impl std::error::Error for ParsePatternError {}

/// Parses one pattern in the paper's notation: `0`, `1`, and `x`/`X`/`-`
/// for don't-care, oldest bit first.
///
/// # Errors
///
/// Returns [`ParsePatternError`] for an empty string or a character
/// outside the alphabet.
///
/// # Examples
///
/// ```
/// use fsmgen_automata::parse_pattern;
///
/// let p = parse_pattern("0x1x")?;
/// assert_eq!(p, vec![Some(false), None, Some(true), None]);
/// # Ok::<(), fsmgen_automata::ParsePatternError>(())
/// ```
pub fn parse_pattern(text: &str) -> Result<Vec<Option<bool>>, ParsePatternError> {
    if text.is_empty() {
        return Err(ParsePatternError {
            kind: ParsePatternErrorKind::Empty,
        });
    }
    text.chars()
        .map(|c| match c {
            '0' => Ok(Some(false)),
            '1' => Ok(Some(true)),
            'x' | 'X' | '-' => Ok(None),
            other => Err(ParsePatternError {
                kind: ParsePatternErrorKind::BadChar(other),
            }),
        })
        .collect()
}

/// Parses a pattern list separated by `|` or `,` (whitespace tolerated),
/// e.g. `"0x1x | 0xx1x"` — exactly how Figure 7's machine is described.
///
/// # Errors
///
/// Returns [`ParsePatternError`] when the list is empty or any pattern is
/// malformed.
pub fn parse_pattern_list(text: &str) -> Result<Vec<Vec<Option<bool>>>, ParsePatternError> {
    let patterns: Vec<Vec<Option<bool>>> = text
        .split(['|', ','])
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_pattern)
        .collect::<Result<_, _>>()?;
    if patterns.is_empty() {
        return Err(ParsePatternError {
            kind: ParsePatternErrorKind::NoPatterns,
        });
    }
    Ok(patterns)
}

/// Renders a pattern back into the paper's notation.
#[must_use]
pub fn pattern_to_string(pattern: &[Option<bool>]) -> String {
    pattern
        .iter()
        .map(|b| match b {
            Some(true) => '1',
            Some(false) => '0',
            None => 'x',
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_patterns;

    #[test]
    fn figure7_notation_compiles_to_11_states() {
        let patterns = parse_pattern_list("0x1x | 0xx1x").unwrap();
        assert_eq!(compile_patterns(&patterns).num_states(), 11);
    }

    #[test]
    fn separators_and_whitespace() {
        let a = parse_pattern_list("1x,x1").unwrap();
        let b = parse_pattern_list(" 1x |  x1 ").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn round_trip() {
        for text in ["1x", "0x1x", "0xx1x", "000", "111", "xxx"] {
            let p = parse_pattern(text).unwrap();
            assert_eq!(pattern_to_string(&p), text);
        }
    }

    #[test]
    fn errors() {
        assert!(parse_pattern("").is_err());
        assert!(parse_pattern("1y0").is_err());
        assert!(parse_pattern_list("").is_err());
        assert!(parse_pattern_list(" | , ").is_err());
        assert!(parse_pattern_list("1x | 2x").is_err());
    }

    #[test]
    fn dash_alias() {
        assert_eq!(parse_pattern("1-0").unwrap(), parse_pattern("1x0").unwrap());
    }
}
