//! Runnable Moore-machine predictors: a shared immutable [`Dfa`] plus a
//! per-instance current state.
//!
//! In the paper's custom branch architecture many predictor *instances* can
//! reference the same synthesized state machine (and all custom FSMs are
//! updated in parallel on every branch), so the machine description is
//! shared behind an [`Arc`] while each [`MoorePredictor`] carries only its
//! own current-state cursor.

use crate::dfa::Dfa;
use std::sync::Arc;

/// A running instance of a Moore predictor machine.
///
/// The prediction for the next input is the output of the current state;
/// feeding the actual outcome with [`MoorePredictor::update`] advances the
/// machine.
///
/// # Examples
///
/// ```
/// use fsmgen_automata::{Dfa, MoorePredictor, Nfa, Regex};
///
/// // Predict 1 whenever the previous-but-one input was 1 (Figure 6).
/// let re = Regex::ending_in(vec![Regex::pattern(&[Some(true), None])]);
/// let dfa = Dfa::from_nfa(&Nfa::from_regex(&re)).minimized().steady_state_reduced();
/// let mut p = MoorePredictor::new(dfa);
/// p.update(true);
/// p.update(false);
/// assert!(p.predict()); // history "10" matches 1x
/// p.update(false);
/// assert!(!p.predict()); // history "00" does not
/// ```
#[derive(Debug, Clone)]
pub struct MoorePredictor {
    machine: Arc<Dfa>,
    state: u32,
}

impl MoorePredictor {
    /// Creates a predictor instance positioned at the machine's start state.
    #[must_use]
    pub fn new(machine: impl Into<Arc<Dfa>>) -> Self {
        let machine = machine.into();
        let state = machine.start();
        MoorePredictor { machine, state }
    }

    /// Creates another instance sharing the same machine, reset to the
    /// start state.
    #[must_use]
    pub fn fresh_instance(&self) -> Self {
        MoorePredictor {
            machine: Arc::clone(&self.machine),
            state: self.machine.start(),
        }
    }

    /// The prediction produced by the current state.
    #[must_use]
    pub fn predict(&self) -> bool {
        self.machine.output(self.state)
    }

    /// Feeds the actual outcome, advancing to the next state.
    pub fn update(&mut self, outcome: bool) {
        self.state = self.machine.step(self.state, outcome);
    }

    /// Convenience: predict, then update with the outcome; returns whether
    /// the prediction was correct.
    pub fn predict_and_update(&mut self, outcome: bool) -> bool {
        let correct = self.predict() == outcome;
        self.update(outcome);
        correct
    }

    /// Resets to the machine's start state.
    pub fn reset(&mut self) {
        self.state = self.machine.start();
    }

    /// The current state id.
    #[must_use]
    pub fn state(&self) -> u32 {
        self.state
    }

    /// The shared machine description.
    #[must_use]
    pub fn machine(&self) -> &Arc<Dfa> {
        &self.machine
    }

    /// Number of states in the underlying machine.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.machine.num_states()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;
    use crate::regex::Regex;

    fn fig6_machine() -> Dfa {
        let re = Regex::ending_in(vec![Regex::pattern(&[Some(true), None])]);
        Dfa::from_nfa(&Nfa::from_regex(&re))
            .minimized()
            .steady_state_reduced()
    }

    #[test]
    fn predict_tracks_history() {
        let mut p = MoorePredictor::new(fig6_machine());
        let stream = [true, true, false, false, true, false, true, true];
        for (i, &bit) in stream.iter().enumerate() {
            p.update(bit);
            if i >= 1 {
                // Prediction equals "bit two back was 1" per the 1x pattern.
                assert_eq!(p.predict(), stream[i - 1], "at step {i}");
            }
        }
    }

    #[test]
    fn instances_share_machine_but_not_state() {
        let a = MoorePredictor::new(fig6_machine());
        let mut b = a.fresh_instance();
        assert!(Arc::ptr_eq(a.machine(), b.machine()));
        b.update(true);
        b.update(true);
        assert_ne!(a.state(), b.state());
    }

    #[test]
    fn reset_returns_to_start() {
        let mut p = MoorePredictor::new(fig6_machine());
        p.update(true);
        p.update(true);
        p.reset();
        assert_eq!(p.state(), p.machine().start());
    }

    #[test]
    fn predict_and_update_reports_correctness() {
        let mut p = MoorePredictor::new(fig6_machine());
        p.update(true);
        p.update(false); // history 1x -> predicts 1
        assert!(p.predict_and_update(true));
        // Now history is 01 -> the "x" position is 0... pattern 1x looks at
        // two back which is 0 -> predicts 0.
        assert!(p.predict_and_update(false));
    }

    #[test]
    fn send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<MoorePredictor>();
        assert_sync::<MoorePredictor>();
    }
}
