//! Resource budgets for automaton construction.
//!
//! Subset construction is the exponential step of the §4.6 pipeline: a
//! Thompson NFA with `n` states can blow up to `2^n` DFA subsets. An
//! [`AutomataBudget`] bounds that blow-up (and the eventually-periodic
//! steady-state iteration of §4.7) so a caller gets a typed
//! [`AutomataError`] back instead of an unbounded computation. All limits
//! default to "unlimited", so budget-free call sites keep their exact
//! semantics.

use std::fmt;
use std::time::Instant;

/// Resource limits applied by the `*_checked` automaton entry points.
///
/// A default-constructed budget is unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AutomataBudget {
    /// Maximum number of Thompson NFA states. Construction is linear in the
    /// regex size, so this is checked after building (the work to discover a
    /// violation is proportional to the limit, not exponential).
    pub max_nfa_states: Option<usize>,
    /// Maximum number of DFA states subset construction may materialize.
    /// Also caps the length of the reachable-subset sequence walked by
    /// steady-state reduction.
    pub max_dfa_states: Option<usize>,
    /// Wall-clock deadline; long-running loops poll it and abort with
    /// [`AutomataError::DeadlineExpired`].
    pub deadline: Option<Instant>,
}

impl AutomataBudget {
    /// A budget with every limit disabled.
    #[must_use]
    pub fn unlimited() -> Self {
        AutomataBudget::default()
    }

    /// Errors with [`AutomataError::DeadlineExpired`] if the deadline passed.
    pub(crate) fn check_deadline(&self, stage: &'static str) -> Result<(), AutomataError> {
        match self.deadline {
            Some(deadline) if Instant::now() > deadline => {
                Err(AutomataError::DeadlineExpired { stage })
            }
            _ => Ok(()),
        }
    }
}

/// An automaton construction was aborted because it would exceed its
/// [`AutomataBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AutomataError {
    /// Thompson construction produced more NFA states than allowed.
    NfaStates {
        /// States the construction produced.
        generated: usize,
        /// The configured limit.
        limit: usize,
    },
    /// Subset construction (or steady-state iteration) grew past the
    /// allowed DFA state count.
    DfaStates {
        /// States materialized when the limit was hit.
        generated: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The wall-clock deadline expired inside the named stage.
    DeadlineExpired {
        /// The construction stage that observed the expiry.
        stage: &'static str,
    },
}

impl fmt::Display for AutomataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutomataError::NfaStates { generated, limit } => write!(
                f,
                "Thompson construction produced {generated} NFA states, budget allows {limit}"
            ),
            AutomataError::DfaStates { generated, limit } => write!(
                f,
                "DFA construction reached {generated} states, budget allows {limit}"
            ),
            AutomataError::DeadlineExpired { stage } => {
                write!(f, "automaton deadline expired during {stage}")
            }
        }
    }
}

impl std::error::Error for AutomataError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn default_is_unlimited() {
        let b = AutomataBudget::default();
        assert_eq!(b, AutomataBudget::unlimited());
        assert!(b.check_deadline("test").is_ok());
    }

    #[test]
    fn expired_deadline_is_detected() {
        let b = AutomataBudget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..AutomataBudget::default()
        };
        assert_eq!(
            b.check_deadline("subset"),
            Err(AutomataError::DeadlineExpired { stage: "subset" })
        );
    }

    #[test]
    fn errors_display() {
        let e = AutomataError::NfaStates {
            generated: 12,
            limit: 8,
        };
        assert!(e.to_string().contains("12"));
        let e = AutomataError::DfaStates {
            generated: 300,
            limit: 256,
        };
        assert!(e.to_string().contains("300"));
    }
}
