//! Property-based tests tying the automata pipeline together: for random
//! regular expressions and random pattern sets, every stage (NFA, DFA,
//! minimized DFA, steady-reduced DFA) must agree on the language, and the
//! predictor semantics must match a brute-force history check.

use fsmgen_automata::{
    compile_patterns, machine_from_table, machine_to_table, Dfa, MoorePredictor, Nfa, Regex,
};
use proptest::prelude::*;

/// Strategy for small random regexes.
fn regex_strategy() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::zero()),
        Just(Regex::one()),
        Just(Regex::any_bit()),
        Just(Regex::Epsilon),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Regex::concat),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Regex::alt),
            inner.prop_map(Regex::star),
        ]
    })
}

/// Strategy for history pattern sets: up to 3 patterns of length 1..=5.
fn patterns_strategy() -> impl Strategy<Value = Vec<Vec<Option<bool>>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            prop_oneof![Just(None), Just(Some(false)), Just(Some(true))],
            1..=5,
        ),
        1..=3,
    )
}

fn to_bits(v: u32, len: usize) -> Vec<bool> {
    (0..len).map(|i| v >> i & 1 == 1).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pipeline_stages_agree(re in regex_strategy()) {
        let nfa = Nfa::from_regex(&re);
        let dfa = Dfa::from_nfa(&nfa);
        let min = dfa.minimized();
        prop_assert!(min.equivalent(&dfa));
        prop_assert!(min.num_states() <= dfa.num_states());
        for len in 0..=6usize {
            for v in 0..(1u32 << len) {
                let input = to_bits(v, len);
                let expect = re.matches(&input);
                prop_assert_eq!(nfa.accepts(&input), expect, "nfa on {:?}", input);
                prop_assert_eq!(dfa.accepts(input.iter().copied()), expect, "dfa on {:?}", input);
                prop_assert_eq!(min.accepts(input.iter().copied()), expect, "min on {:?}", input);
            }
        }
    }

    #[test]
    fn minimization_is_canonical(re in regex_strategy()) {
        let min = Dfa::from_nfa(&Nfa::from_regex(&re)).minimized();
        let min2 = min.minimized();
        prop_assert_eq!(min.num_states(), min2.num_states());
        prop_assert!(min.equivalent(&min2));
    }

    /// True minimality: in the Hopcroft output, every pair of states is
    /// distinguishable by some input string (checked by refining the
    /// output partition to a fixpoint).
    #[test]
    fn minimized_states_pairwise_distinguishable(re in regex_strategy()) {
        let min = Dfa::from_nfa(&Nfa::from_regex(&re)).minimized();
        let n = min.num_states();
        // classes[s] starts as the output bit; refine until stable.
        let mut classes: Vec<usize> = (0..n as u32)
            .map(|s| usize::from(min.output(s)))
            .collect();
        loop {
            let mut signatures: std::collections::BTreeMap<(usize, usize, usize), usize> =
                std::collections::BTreeMap::new();
            let mut next: Vec<usize> = Vec::with_capacity(n);
            for s in 0..n as u32 {
                let sig = (
                    classes[s as usize],
                    classes[min.step(s, false) as usize],
                    classes[min.step(s, true) as usize],
                );
                let id = signatures.len();
                next.push(*signatures.entry(sig).or_insert(id));
            }
            if next == classes {
                break;
            }
            classes = next;
        }
        let distinct: std::collections::BTreeSet<usize> = classes.iter().copied().collect();
        prop_assert_eq!(
            distinct.len(), n,
            "minimized machine has equivalent states: {:?}", classes
        );
    }

    /// Text-table serialization round-trips any machine exactly, and the
    /// boolean machine operations respect set algebra on random pattern
    /// machines.
    #[test]
    fn serialization_and_ops(patterns in patterns_strategy()) {
        let fsm = compile_patterns(&patterns);
        let back = machine_from_table(&machine_to_table(&fsm)).expect("round trip");
        prop_assert_eq!(&back, &fsm);
        // De Morgan: complement of union == intersection of complements.
        let other = compile_patterns(&[patterns[0].clone()]);
        let lhs = fsm.union(&other).complemented().minimized();
        let rhs = fsm
            .complemented()
            .intersection(&other.complemented())
            .minimized();
        prop_assert!(lhs.equivalent(&rhs));
    }

    #[test]
    fn steady_reduction_never_grows(re in regex_strategy()) {
        let min = Dfa::from_nfa(&Nfa::from_regex(&re)).minimized();
        let red = min.steady_state_reduced();
        prop_assert!(red.num_states() <= min.num_states());
    }

    #[test]
    fn predictor_matches_history_semantics(patterns in patterns_strategy()) {
        // compile_patterns builds "ends in one of these patterns"; after the
        // longest pattern length has streamed in, the prediction must equal
        // a direct check of the trailing window from ANY starting state.
        let max_len = patterns.iter().map(Vec::len).max().unwrap_or(0);
        let fsm = compile_patterns(&patterns);
        let mut predictor = MoorePredictor::new(fsm);

        // Deterministic pseudo-random input stream.
        let mut state = 0x9E37_79B9_u32;
        let mut history: Vec<bool> = Vec::new();
        for step in 0..200usize {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            let bit = state >> 16 & 1 == 1;
            predictor.update(bit);
            history.push(bit);
            if history.len() >= max_len && step >= max_len {
                let expect = patterns.iter().any(|p| {
                    let tail = &history[history.len() - p.len()..];
                    p.iter().zip(tail).all(|(want, &got)| want.is_none_or(|w| w == got))
                });
                prop_assert_eq!(predictor.predict(), expect,
                    "step {} history tail {:?}", step, &history[history.len().saturating_sub(6)..]);
            }
        }
    }

    #[test]
    fn steady_reduction_preserves_long_behaviour(patterns in patterns_strategy()) {
        let max_len = patterns.iter().map(Vec::len).max().unwrap_or(0);
        let alts: Vec<Regex> = patterns.iter().map(|p| Regex::pattern(p)).collect();
        let lang = Regex::ending_in(alts);
        let min = Dfa::from_nfa(&Nfa::from_regex(&lang)).minimized();
        let red = min.steady_state_reduced();
        for len in max_len..=(max_len + 3) {
            for v in 0..(1u32 << len.min(10)) {
                let input = to_bits(v, len);
                prop_assert_eq!(
                    min.accepts(input.iter().copied()),
                    red.accepts(input.iter().copied()),
                    "input {:?}", input
                );
            }
        }
    }
}
