//! Stream generation and the FSM-vs-counter duel.
//!
//! [`ScenarioStream`] lazily expands a [`ScenarioPlan`] into outcomes:
//! one [`BehaviorStream`] carries the global history across every
//! segment (phase changes see the previous regime's history, as a real
//! pipeline would), while each segment draws noise from its own seed
//! derived via [`derive_seed`] — so truncating or editing later segments
//! never perturbs earlier bits. [`duel`] races a designed machine
//! against the paper's 2-bit saturating-counter fallback over one shared
//! stream, and [`run_logged`] renders the same race as a deterministic
//! event log for byte-identical doublecheck comparison.

use crate::plan::{derive_seed, Regime, ScenarioPlan, Segment};
use fsmgen_automata::{Dfa, MoorePredictor};
use fsmgen_bpred::{SaturatingCounter, StreamPredictor};
use fsmgen_exec::{CompiledMachine, CompiledPredictor, ExecBackend};
use fsmgen_workloads::{BehaviorStream, BranchBehavior};
use std::fmt;
use std::sync::Arc;

/// Lazily generates a plan's outcome stream.
pub struct ScenarioStream<'a> {
    plan: &'a ScenarioPlan,
    stream: BehaviorStream,
    segment: usize,
    step: u64,
    entered: bool,
}

impl<'a> ScenarioStream<'a> {
    /// A stream positioned before the first outcome of `plan`.
    #[must_use]
    pub fn new(plan: &'a ScenarioPlan) -> Self {
        ScenarioStream {
            plan,
            stream: BehaviorStream::new(plan.history, derive_seed(plan.seed, 0)),
            segment: 0,
            step: 0,
            entered: false,
        }
    }

    /// Index of the segment the *next* outcome will come from (saturates
    /// at the segment count once exhausted).
    #[must_use]
    pub fn segment_index(&self) -> usize {
        self.segment
    }

    fn behavior(regime: &Regime, step: u64, len: u64) -> BranchBehavior {
        match regime {
            Regime::Biased { taken_prob } => BranchBehavior::Biased {
                taken_prob: *taken_prob,
            },
            Regime::Periodic { pattern } => BranchBehavior::Periodic {
                pattern: pattern.clone(),
            },
            Regime::Correlated {
                ages,
                invert,
                noise,
            } => BranchBehavior::GlobalCorrelated {
                ages: ages.clone(),
                invert: *invert,
                noise: *noise,
            },
            Regime::Drift { from, to } => {
                // Linear interpolation across the segment; the final step
                // sits one increment short of `to`, which the next
                // segment is free to pick up.
                let t = if len == 0 {
                    0.0
                } else {
                    step as f64 / len as f64
                };
                BranchBehavior::Biased {
                    taken_prob: from + (to - from) * t,
                }
            }
            Regime::Bursty {
                calm_prob,
                storm_prob,
                burst_len,
            } => {
                let storm = (step / (*burst_len).max(1)) % 2 == 1;
                BranchBehavior::Biased {
                    taken_prob: if storm { *storm_prob } else { *calm_prob },
                }
            }
        }
    }
}

impl Iterator for ScenarioStream<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        loop {
            let segment: &Segment = self.plan.segments.get(self.segment)?;
            if !self.entered {
                // Each segment gets its own derived seed; history and
                // the RNG stream for *earlier* segments are untouched.
                self.stream
                    .reseed(derive_seed(self.plan.seed, self.segment as u64 + 1));
                self.stream.reset_local_step();
                self.entered = true;
            }
            if self.step >= segment.len {
                self.segment += 1;
                self.step = 0;
                self.entered = false;
                continue;
            }
            let behavior = Self::behavior(&segment.regime, self.step, segment.len);
            self.step += 1;
            return Some(self.stream.next_outcome(&behavior));
        }
    }
}

/// Materializes the full outcome stream of `plan`.
#[must_use]
pub fn generate(plan: &ScenarioPlan) -> Vec<bool> {
    ScenarioStream::new(plan).collect()
}

/// Outcome of racing a designed machine against the saturating-counter
/// fallback over one scenario stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DuelReport {
    /// Outcomes both predictors saw.
    pub total: u64,
    /// Designed-FSM hits.
    pub fsm_correct: u64,
    /// 2-bit-counter hits.
    pub counter_correct: u64,
}

impl DuelReport {
    /// The designed machine's accuracy.
    #[must_use]
    pub fn fsm_accuracy(&self) -> f64 {
        ratio(self.fsm_correct, self.total)
    }

    /// The fallback counter's accuracy.
    #[must_use]
    pub fn counter_accuracy(&self) -> f64 {
        ratio(self.counter_correct, self.total)
    }

    /// `counter_accuracy - fsm_accuracy`: positive means the designed
    /// machine *loses* to the fallback on this scenario.
    #[must_use]
    pub fn gap(&self) -> f64 {
        self.counter_accuracy() - self.fsm_accuracy()
    }
}

fn ratio(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

/// Engine failures (currently only compilation of oversized machines).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineError(pub String);

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario engine: {}", self.0)
    }
}

impl std::error::Error for EngineError {}

fn fsm_predictor(
    machine: &Dfa,
    backend: ExecBackend,
) -> Result<Box<dyn StreamPredictor>, EngineError> {
    match backend {
        ExecBackend::Interpreted => Ok(Box::new(MoorePredictor::new(Arc::new(machine.clone())))),
        ExecBackend::Compiled => {
            let compiled = CompiledMachine::compile(machine)
                .map_err(|e| EngineError(format!("compile failed: {e}")))?;
            Ok(Box::new(CompiledPredictor::new(compiled)))
        }
    }
}

/// Races an already-built stream predictor against a fresh 2-bit counter
/// over `plan`'s stream.
pub fn duel_with<P: StreamPredictor + ?Sized>(fsm: &mut P, plan: &ScenarioPlan) -> DuelReport {
    let mut counter = SaturatingCounter::two_bit();
    let mut report = DuelReport {
        total: 0,
        fsm_correct: 0,
        counter_correct: 0,
    };
    for outcome in ScenarioStream::new(plan) {
        let fsm_prediction = fsm.predict_then_update(outcome);
        let counter_prediction = counter.predict_then_update(outcome);
        report.total += 1;
        report.fsm_correct += u64::from(fsm_prediction == outcome);
        report.counter_correct += u64::from(counter_prediction == outcome);
    }
    report
}

/// Races `machine` (on the chosen backend) against the fallback counter.
///
/// # Errors
///
/// Returns an [`EngineError`] when the machine does not compile.
pub fn duel(
    machine: &Dfa,
    plan: &ScenarioPlan,
    backend: ExecBackend,
) -> Result<DuelReport, EngineError> {
    let mut fsm = fsm_predictor(machine, backend)?;
    Ok(duel_with(fsm.as_mut(), plan))
}

/// A logged scenario run: the deterministic event lines plus the final
/// report. Two runs of the same `(plan, machine, backend)` must render
/// byte-identically — the doublecheck contract.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRun {
    /// JSONL event lines: one `scenario_segment` per segment entry,
    /// `scenario_sample` checkpoints, and a final `scenario_report`.
    pub lines: Vec<String>,
    /// The duel outcome.
    pub report: DuelReport,
}

impl ScenarioRun {
    /// The full log as one newline-joined document.
    #[must_use]
    pub fn rendered(&self) -> String {
        self.lines.join("\n")
    }
}

/// Runs the duel while rendering the deterministic event log.
/// `sample_every` = 0 disables checkpoint lines.
///
/// # Errors
///
/// Returns an [`EngineError`] when the machine does not compile.
pub fn run_logged(
    machine: &Dfa,
    plan: &ScenarioPlan,
    backend: ExecBackend,
    sample_every: u64,
) -> Result<ScenarioRun, EngineError> {
    let mut fsm = fsm_predictor(machine, backend)?;
    let mut counter = SaturatingCounter::two_bit();
    let mut report = DuelReport {
        total: 0,
        fsm_correct: 0,
        counter_correct: 0,
    };
    let mut lines = Vec::new();
    let mut stream = ScenarioStream::new(plan);
    let mut last_segment = usize::MAX;
    while let Some(outcome) = stream.next() {
        // The stream advances its segment index lazily, so after next()
        // it still names the segment that produced this outcome.
        let produced_by = stream.segment_index();
        if produced_by != last_segment {
            let segment = &plan.segments[produced_by];
            lines.push(format!(
                "{{\"v\":{},\"kind\":\"scenario_segment\",\"index\":{},\"regime\":\"{}\",\"len\":{},\"at\":{}}}",
                crate::plan::PLAN_VERSION,
                produced_by,
                segment.regime.kind(),
                segment.len,
                report.total
            ));
            last_segment = produced_by;
        }
        let fsm_prediction = fsm.predict_then_update(outcome);
        let counter_prediction = counter.predict_then_update(outcome);
        report.total += 1;
        report.fsm_correct += u64::from(fsm_prediction == outcome);
        report.counter_correct += u64::from(counter_prediction == outcome);
        if sample_every > 0 && report.total.is_multiple_of(sample_every) {
            lines.push(format!(
                "{{\"v\":{},\"kind\":\"scenario_sample\",\"at\":{},\"fsm_hits\":{},\"counter_hits\":{}}}",
                crate::plan::PLAN_VERSION,
                report.total,
                report.fsm_correct,
                report.counter_correct
            ));
        }
    }
    lines.push(format!(
        "{{\"v\":{},\"kind\":\"scenario_report\",\"seed\":\"{}\",\"total\":{},\"fsm_correct\":{},\"counter_correct\":{},\"fsm_accuracy\":{:?},\"counter_accuracy\":{:?},\"gap\":{:?}}}",
        crate::plan::PLAN_VERSION,
        plan.seed,
        report.total,
        report.fsm_correct,
        report.counter_correct,
        report.fsm_accuracy(),
        report.counter_accuracy(),
        report.gap()
    ));
    Ok(ScenarioRun { lines, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmgen_bpred::two_bit_counter_machine;

    fn biased_plan(p: f64, len: u64) -> ScenarioPlan {
        ScenarioPlan {
            seed: 11,
            history: 4,
            segments: vec![crate::plan::Segment {
                len,
                regime: Regime::Biased { taken_prob: p },
            }],
        }
    }

    #[test]
    fn stream_is_deterministic() {
        let plan = ScenarioPlan::from_seed(7);
        assert_eq!(generate(&plan), generate(&plan));
    }

    #[test]
    fn truncating_tail_segments_preserves_prefix() {
        let mut plan = ScenarioPlan::from_seed(7);
        let full = generate(&plan);
        let kept: u64 = plan.segments[..plan.segments.len() - 1]
            .iter()
            .map(|s| s.len)
            .sum();
        plan.segments.pop();
        let truncated = generate(&plan);
        assert_eq!(truncated.len() as u64, kept);
        assert_eq!(&full[..truncated.len()], &truncated[..]);
    }

    #[test]
    fn bias_extremes_generate_constant_streams() {
        assert!(generate(&biased_plan(1.0, 100)).iter().all(|&b| b));
        assert!(generate(&biased_plan(0.0, 100)).iter().all(|&b| !b));
    }

    #[test]
    fn counter_machine_duels_to_a_near_tie() {
        // The 2-bit-counter machine *is* the fallback, so the duel is a
        // tie on every stream.
        let machine = two_bit_counter_machine();
        let plan = ScenarioPlan::from_seed(3);
        let report = duel(&machine, &plan, ExecBackend::Compiled).expect("duel");
        assert_eq!(report.fsm_correct, report.counter_correct);
        assert_eq!(report.gap(), 0.0);
    }

    #[test]
    fn backends_agree_exactly() {
        let machine = two_bit_counter_machine();
        for seed in 0..8u64 {
            let plan = ScenarioPlan::from_seed(seed);
            let compiled = duel(&machine, &plan, ExecBackend::Compiled).expect("compiled");
            let interpreted = duel(&machine, &plan, ExecBackend::Interpreted).expect("interpreted");
            assert_eq!(compiled, interpreted, "seed {seed}");
        }
    }

    #[test]
    fn logged_run_is_byte_identical_across_runs() {
        let machine = two_bit_counter_machine();
        let plan = ScenarioPlan::from_seed(5);
        let a = run_logged(&machine, &plan, ExecBackend::Compiled, 256).expect("run");
        let b = run_logged(&machine, &plan, ExecBackend::Compiled, 256).expect("run");
        assert_eq!(a.rendered(), b.rendered());
        assert_eq!(a.lines.len(), b.lines.len());
        // One segment line per segment, plus the report.
        let segment_lines = a
            .lines
            .iter()
            .filter(|l| l.contains("scenario_segment"))
            .count();
        assert_eq!(segment_lines, plan.segments.len());
        assert!(a.lines.last().expect("report").contains("scenario_report"));
    }

    #[test]
    fn logged_report_matches_duel() {
        let machine = two_bit_counter_machine();
        let plan = ScenarioPlan::from_seed(9);
        let logged = run_logged(&machine, &plan, ExecBackend::Compiled, 0).expect("run");
        let plain = duel(&machine, &plan, ExecBackend::Compiled).expect("duel");
        assert_eq!(logged.report, plain);
    }
}
