//! The arbitrageur: a seeded search for scenarios a designed FSM loses.
//!
//! A designed predictor is only as good as the training distribution;
//! the arbitrageur hunts for the distributions where the design bet
//! fails, scoring each candidate plan by the duel **gap**
//! (`counter_accuracy - fsm_accuracy`, positive when the designed
//! machine loses to the 2-bit fallback it is supposed to beat). The
//! search is a restarted hill-climb over plan space — segment knobs,
//! boundaries, regime swaps, segment insertion/removal — driven entirely
//! by one `u64` seed through a local xorshift64* generator, so a found
//! counterexample reproduces bit-identically from the printed seed. A
//! winning plan is then greedily minimized (drop segments, halve
//! lengths) while it keeps losing, yielding the smallest counterexample
//! the climb can defend.

use crate::engine::{duel, DuelReport, EngineError};
use crate::plan::{derive_seed, Regime, ScenarioPlan, Segment};
use fsmgen_automata::Dfa;
use fsmgen_exec::ExecBackend;

/// Deterministic xorshift64* generator for the hunt (kept separate from
/// the stream RNG so mutating the search never perturbs generation).
#[derive(Debug, Clone)]
struct Xorshift(u64);

impl Xorshift {
    fn new(seed: u64) -> Self {
        // xorshift64* has a zero fixed point; displace it.
        Xorshift(if seed == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            seed
        })
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Search budget and environment for [`hunt`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HuntConfig {
    /// Master seed; the whole hunt is a pure function of it (given the
    /// same machine).
    pub seed: u64,
    /// Hill-climb mutations per restart.
    pub rounds: u32,
    /// Independent restarts from fresh seeded plans.
    pub restarts: u32,
    /// Cap on a candidate plan's total stream length.
    pub max_total_len: u64,
    /// Early-exit once a plan with at least this gap is found.
    pub target_gap: f64,
    /// Execution backend for the designed machine.
    pub backend: ExecBackend,
}

impl Default for HuntConfig {
    fn default() -> Self {
        HuntConfig {
            seed: 1,
            rounds: 48,
            restarts: 4,
            max_total_len: 32_768,
            target_gap: 0.05,
            backend: ExecBackend::Compiled,
        }
    }
}

/// Outcome of a hunt: the best (and, when losing, minimized) plan.
#[derive(Debug, Clone, PartialEq)]
pub struct HuntReport {
    /// The seed the hunt ran from (reproduces everything below).
    pub seed: u64,
    /// Plans evaluated (duels run).
    pub evaluated: u64,
    /// Whether a losing plan (positive gap) was found.
    pub found: bool,
    /// The best plan — minimized when `found`.
    pub plan: ScenarioPlan,
    /// Duel outcome on `plan`.
    pub report: DuelReport,
}

impl HuntReport {
    /// Renders the report (with the plan inlined) as one JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"v\":{},\"kind\":\"hunt_report\",\"seed\":\"{}\",\"evaluated\":{},\"found\":{},\"fsm_accuracy\":{:?},\"counter_accuracy\":{:?},\"gap\":{:?},\"plan\":{}}}",
            crate::plan::PLAN_VERSION,
            self.seed,
            self.evaluated,
            self.found,
            self.report.fsm_accuracy(),
            self.report.counter_accuracy(),
            self.report.gap(),
            self.plan.to_json()
        )
    }
}

fn clamp_total_len(plan: &mut ScenarioPlan, max_total: u64) {
    let mut total = plan.total_len();
    while total > max_total && plan.segments.len() > 1 {
        total -= plan.segments.pop().map_or(0, |s| s.len);
    }
    if let [only] = plan.segments.as_mut_slice() {
        only.len = only.len.min(max_total.max(1));
    }
}

fn random_regime(rng: &mut Xorshift) -> Regime {
    match rng.below(5) {
        0 => Regime::Biased {
            taken_prob: rng.unit(),
        },
        1 => {
            let period = 2 + rng.below(6) as usize;
            Regime::Periodic {
                pattern: (0..period).map(|_| rng.below(2) == 1).collect(),
            }
        }
        2 => Regime::Correlated {
            ages: vec![1 + rng.below(4) as u8],
            invert: rng.below(2) == 1,
            noise: rng.unit() * 0.2,
        },
        3 => Regime::Drift {
            from: rng.unit(),
            to: rng.unit(),
        },
        _ => Regime::Bursty {
            calm_prob: 0.8 + rng.unit() * 0.2,
            storm_prob: rng.unit() * 0.2,
            burst_len: 16 + rng.below(113),
        },
    }
}

fn nudge_prob(p: &mut f64, rng: &mut Xorshift) {
    // Mix small steps with occasional jumps to an extreme — the losing
    // scenarios usually live at the extremes of the bias knobs.
    *p = match rng.below(4) {
        0 => 0.0 + rng.unit() * 0.05,
        1 => 1.0 - rng.unit() * 0.05,
        _ => (*p + (rng.unit() - 0.5) * 0.3).clamp(0.0, 1.0),
    };
}

fn mutate(plan: &mut ScenarioPlan, rng: &mut Xorshift) {
    let n = plan.segments.len();
    match rng.below(7) {
        // Tweak a knob of one segment.
        0 => {
            let segment = &mut plan.segments[rng.below(n as u64) as usize];
            match &mut segment.regime {
                Regime::Biased { taken_prob } => nudge_prob(taken_prob, rng),
                Regime::Drift { from, to } => {
                    if rng.below(2) == 0 {
                        nudge_prob(from, rng);
                    } else {
                        nudge_prob(to, rng);
                    }
                }
                Regime::Bursty {
                    calm_prob,
                    storm_prob,
                    burst_len,
                } => match rng.below(3) {
                    0 => nudge_prob(calm_prob, rng),
                    1 => nudge_prob(storm_prob, rng),
                    _ => *burst_len = (*burst_len / 2 + rng.below(*burst_len + 16)).max(1),
                },
                Regime::Correlated { noise, invert, .. } => {
                    if rng.below(2) == 0 {
                        nudge_prob(noise, rng);
                    } else {
                        *invert = !*invert;
                    }
                }
                Regime::Periodic { pattern } => {
                    let i = rng.below(pattern.len() as u64) as usize;
                    pattern[i] = !pattern[i];
                }
            }
        }
        // Resize one segment.
        1 => {
            let segment = &mut plan.segments[rng.below(n as u64) as usize];
            segment.len = match rng.below(3) {
                0 => (segment.len / 2).max(32),
                1 => segment.len.saturating_mul(2),
                _ => segment.len + rng.below(1024),
            };
        }
        // Move the boundary between two adjacent segments.
        2 if n >= 2 => {
            let i = rng.below(n as u64 - 1) as usize;
            let shift = rng.below(plan.segments[i].len.max(2) / 2 + 1);
            if rng.below(2) == 0 && plan.segments[i].len > shift + 32 {
                plan.segments[i].len -= shift;
                plan.segments[i + 1].len += shift;
            } else if plan.segments[i + 1].len > shift + 32 {
                plan.segments[i + 1].len -= shift;
                plan.segments[i].len += shift;
            }
        }
        // Replace a segment's regime wholesale.
        3 => {
            let i = rng.below(n as u64) as usize;
            plan.segments[i].regime = random_regime(rng);
        }
        // Insert a fresh segment.
        4 if n < 12 => {
            let at = rng.below(n as u64 + 1) as usize;
            plan.segments.insert(
                at,
                Segment {
                    len: 256 + rng.below(2048),
                    regime: random_regime(rng),
                },
            );
        }
        // Drop a segment.
        5 if n > 1 => {
            let i = rng.below(n as u64) as usize;
            plan.segments.remove(i);
        }
        // Shuffle two segments (regime order matters through history).
        _ if n >= 2 => {
            let i = rng.below(n as u64) as usize;
            let j = rng.below(n as u64) as usize;
            plan.segments.swap(i, j);
        }
        _ => {
            let segment = &mut plan.segments[0];
            segment.len += 64;
        }
    }
}

/// Greedily shrinks a losing plan while it keeps losing: drop whole
/// segments first, then halve segment lengths.
fn minimize(
    machine: &Dfa,
    mut plan: ScenarioPlan,
    backend: ExecBackend,
    evaluated: &mut u64,
) -> Result<(ScenarioPlan, DuelReport), EngineError> {
    let mut report = duel(machine, &plan, backend)?;
    *evaluated += 1;
    loop {
        let mut improved = false;
        // Drop segments, earliest first (a shorter plan re-tests fast).
        let mut i = 0;
        while plan.segments.len() > 1 && i < plan.segments.len() {
            let mut candidate = plan.clone();
            candidate.segments.remove(i);
            let candidate_report = duel(machine, &candidate, backend)?;
            *evaluated += 1;
            if candidate_report.gap() > 0.0 {
                plan = candidate;
                report = candidate_report;
                improved = true;
            } else {
                i += 1;
            }
        }
        // Halve lengths while the plan still loses.
        for i in 0..plan.segments.len() {
            while plan.segments[i].len >= 64 {
                let mut candidate = plan.clone();
                candidate.segments[i].len /= 2;
                let candidate_report = duel(machine, &candidate, backend)?;
                *evaluated += 1;
                if candidate_report.gap() > 0.0 {
                    plan = candidate;
                    report = candidate_report;
                    improved = true;
                } else {
                    break;
                }
            }
        }
        if !improved {
            return Ok((plan, report));
        }
    }
}

/// Hunts for a plan on which `machine` loses to the 2-bit fallback.
///
/// The search is deterministic in `(machine, config)`; rerunning with
/// the reported seed reproduces the identical report.
///
/// # Errors
///
/// Returns an [`EngineError`] when the machine does not compile.
pub fn hunt(machine: &Dfa, config: &HuntConfig) -> Result<HuntReport, EngineError> {
    let mut rng = Xorshift::new(derive_seed(config.seed, 0xa11));
    let mut evaluated = 0u64;
    let mut best: Option<(ScenarioPlan, DuelReport)> = None;
    'restarts: for restart in 0..config.restarts.max(1) {
        let mut current = ScenarioPlan::from_seed(derive_seed(config.seed, u64::from(restart)));
        clamp_total_len(&mut current, config.max_total_len);
        let mut current_report = duel(machine, &current, config.backend)?;
        evaluated += 1;
        if best
            .as_ref()
            .is_none_or(|(_, r)| current_report.gap() > r.gap())
        {
            best = Some((current.clone(), current_report));
        }
        for _ in 0..config.rounds {
            let mut candidate = current.clone();
            mutate(&mut candidate, &mut rng);
            clamp_total_len(&mut candidate, config.max_total_len);
            let candidate_report = duel(machine, &candidate, config.backend)?;
            evaluated += 1;
            if candidate_report.gap() > current_report.gap() {
                current = candidate;
                current_report = candidate_report;
                if best
                    .as_ref()
                    .is_none_or(|(_, r)| current_report.gap() > r.gap())
                {
                    best = Some((current.clone(), current_report));
                }
                if current_report.gap() >= config.target_gap {
                    break 'restarts;
                }
            }
        }
    }
    let (mut plan, mut report) = match best {
        Some(found) => found,
        // restarts >= 1 always evaluates at least one plan.
        None => {
            return Err(EngineError("hunt evaluated no plans".into()));
        }
    };
    let found = report.gap() > 0.0;
    if found {
        (plan, report) = minimize(machine, plan, config.backend, &mut evaluated)?;
    }
    Ok(HuntReport {
        seed: config.seed,
        evaluated,
        found,
        plan,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmgen::Designer;
    use fsmgen_traces::BitTrace;

    /// A deliberately weak "fig2-style" design: trained on a heavily
    /// taken-biased trace, it bets on taken and has no adaptation.
    fn weak_machine() -> Dfa {
        let mut state = 0x5eedu64;
        let bits: BitTrace = (0..4000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % 100 < 92
            })
            .collect();
        Designer::new(2)
            .design_from_trace(&bits)
            .expect("design")
            .fsm()
            .clone()
    }

    #[test]
    fn hunt_finds_and_minimizes_a_losing_plan() {
        let machine = weak_machine();
        let config = HuntConfig {
            seed: 20010630,
            max_total_len: 8192,
            ..HuntConfig::default()
        };
        let report = hunt(&machine, &config).expect("hunt");
        assert!(report.found, "no losing plan found: {:?}", report.report);
        assert!(report.report.gap() > 0.0);
        assert!(report.evaluated > 0);
        // Minimization keeps the loss while shrinking the plan.
        assert!(report.plan.total_len() <= 8192);
    }

    #[test]
    fn hunt_is_deterministic_from_its_seed() {
        let machine = weak_machine();
        let config = HuntConfig {
            seed: 77,
            rounds: 16,
            restarts: 2,
            max_total_len: 4096,
            ..HuntConfig::default()
        };
        let a = hunt(&machine, &config).expect("hunt a");
        let b = hunt(&machine, &config).expect("hunt b");
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn found_plan_replays_to_the_reported_gap() {
        let machine = weak_machine();
        let config = HuntConfig {
            seed: 20010630,
            max_total_len: 8192,
            ..HuntConfig::default()
        };
        let report = hunt(&machine, &config).expect("hunt");
        // Replaying the minimized plan (e.g. after a JSON round-trip)
        // reproduces the exact duel outcome.
        let round_tripped = ScenarioPlan::from_json(&report.plan.to_json()).expect("round trip");
        let replayed = duel(&machine, &round_tripped, config.backend).expect("duel");
        assert_eq!(replayed, report.report);
    }

    #[test]
    fn counter_equivalent_machine_never_loses() {
        let machine = fsmgen_bpred::two_bit_counter_machine();
        let config = HuntConfig {
            seed: 5,
            rounds: 12,
            restarts: 2,
            max_total_len: 4096,
            ..HuntConfig::default()
        };
        let report = hunt(&machine, &config).expect("hunt");
        assert!(
            !report.found,
            "counter cannot lose to itself: {:?}",
            report.report
        );
        assert_eq!(report.report.gap(), 0.0);
    }
}
