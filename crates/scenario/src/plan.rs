//! Versioned scenario plans: the seed-determined recipe for a stream.
//!
//! A [`ScenarioPlan`] is a list of segments, each pairing a length with a
//! [`Regime`] — the generative behaviour active for that stretch of the
//! stream. Plans serialize to flat versioned JSON (parsed back with the
//! shared [`fsmgen_obs::json`] reader) and, in the turso idiom, are a
//! *pure function of one `u64` seed*: [`ScenarioPlan::from_seed`] expands
//! a seed into a full plan, so any scenario — including every plan the
//! arbitrageur visits — reproduces from a single printed integer.

use fsmgen_obs::json::{self, Json};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Schema version of the plan JSON (independent of the obs schema; bump
/// on incompatible change).
pub const PLAN_VERSION: u64 = 1;

/// Longest segment [`ScenarioPlan::from_seed`] generates.
const MAX_GENERATED_SEGMENT: u64 = 4096;
/// Shortest segment [`ScenarioPlan::from_seed`] generates.
const MIN_GENERATED_SEGMENT: u64 = 256;

/// The generative behaviour of one scenario segment.
#[derive(Debug, Clone, PartialEq)]
pub enum Regime {
    /// Independent coin flips with a fixed taken probability.
    Biased {
        /// Probability of a `1` outcome.
        taken_prob: f64,
    },
    /// A repeating outcome pattern (period-k aliasing).
    Periodic {
        /// The repeating pattern, most significant first.
        pattern: Vec<bool>,
    },
    /// XOR of global-history bits at the given ages, with optional
    /// inversion and flip noise — the behaviour class designed FSMs are
    /// built for.
    Correlated {
        /// 1-based history ages whose outcomes are XORed.
        ages: Vec<u8>,
        /// Invert the correlation.
        invert: bool,
        /// Probability each outcome is flipped.
        noise: f64,
    },
    /// Gradual drift: the taken probability moves linearly from `from`
    /// to `to` across the segment.
    Drift {
        /// Taken probability at the segment's first step.
        from: f64,
        /// Taken probability approached at the segment's last step.
        to: f64,
    },
    /// Bursty aliasing: the bias alternates between a calm and a storm
    /// probability every `burst_len` steps.
    Bursty {
        /// Taken probability during calm bursts.
        calm_prob: f64,
        /// Taken probability during storm bursts.
        storm_prob: f64,
        /// Steps per burst before the bias flips.
        burst_len: u64,
    },
}

impl Regime {
    /// The JSON discriminator for this regime.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Regime::Biased { .. } => "biased",
            Regime::Periodic { .. } => "periodic",
            Regime::Correlated { .. } => "correlated",
            Regime::Drift { .. } => "drift",
            Regime::Bursty { .. } => "bursty",
        }
    }
}

/// One stretch of a scenario: a regime active for `len` outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Number of outcomes this segment contributes.
    pub len: u64,
    /// The active behaviour.
    pub regime: Regime,
}

/// A versioned, seeded scenario: everything needed to regenerate the
/// exact outcome stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioPlan {
    /// Master seed. Segment RNGs derive from it; the same plan JSON with
    /// the same seed regenerates identical bits.
    pub seed: u64,
    /// Global-history length carried across segments.
    pub history: usize,
    /// The segments, in stream order.
    pub segments: Vec<Segment>,
}

/// Why a plan failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError(pub String);

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scenario plan: {}", self.0)
    }
}

impl std::error::Error for PlanError {}

/// splitmix64 finalizer — derives stream/segment seeds from the master
/// seed without correlation between indices.
#[must_use]
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fmt_f64(v: f64) -> String {
    // `{:?}` prints the shortest representation that round-trips.
    format!("{v:?}")
}

fn pattern_string(pattern: &[bool]) -> String {
    pattern.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

impl ScenarioPlan {
    /// Expands a single seed into a full plan: 2–6 segments with random
    /// regimes, lengths and knobs, all derived from `seed`.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0xface));
        let n_segments = rng.random_range(2..=6usize);
        let history = rng.random_range(2..=6usize);
        let segments = (0..n_segments)
            .map(|_| Segment {
                len: rng.random_range(MIN_GENERATED_SEGMENT..=MAX_GENERATED_SEGMENT),
                regime: Self::random_regime(&mut rng),
            })
            .collect();
        ScenarioPlan {
            seed,
            history,
            segments,
        }
    }

    fn random_regime(rng: &mut StdRng) -> Regime {
        match rng.random_range(0..5u32) {
            0 => Regime::Biased {
                taken_prob: rng.random::<f64>(),
            },
            1 => {
                let period = rng.random_range(2..=8usize);
                Regime::Periodic {
                    pattern: (0..period).map(|_| rng.random::<bool>()).collect(),
                }
            }
            2 => {
                let n_ages = rng.random_range(1..=2usize);
                Regime::Correlated {
                    ages: (0..n_ages)
                        .map(|_| rng.random_range(1..=4u32) as u8)
                        .collect(),
                    invert: rng.random::<bool>(),
                    noise: rng.random::<f64>() * 0.2,
                }
            }
            3 => Regime::Drift {
                from: rng.random::<f64>(),
                to: rng.random::<f64>(),
            },
            _ => Regime::Bursty {
                calm_prob: 0.8 + rng.random::<f64>() * 0.2,
                storm_prob: rng.random::<f64>() * 0.2,
                burst_len: rng.random_range(16..=128u64),
            },
        }
    }

    /// Total stream length (sum of segment lengths, saturating).
    #[must_use]
    pub fn total_len(&self) -> u64 {
        self.segments
            .iter()
            .fold(0u64, |a, s| a.saturating_add(s.len))
    }

    /// Renders the plan as its versioned JSON document.
    ///
    /// The seed is emitted as a *string*: JSON numbers travel as `f64`,
    /// which cannot represent every `u64` seed exactly.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"v\":{PLAN_VERSION},\"kind\":\"scenario_plan\",\"seed\":\"{}\",\"history\":{},\"segments\":[",
            self.seed, self.history
        );
        for (i, segment) in self.segments.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"len\":{},\"regime\":\"{}\"",
                segment.len,
                segment.regime.kind()
            ));
            match &segment.regime {
                Regime::Biased { taken_prob } => {
                    out.push_str(&format!(",\"taken_prob\":{}", fmt_f64(*taken_prob)));
                }
                Regime::Periodic { pattern } => {
                    out.push_str(&format!(
                        ",\"pattern\":{}",
                        json::json_string(&pattern_string(pattern))
                    ));
                }
                Regime::Correlated {
                    ages,
                    invert,
                    noise,
                } => {
                    let ages_json: Vec<String> = ages.iter().map(u8::to_string).collect();
                    out.push_str(&format!(
                        ",\"ages\":[{}],\"invert\":{},\"noise\":{}",
                        ages_json.join(","),
                        invert,
                        fmt_f64(*noise)
                    ));
                }
                Regime::Drift { from, to } => {
                    out.push_str(&format!(
                        ",\"from\":{},\"to\":{}",
                        fmt_f64(*from),
                        fmt_f64(*to)
                    ));
                }
                Regime::Bursty {
                    calm_prob,
                    storm_prob,
                    burst_len,
                } => {
                    out.push_str(&format!(
                        ",\"calm_prob\":{},\"storm_prob\":{},\"burst_len\":{}",
                        fmt_f64(*calm_prob),
                        fmt_f64(*storm_prob),
                        burst_len
                    ));
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Parses a plan from its JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] naming the first malformed field.
    pub fn from_json(text: &str) -> Result<Self, PlanError> {
        let doc = json::parse(text).map_err(|e| PlanError(e.to_string()))?;
        let v = doc
            .get("v")
            .and_then(Json::as_u64)
            .ok_or_else(|| PlanError("missing v".into()))?;
        if v != PLAN_VERSION {
            return Err(PlanError(format!("unsupported plan version {v}")));
        }
        match doc.get("kind").and_then(Json::as_str) {
            Some("scenario_plan") => {}
            other => return Err(PlanError(format!("bad kind {other:?}"))),
        }
        let seed = match doc.get("seed") {
            // Canonical form: a decimal string (exact for all of u64).
            Some(Json::Str(s)) => s
                .parse::<u64>()
                .map_err(|_| PlanError(format!("bad seed string {s:?}")))?,
            // Tolerated for hand-written plans with small seeds.
            Some(n) => n
                .as_u64()
                .ok_or_else(|| PlanError("bad seed number".into()))?,
            None => return Err(PlanError("missing seed".into())),
        };
        let history =
            doc.get("history")
                .and_then(Json::as_u64)
                .filter(|&h| (1..=64).contains(&h))
                .ok_or_else(|| PlanError("history must be 1..=64".into()))? as usize;
        let segments_json = match doc.get("segments") {
            Some(Json::Arr(items)) => items,
            _ => return Err(PlanError("missing segments array".into())),
        };
        let mut segments = Vec::with_capacity(segments_json.len());
        for (i, item) in segments_json.iter().enumerate() {
            segments
                .push(parse_segment(item).map_err(|e| PlanError(format!("segment {i}: {}", e.0)))?);
        }
        if segments.is_empty() {
            return Err(PlanError("plan has no segments".into()));
        }
        Ok(ScenarioPlan {
            seed,
            history,
            segments,
        })
    }
}

fn require_f64(item: &Json, key: &str) -> Result<f64, PlanError> {
    item.get(key)
        .and_then(Json::as_f64)
        .filter(|p| p.is_finite())
        .ok_or_else(|| PlanError(format!("missing number {key}")))
}

fn require_prob(item: &Json, key: &str) -> Result<f64, PlanError> {
    let p = require_f64(item, key)?;
    if (0.0..=1.0).contains(&p) {
        Ok(p)
    } else {
        Err(PlanError(format!("{key} must be a probability, got {p}")))
    }
}

fn parse_segment(item: &Json) -> Result<Segment, PlanError> {
    let len = item
        .get("len")
        .and_then(Json::as_u64)
        .filter(|&l| l > 0)
        .ok_or_else(|| PlanError("len must be a positive integer".into()))?;
    let regime = match item.get("regime").and_then(Json::as_str) {
        Some("biased") => Regime::Biased {
            taken_prob: require_prob(item, "taken_prob")?,
        },
        Some("periodic") => {
            let text = item
                .get("pattern")
                .and_then(Json::as_str)
                .ok_or_else(|| PlanError("missing pattern".into()))?;
            if text.is_empty() || !text.chars().all(|c| c == '0' || c == '1') {
                return Err(PlanError(format!(
                    "pattern must be non-empty 0/1, got {text:?}"
                )));
            }
            Regime::Periodic {
                pattern: text.chars().map(|c| c == '1').collect(),
            }
        }
        Some("correlated") => {
            let ages_json = match item.get("ages") {
                Some(Json::Arr(items)) if !items.is_empty() => items,
                _ => return Err(PlanError("missing ages array".into())),
            };
            let mut ages = Vec::with_capacity(ages_json.len());
            for a in ages_json {
                let age = a
                    .as_u64()
                    .filter(|&v| (1..=64).contains(&v))
                    .ok_or_else(|| PlanError("ages must be 1..=64".into()))?;
                ages.push(age as u8);
            }
            Regime::Correlated {
                ages,
                invert: item.get("invert").and_then(Json::as_bool).unwrap_or(false),
                noise: require_prob(item, "noise")?,
            }
        }
        Some("drift") => Regime::Drift {
            from: require_prob(item, "from")?,
            to: require_prob(item, "to")?,
        },
        Some("bursty") => Regime::Bursty {
            calm_prob: require_prob(item, "calm_prob")?,
            storm_prob: require_prob(item, "storm_prob")?,
            burst_len: item
                .get("burst_len")
                .and_then(Json::as_u64)
                .filter(|&b| b > 0)
                .ok_or_else(|| PlanError("burst_len must be positive".into()))?,
        },
        other => return Err(PlanError(format!("unknown regime {other:?}"))),
    };
    Ok(Segment { len, regime })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic() {
        let a = ScenarioPlan::from_seed(42);
        let b = ScenarioPlan::from_seed(42);
        assert_eq!(a, b);
        assert_ne!(a, ScenarioPlan::from_seed(43));
        assert!((2..=6).contains(&a.segments.len()));
        assert!(a.total_len() >= 2 * MIN_GENERATED_SEGMENT);
    }

    #[test]
    fn json_round_trips_generated_plans() {
        for seed in [0u64, 1, 42, u64::MAX, 0x9e37_79b9_7f4a_7c15] {
            let plan = ScenarioPlan::from_seed(seed);
            let text = plan.to_json();
            let back = ScenarioPlan::from_json(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
            assert_eq!(plan, back, "seed {seed}");
        }
    }

    #[test]
    fn large_seed_survives_json() {
        let plan = ScenarioPlan {
            seed: u64::MAX - 1,
            history: 4,
            segments: vec![Segment {
                len: 10,
                regime: Regime::Biased { taken_prob: 0.25 },
            }],
        };
        let back = ScenarioPlan::from_json(&plan.to_json()).expect("parse");
        assert_eq!(back.seed, u64::MAX - 1);
    }

    #[test]
    fn rejects_malformed_plans() {
        for bad in [
            "{}",
            r#"{"v":1,"kind":"scenario_plan","seed":"1","history":4,"segments":[]}"#,
            r#"{"v":2,"kind":"scenario_plan","seed":"1","history":4,"segments":[{"len":1,"regime":"biased","taken_prob":0.5}]}"#,
            r#"{"v":1,"kind":"scenario_plan","seed":"1","history":4,"segments":[{"len":1,"regime":"biased","taken_prob":1.5}]}"#,
            r#"{"v":1,"kind":"scenario_plan","seed":"1","history":4,"segments":[{"len":1,"regime":"periodic","pattern":"12"}]}"#,
            r#"{"v":1,"kind":"scenario_plan","seed":"1","history":0,"segments":[{"len":1,"regime":"biased","taken_prob":0.5}]}"#,
            r#"{"v":1,"kind":"scenario_plan","seed":"x","history":4,"segments":[{"len":1,"regime":"biased","taken_prob":0.5}]}"#,
            r#"{"v":1,"kind":"scenario_plan","seed":"1","history":4,"segments":[{"len":0,"regime":"biased","taken_prob":0.5}]}"#,
        ] {
            assert!(ScenarioPlan::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn derive_seed_spreads_indices() {
        let base = derive_seed(7, 0);
        for i in 1..100u64 {
            assert_ne!(derive_seed(7, i), base);
        }
    }
}
