//! `fsmgen-scenario`: a seeded adversarial scenario engine.
//!
//! The paper designs each predictor FSM from a *profiled* trace and bets
//! that deployment behaviour matches the profile (§7.3's cross-input
//! experiments probe exactly this bet). This crate stress-tests the bet
//! systematically:
//!
//! * [`ScenarioPlan`] — a versioned, JSON-serializable recipe composing
//!   phase changes, gradual drift, bursty aliasing and periodic/biased
//!   regime mixes over the [`fsmgen_workloads`] behaviour models into an
//!   arbitrarily long outcome stream. In the turso simulator idiom a
//!   plan is a pure function of one `u64` seed
//!   ([`ScenarioPlan::from_seed`]), and generation is deterministic:
//!   same plan, same bits, byte-identical logs ([`doublecheck`]).
//! * [`duel`] / [`run_logged`] — race a designed machine against the
//!   2-bit saturating-counter fallback it must beat, on either
//!   execution backend (the backends are differentially pinned
//!   bit-identical).
//! * [`hunt`] — the arbitrageur: a seeded restarted hill-climb over
//!   plan space that *hunts* for scenarios where the designed machine
//!   loses the duel, then minimizes the winning counterexample. Every
//!   report reproduces bit-identically from its printed seed.
//!
//! The serve layer uses the same primitives in reverse: its collapse
//! monitor watches for a live stream drifting into exactly the losing
//! scenarios this crate finds, and hot-swaps in a redesign.
//!
//! # Example
//!
//! ```
//! use fsmgen_scenario::{doublecheck, duel, HuntConfig, ScenarioPlan};
//! use fsmgen_bpred::two_bit_counter_machine;
//! use fsmgen_exec::ExecBackend;
//!
//! let plan = ScenarioPlan::from_seed(42);
//! let machine = two_bit_counter_machine();
//! let report = duel(&machine, &plan, ExecBackend::Compiled).unwrap();
//! assert_eq!(report.gap(), 0.0); // the fallback cannot lose to itself
//! doublecheck(&machine, &plan, ExecBackend::Compiled, 256).unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod arbitrageur;
mod engine;
mod plan;

pub use arbitrageur::{hunt, HuntConfig, HuntReport};
pub use engine::{
    duel, duel_with, generate, run_logged, DuelReport, EngineError, ScenarioRun, ScenarioStream,
};
pub use plan::{derive_seed, PlanError, Regime, ScenarioPlan, Segment, PLAN_VERSION};

use fsmgen_automata::Dfa;
use fsmgen_exec::ExecBackend;
use std::fmt;

/// A determinism violation caught by [`doublecheck`].
#[derive(Debug, Clone, PartialEq)]
pub struct DoublecheckError {
    /// Index of the first diverging log line (or the shorter run's
    /// length when one log is a prefix of the other).
    pub line: usize,
    /// The line from the first run (empty when missing).
    pub first: String,
    /// The line from the second run (empty when missing).
    pub second: String,
}

impl fmt::Display for DoublecheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "doublecheck mismatch at line {}: first={:?} second={:?}",
            self.line, self.first, self.second
        )
    }
}

impl std::error::Error for DoublecheckError {}

/// Runs `(machine, plan)` twice and demands byte-identical logs — the
/// determinism contract everything else (seed repro, hunt replay, CI
/// artifacts) rests on. Returns the verified rendered log.
///
/// # Errors
///
/// [`EngineError`] when the machine does not compile; a boxed
/// [`DoublecheckError`] on the first diverging line.
pub fn doublecheck(
    machine: &Dfa,
    plan: &ScenarioPlan,
    backend: ExecBackend,
    sample_every: u64,
) -> Result<String, Box<dyn std::error::Error>> {
    let first = run_logged(machine, plan, backend, sample_every)?;
    let second = run_logged(machine, plan, backend, sample_every)?;
    if first == second {
        return Ok(first.rendered());
    }
    let line = first
        .lines
        .iter()
        .zip(&second.lines)
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| first.lines.len().min(second.lines.len()));
    Err(Box::new(DoublecheckError {
        line,
        first: first.lines.get(line).cloned().unwrap_or_default(),
        second: second.lines.get(line).cloned().unwrap_or_default(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmgen_bpred::two_bit_counter_machine;

    #[test]
    fn doublecheck_passes_on_seeded_plans() {
        let machine = two_bit_counter_machine();
        for seed in [1u64, 2, 3] {
            let plan = ScenarioPlan::from_seed(seed);
            let log = doublecheck(&machine, &plan, ExecBackend::Compiled, 512)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(log.ends_with('}'));
            assert!(log.contains("scenario_report"));
        }
    }
}
