//! Doublecheck determinism over a plan matrix (the turso idiom): every
//! plan runs twice and must render a byte-identical event log — the
//! contract `fsmgen scenario run --doublecheck` enforces from the CLI.

use fsmgen::Designer;
use fsmgen_automata::Dfa;
use fsmgen_bpred::two_bit_counter_machine;
use fsmgen_exec::ExecBackend;
use fsmgen_scenario::{doublecheck, duel, generate, Regime, ScenarioPlan, Segment};
use fsmgen_traces::BitTrace;

fn designed_machine(history: usize) -> Dfa {
    let mut state = 0xdecafu64;
    let bits: BitTrace = (0..3000)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % 10 < 8
        })
        .collect();
    Designer::new(history)
        .design_from_trace(&bits)
        .expect("design")
        .fsm()
        .clone()
}

/// Hand-written plans covering every regime kind.
fn handwritten_plans() -> Vec<ScenarioPlan> {
    vec![
        ScenarioPlan {
            seed: 100,
            history: 4,
            segments: vec![
                Segment {
                    len: 700,
                    regime: Regime::Biased { taken_prob: 0.9 },
                },
                Segment {
                    len: 700,
                    regime: Regime::Biased { taken_prob: 0.1 },
                },
            ],
        },
        ScenarioPlan {
            seed: 101,
            history: 3,
            segments: vec![
                Segment {
                    len: 500,
                    regime: Regime::Periodic {
                        pattern: vec![true, true, false],
                    },
                },
                Segment {
                    len: 400,
                    regime: Regime::Drift { from: 0.0, to: 1.0 },
                },
            ],
        },
        ScenarioPlan {
            seed: 102,
            history: 6,
            segments: vec![
                Segment {
                    len: 600,
                    regime: Regime::Correlated {
                        ages: vec![1, 3],
                        invert: true,
                        noise: 0.02,
                    },
                },
                Segment {
                    len: 600,
                    regime: Regime::Bursty {
                        calm_prob: 0.95,
                        storm_prob: 0.05,
                        burst_len: 64,
                    },
                },
            ],
        },
    ]
}

#[test]
fn doublecheck_matrix_seeded_plans() {
    let machines = [two_bit_counter_machine(), designed_machine(3)];
    for machine in &machines {
        for seed in 0..10u64 {
            let plan = ScenarioPlan::from_seed(seed);
            doublecheck(machine, &plan, ExecBackend::Compiled, 512)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}

#[test]
fn doublecheck_matrix_handwritten_plans_on_both_backends() {
    let machine = designed_machine(2);
    for (i, plan) in handwritten_plans().iter().enumerate() {
        for backend in [ExecBackend::Compiled, ExecBackend::Interpreted] {
            doublecheck(&machine, plan, backend, 128)
                .unwrap_or_else(|e| panic!("plan {i} on {backend:?}: {e}"));
        }
    }
}

#[test]
fn doublecheck_survives_json_round_trip() {
    // A plan that went through its JSON wire format regenerates the
    // same stream and the same log.
    let machine = two_bit_counter_machine();
    for plan in handwritten_plans() {
        let round_tripped = ScenarioPlan::from_json(&plan.to_json()).expect("round trip");
        assert_eq!(generate(&plan), generate(&round_tripped));
        let a = doublecheck(&machine, &plan, ExecBackend::Compiled, 256).expect("a");
        let b = doublecheck(&machine, &round_tripped, ExecBackend::Compiled, 256).expect("b");
        assert_eq!(a, b);
    }
}

#[test]
fn duel_reports_are_stable_across_processes_for_pinned_seed() {
    // A frozen regression point: if generation or the duel ever changes
    // behaviour, this fails loudly rather than silently shifting every
    // downstream accuracy number. (Update deliberately on engine
    // changes.)
    let machine = two_bit_counter_machine();
    let plan = ScenarioPlan::from_seed(20010630);
    let a = duel(&machine, &plan, ExecBackend::Compiled).expect("duel");
    let b = duel(&machine, &plan, ExecBackend::Compiled).expect("duel");
    assert_eq!(a, b);
    assert_eq!(a.total, plan.total_len());
    assert_eq!(a.gap(), 0.0);
}
