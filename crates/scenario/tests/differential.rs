//! Differential pins: the compiled execution backend must be
//! bit-identical to the interpreted reference over a fixed scenario
//! suite, and arbitrageur counterexamples must replay to the exact
//! reported accuracy gap from their printed seed.

use fsmgen::Designer;
use fsmgen_automata::Dfa;
use fsmgen_exec::ExecBackend;
use fsmgen_scenario::{duel, hunt, run_logged, HuntConfig, ScenarioPlan};
use fsmgen_traces::BitTrace;

fn trained_machine(history: usize, bias_pct: u64) -> Dfa {
    let mut state = 0xabcdu64 ^ (bias_pct << 32) ^ history as u64;
    let bits: BitTrace = (0..4000)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % 100 < bias_pct
        })
        .collect();
    Designer::new(history)
        .design_from_trace(&bits)
        .expect("design")
        .fsm()
        .clone()
}

#[test]
fn compiled_matches_interpreted_over_fixed_suite() {
    // 3 designed machines x 6 seeded scenarios, both backends: duel
    // counts and rendered logs must agree exactly.
    let machines = [
        trained_machine(2, 92),
        trained_machine(3, 70),
        trained_machine(4, 30),
    ];
    for (m, machine) in machines.iter().enumerate() {
        for seed in 0..6u64 {
            let plan = ScenarioPlan::from_seed(seed);
            let compiled = duel(machine, &plan, ExecBackend::Compiled)
                .unwrap_or_else(|e| panic!("machine {m} seed {seed}: {e}"));
            let interpreted = duel(machine, &plan, ExecBackend::Interpreted)
                .unwrap_or_else(|e| panic!("machine {m} seed {seed}: {e}"));
            assert_eq!(compiled, interpreted, "machine {m} seed {seed}");

            let log_c = run_logged(machine, &plan, ExecBackend::Compiled, 256).expect("log");
            let log_i = run_logged(machine, &plan, ExecBackend::Interpreted, 256).expect("log");
            assert_eq!(
                log_c.rendered(),
                log_i.rendered(),
                "machine {m} seed {seed}: logs diverge"
            );
        }
    }
}

#[test]
fn hunt_counterexample_replays_from_seed_on_both_backends() {
    let machine = trained_machine(2, 92);
    let config = HuntConfig {
        seed: 424242,
        max_total_len: 8192,
        ..HuntConfig::default()
    };
    let report = hunt(&machine, &config).expect("hunt");
    assert!(report.found, "weak design should lose: {:?}", report.report);

    // Re-running the whole hunt from the printed seed reproduces the
    // identical minimized plan and report.
    let rerun = hunt(&machine, &config).expect("rerun");
    assert_eq!(report, rerun);

    // The minimized plan replays to the reported gap — after a JSON
    // round trip, on either backend.
    let plan = ScenarioPlan::from_json(&report.plan.to_json()).expect("round trip");
    for backend in [ExecBackend::Compiled, ExecBackend::Interpreted] {
        let replayed = duel(&machine, &plan, backend).expect("replay");
        assert_eq!(replayed, report.report, "backend {backend:?}");
    }
    assert!(report.report.gap() > 0.0);
}
