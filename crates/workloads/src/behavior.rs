//! Per-branch behaviour models.
//!
//! Each static branch in a synthetic program carries a [`BranchBehavior`]
//! describing how its outcome is produced. The behaviours encode the
//! structural patterns the paper's predictors exploit or suffer from:
//! loop trip counts (local history), global-history correlation (what the
//! custom FSMs capture), static bias (what bimodal counters capture) and
//! noise (what nothing captures).

use fsmgen_traces::HistoryRegister;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a static branch decides its outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BranchBehavior {
    /// Statically biased: taken with the given probability, independently.
    Biased {
        /// Probability of "taken".
        taken_prob: f64,
    },
    /// Loop-exit style: taken `trip_count - 1` times, then not-taken once
    /// (the backward-branch convention). Captured by local history /
    /// loop predictors, poorly by short global history.
    LoopExit {
        /// Iterations per loop visit.
        trip_count: u32,
    },
    /// Correlated with earlier *global* outcomes: the outcome is the XOR of
    /// the global-history bits at the given ages (1 = previous branch),
    /// optionally inverted, and flipped with probability `noise`.
    ///
    /// This is the behaviour class the paper's per-branch FSMs are built
    /// for: "it is better to concentrate on capturing global correlation"
    /// (§7.3).
    GlobalCorrelated {
        /// History ages (in branches back) whose outcomes are XORed.
        ages: Vec<u8>,
        /// Invert the correlation.
        invert: bool,
        /// Probability the correlated outcome is flipped.
        noise: f64,
    },
    /// Repeating local pattern (period-k behaviour such as unrolled-loop
    /// guards). Captured by local history of length >= period.
    Periodic {
        /// The repeating outcome pattern.
        pattern: Vec<bool>,
    },
}

impl BranchBehavior {
    /// Evaluates the next outcome.
    ///
    /// `global` is the global branch-history register (most recent outcome
    /// in bit 0), `local_step` counts this branch's own executions, and
    /// `rng` supplies noise.
    pub fn outcome(&self, global: &HistoryRegister, local_step: u64, rng: &mut StdRng) -> bool {
        match self {
            BranchBehavior::Biased { taken_prob } => rng.random_bool(taken_prob.clamp(0.0, 1.0)),
            BranchBehavior::LoopExit { trip_count } => {
                let t = u64::from((*trip_count).max(1));
                local_step % t != t - 1
            }
            BranchBehavior::GlobalCorrelated {
                ages,
                invert,
                noise,
            } => {
                let mut v = *invert;
                for &age in ages {
                    // Ages are 1-based (1 = the most recent branch). An
                    // unfilled history position contributes false.
                    let bit = age
                        .checked_sub(1)
                        .and_then(|a| global.outcome(a as usize))
                        .unwrap_or(false);
                    v ^= bit;
                }
                if *noise > 0.0 && rng.random_bool((*noise).clamp(0.0, 1.0)) {
                    v = !v;
                }
                v
            }
            BranchBehavior::Periodic { pattern } => {
                if pattern.is_empty() {
                    false
                } else {
                    pattern[(local_step % pattern.len() as u64) as usize]
                }
            }
        }
    }
}

/// A stateful outcome generator over [`BranchBehavior`]s: one global
/// history register, one seeded RNG and a local step counter, advanced
/// one outcome at a time.
///
/// [`Program::execute`](crate::Program::execute) drives many static
/// branches through one shared history; this is the single-branch
/// streaming counterpart the scenario engine composes into arbitrarily
/// long regime mixes. Every outcome both *consumes* the history (for
/// correlated behaviours) and *feeds* it, so phase changes interact the
/// way they do in a real pipeline: the first correlated outcomes after a
/// regime switch see the previous regime's history.
///
/// Determinism: two streams built with the same `(history_len, seed)`
/// and driven with the same behaviour sequence produce identical bits.
#[derive(Debug, Clone)]
pub struct BehaviorStream {
    global: HistoryRegister,
    rng: StdRng,
    local_step: u64,
}

impl BehaviorStream {
    /// A fresh stream with an empty `history_len`-bit global history.
    #[must_use]
    pub fn new(history_len: usize, seed: u64) -> Self {
        use rand::SeedableRng as _;
        BehaviorStream {
            global: HistoryRegister::new(history_len.max(1)),
            rng: StdRng::seed_from_u64(seed),
            local_step: 0,
        }
    }

    /// Replaces the RNG (keeping history and the local step), so each
    /// scenario segment can carry its own derived seed while the global
    /// history persists across the phase change.
    pub fn reseed(&mut self, seed: u64) {
        use rand::SeedableRng as _;
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Resets the local step counter (periodic/loop behaviours restart
    /// their pattern at a segment boundary).
    pub fn reset_local_step(&mut self) {
        self.local_step = 0;
    }

    /// Generates the next outcome under `behavior` and feeds it back
    /// into the global history.
    pub fn next_outcome(&mut self, behavior: &BranchBehavior) -> bool {
        let outcome = behavior.outcome(&self.global, self.local_step, &mut self.rng);
        self.global.push(outcome);
        self.local_step += 1;
        outcome
    }

    /// The global history register (most recent outcome in bit 0).
    #[must_use]
    pub fn history(&self) -> &HistoryRegister {
        &self.global
    }

    /// This stream's local step counter.
    #[must_use]
    pub fn local_step(&self) -> u64 {
        self.local_step
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn biased_extremes() {
        let mut r = rng();
        let g = HistoryRegister::new(4);
        let always = BranchBehavior::Biased { taken_prob: 1.0 };
        let never = BranchBehavior::Biased { taken_prob: 0.0 };
        for step in 0..50 {
            assert!(always.outcome(&g, step, &mut r));
            assert!(!never.outcome(&g, step, &mut r));
        }
    }

    #[test]
    fn loop_exit_shape() {
        let mut r = rng();
        let g = HistoryRegister::new(4);
        let b = BranchBehavior::LoopExit { trip_count: 4 };
        let outcomes: Vec<bool> = (0..8).map(|s| b.outcome(&g, s, &mut r)).collect();
        assert_eq!(
            outcomes,
            vec![true, true, true, false, true, true, true, false]
        );
    }

    #[test]
    fn global_correlation_tracks_history() {
        let mut r = rng();
        let b = BranchBehavior::GlobalCorrelated {
            ages: vec![2],
            invert: false,
            noise: 0.0,
        };
        let mut g = HistoryRegister::new(8);
        g.push(true); // age 2 after next push
        g.push(false); // age 1
        assert!(b.outcome(&g, 0, &mut r)); // bit two back is 1
        g.push(false);
        g.push(false);
        assert!(!b.outcome(&g, 1, &mut r));
    }

    #[test]
    fn xor_correlation() {
        let mut r = rng();
        let b = BranchBehavior::GlobalCorrelated {
            ages: vec![1, 2],
            invert: true,
            noise: 0.0,
        };
        let mut g = HistoryRegister::new(8);
        g.push(true);
        g.push(false);
        // ages 1,2 = (false, true) -> xor = true, inverted -> false.
        assert!(!b.outcome(&g, 0, &mut r));
    }

    #[test]
    fn periodic_repeats() {
        let mut r = rng();
        let g = HistoryRegister::new(4);
        let b = BranchBehavior::Periodic {
            pattern: vec![true, true, false],
        };
        let outs: Vec<bool> = (0..6).map(|s| b.outcome(&g, s, &mut r)).collect();
        assert_eq!(outs, vec![true, true, false, true, true, false]);
    }

    #[test]
    fn behavior_stream_is_deterministic_and_feeds_history() {
        let behavior = BranchBehavior::Biased { taken_prob: 0.5 };
        let mut a = BehaviorStream::new(4, 99);
        let mut b = BehaviorStream::new(4, 99);
        let bits_a: Vec<bool> = (0..64).map(|_| a.next_outcome(&behavior)).collect();
        let bits_b: Vec<bool> = (0..64).map(|_| b.next_outcome(&behavior)).collect();
        assert_eq!(bits_a, bits_b);
        assert_eq!(a.local_step(), 64);
        // The last outcome is age-1 in the history.
        assert_eq!(a.history().outcome(0), Some(bits_a[63]));
    }

    #[test]
    fn behavior_stream_history_survives_reseed() {
        let correlated = BranchBehavior::GlobalCorrelated {
            ages: vec![1],
            invert: false,
            noise: 0.0,
        };
        let mut s = BehaviorStream::new(4, 1);
        let first = s.next_outcome(&BranchBehavior::Periodic {
            pattern: vec![true],
        });
        assert!(first);
        s.reseed(2);
        s.reset_local_step();
        // Correlated-on-age-1 must still see the pre-reseed outcome.
        assert!(s.next_outcome(&correlated));
        assert_eq!(s.local_step(), 1);
    }

    #[test]
    fn unfilled_history_defaults_false() {
        let mut r = rng();
        let b = BranchBehavior::GlobalCorrelated {
            ages: vec![5],
            invert: false,
            noise: 0.0,
        };
        let g = HistoryRegister::new(8); // empty
        assert!(!b.outcome(&g, 0, &mut r));
    }
}
