//! Synthetic benchmark workloads for predictor training and evaluation.
//!
//! The paper's methodology (§5) traces SPEC95 and MediaBench binaries with
//! ATOM on an Alpha 21264. Neither the binaries nor ATOM are available to
//! this reproduction, so this crate provides *synthetic benchmark models*:
//! small structured programs ([`Program`]) whose branches carry behaviour
//! models ([`BranchBehavior`]) encoding the published characteristics of
//! each benchmark, and load-value generators ([`ValueBenchmark`]) whose
//! streams exercise a stride value predictor the way the paper's
//! benchmarks do. See DESIGN.md for the substitution rationale.
//!
//! Every trace is a deterministic function of `(benchmark, Input)`;
//! training on [`Input::TRAIN`] and evaluating on [`Input::EVAL`]
//! reproduces the paper's `custom-diff` cross-input experiments.
//!
//! # Examples
//!
//! ```
//! use fsmgen_workloads::{BranchBenchmark, Input};
//!
//! let trace = BranchBenchmark::Ijpeg.trace(Input::TRAIN, 10_000);
//! assert!(trace.len() >= 10_000);
//! let taken = trace.iter().filter(|e| e.taken).count();
//! assert!(taken > 0 && taken < trace.len());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod behavior;
mod branch_suites;
mod program;
pub mod simpoint;
mod values;

pub use behavior::{BehaviorStream, BranchBehavior};
pub use branch_suites::{BranchBenchmark, Input};
pub use program::{Program, StaticBranch, Stmt};
pub use values::{LoadBehavior, ValueBenchmark};
