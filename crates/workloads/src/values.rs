//! Synthetic load-value workloads for the value-prediction confidence
//! experiments (§6, Figure 2): `groff`, `gcc`, `li`, `go`, `perl`.
//!
//! The paper chose these programs "because of their interesting confidence
//! estimation behavior for value prediction". Each synthetic model is a
//! set of static loads with value-generation behaviours mixing
//! stride-predictable, phase-switching and chaotic streams. What matters
//! for reproducing Figure 2 is the *structure of the correctness
//! bit-stream* a stride predictor produces on them: bursty runs of correct
//! predictions separated by correlated error clusters — structure a
//! history-based FSM can learn and a saturating counter can only smooth.

use fsmgen_traces::{LoadEvent, LoadTrace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

pub use crate::branch_suites::Input;

/// How a static load produces its next value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoadBehavior {
    /// Always the same value (predictable after one observation).
    Constant(u64),
    /// Arithmetic sequence: perfectly two-delta predictable after warmup.
    Stride {
        /// First value.
        start: u64,
        /// Per-access increment.
        stride: u64,
    },
    /// Stride that switches increment every `phase_len` accesses,
    /// producing a burst of mispredictions at each switch.
    PhasedStride {
        /// Increment in even phases.
        stride_a: u64,
        /// Increment in odd phases.
        stride_b: u64,
        /// Accesses per phase.
        phase_len: u32,
    },
    /// Alternating runs of stride-predictable values and chaotic values;
    /// the run lengths are geometric with the given means. Produces the
    /// bursty correct/incorrect streams confidence estimators feed on.
    BurstyStride {
        /// Mean length of predictable runs.
        good_run: u32,
        /// Mean length of chaotic runs.
        bad_run: u32,
        /// Increment during predictable runs.
        stride: u64,
    },
    /// Uniform random values: never stride-predictable.
    Chaotic,
}

/// Internal per-load generator state.
#[derive(Debug, Clone)]
struct LoadState {
    pc: u64,
    behavior: LoadBehavior,
    step: u64,
    current: u64,
    /// For `BurstyStride`: remaining accesses in the current run and
    /// whether the run is predictable.
    run_left: u32,
    in_good_run: bool,
}

impl LoadState {
    fn next_value(&mut self, rng: &mut StdRng) -> u64 {
        let value = match &self.behavior {
            LoadBehavior::Constant(v) => *v,
            LoadBehavior::Stride { start, stride } => {
                start.wrapping_add(stride.wrapping_mul(self.step))
            }
            LoadBehavior::PhasedStride {
                stride_a,
                stride_b,
                phase_len,
            } => {
                let phase = (self.step / u64::from((*phase_len).max(1))) % 2;
                let stride = if phase == 0 { *stride_a } else { *stride_b };
                let v = self.current;
                self.current = self.current.wrapping_add(stride);
                v
            }
            LoadBehavior::BurstyStride {
                good_run,
                bad_run,
                stride,
            } => {
                if self.run_left == 0 {
                    self.in_good_run = !self.in_good_run;
                    let mean = if self.in_good_run {
                        *good_run
                    } else {
                        *bad_run
                    };
                    self.run_left = sample_run(rng, mean);
                }
                self.run_left -= 1;
                let v = if self.in_good_run {
                    self.current.wrapping_add(*stride)
                } else {
                    rng.random::<u64>() | 1 // chaotic value
                };
                self.current = v;
                v
            }
            LoadBehavior::Chaotic => rng.random::<u64>(),
        };
        self.step += 1;
        value
    }
}

/// Geometric-ish run length with the given mean (at least 1).
fn sample_run(rng: &mut StdRng, mean: u32) -> u32 {
    let mean = mean.max(1);
    1 + rng.random_range(0..mean * 2)
}

/// The five value-prediction benchmarks of §5/§6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueBenchmark {
    /// `groff` document formatter: fairly predictable loads.
    Groff,
    /// `gcc`: notoriously hard; short predictable runs, much chaos.
    Gcc,
    /// `li` (lisp interpreter): moderate predictability.
    Li,
    /// `go`: hard, irregular.
    Go,
    /// `perl`: moderately predictable with bursts.
    Perl,
}

impl ValueBenchmark {
    /// All benchmarks in the order of the paper's Figure 2 panels.
    pub const ALL: [ValueBenchmark; 5] = [
        ValueBenchmark::Gcc,
        ValueBenchmark::Go,
        ValueBenchmark::Groff,
        ValueBenchmark::Li,
        ValueBenchmark::Perl,
    ];

    /// The benchmark's display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ValueBenchmark::Groff => "groff",
            ValueBenchmark::Gcc => "gcc",
            ValueBenchmark::Li => "li",
            ValueBenchmark::Go => "go",
            ValueBenchmark::Perl => "perl",
        }
    }

    /// The static loads of the synthetic model, with input-dependent
    /// parameter jitter.
    fn loads(&self, input: Input) -> Vec<(u64, LoadBehavior)> {
        let mut j = StdRng::seed_from_u64(0x5EED_BEEF ^ input.0 ^ (*self as u64) << 40);
        let base = 0x7000_0000 + ((*self as u64) << 16);
        let pc = |i: u64| base + i * 8;
        match self {
            ValueBenchmark::Groff => vec![
                (pc(0), LoadBehavior::Constant(0x1000)),
                (
                    pc(1),
                    LoadBehavior::Stride {
                        start: 64,
                        stride: 8,
                    },
                ),
                (
                    pc(2),
                    LoadBehavior::Stride {
                        start: 0,
                        stride: 1,
                    },
                ),
                (
                    pc(3),
                    LoadBehavior::BurstyStride {
                        good_run: 40 + j.random_range(0..8),
                        bad_run: 4,
                        stride: 16,
                    },
                ),
                (pc(4), LoadBehavior::Constant(7)),
                (pc(5), LoadBehavior::Chaotic),
            ],
            ValueBenchmark::Gcc => vec![
                (
                    pc(0),
                    LoadBehavior::BurstyStride {
                        good_run: 8 + j.random_range(0..3),
                        bad_run: 8,
                        stride: 4,
                    },
                ),
                (pc(1), LoadBehavior::Chaotic),
                (
                    pc(2),
                    LoadBehavior::BurstyStride {
                        good_run: 7,
                        bad_run: 10,
                        stride: 8,
                    },
                ),
                (pc(3), LoadBehavior::Chaotic),
                (
                    pc(4),
                    LoadBehavior::PhasedStride {
                        stride_a: 4,
                        stride_b: 12,
                        phase_len: 8 + j.random_range(0..3),
                    },
                ),
                (
                    pc(5),
                    LoadBehavior::BurstyStride {
                        good_run: 6,
                        bad_run: 9,
                        stride: 16,
                    },
                ),
                (pc(6), LoadBehavior::Chaotic),
            ],
            ValueBenchmark::Li => vec![
                (pc(0), LoadBehavior::Constant(0x2000)),
                (
                    pc(1),
                    LoadBehavior::BurstyStride {
                        good_run: 14 + j.random_range(0..4),
                        bad_run: 6,
                        stride: 8,
                    },
                ),
                (
                    pc(2),
                    LoadBehavior::Stride {
                        start: 16,
                        stride: 16,
                    },
                ),
                (pc(3), LoadBehavior::Chaotic),
                (
                    pc(4),
                    LoadBehavior::BurstyStride {
                        good_run: 10,
                        bad_run: 8,
                        stride: 24,
                    },
                ),
                (pc(5), LoadBehavior::Chaotic),
            ],
            ValueBenchmark::Go => vec![
                (pc(0), LoadBehavior::Chaotic),
                (
                    pc(1),
                    LoadBehavior::BurstyStride {
                        good_run: 6,
                        bad_run: 10 + j.random_range(0..4),
                        stride: 4,
                    },
                ),
                (pc(2), LoadBehavior::Chaotic),
                (
                    pc(3),
                    LoadBehavior::PhasedStride {
                        stride_a: 8,
                        stride_b: 40,
                        phase_len: 5,
                    },
                ),
                (
                    pc(4),
                    LoadBehavior::BurstyStride {
                        good_run: 8,
                        bad_run: 10,
                        stride: 12,
                    },
                ),
                (
                    pc(5),
                    LoadBehavior::BurstyStride {
                        good_run: 4,
                        bad_run: 14,
                        stride: 8,
                    },
                ),
            ],
            ValueBenchmark::Perl => vec![
                (pc(0), LoadBehavior::Constant(0x40)),
                (
                    pc(1),
                    LoadBehavior::Stride {
                        start: 8,
                        stride: 8,
                    },
                ),
                (
                    pc(2),
                    LoadBehavior::BurstyStride {
                        good_run: 20 + j.random_range(0..6),
                        bad_run: 7,
                        stride: 8,
                    },
                ),
                (
                    pc(3),
                    LoadBehavior::BurstyStride {
                        good_run: 12,
                        bad_run: 5,
                        stride: 4,
                    },
                ),
                (pc(4), LoadBehavior::Chaotic),
                (pc(5), LoadBehavior::Chaotic),
            ],
        }
    }

    /// Generates a load trace of at least `min_loads` dynamic loads by
    /// round-robin execution of the benchmark's static loads.
    #[must_use]
    pub fn trace(&self, input: Input, min_loads: usize) -> LoadTrace {
        let mut rng = StdRng::seed_from_u64(0xDA7A_0000 ^ input.0 ^ (*self as u64) << 48);
        let mut states: Vec<LoadState> = self
            .loads(input)
            .into_iter()
            .map(|(pc, behavior)| LoadState {
                pc,
                behavior,
                step: 0,
                current: 0,
                run_left: 0,
                in_good_run: false,
            })
            .collect();
        let mut trace = LoadTrace::new();
        while trace.len() < min_loads {
            for s in &mut states {
                let value = s.next_value(&mut rng);
                trace.push(LoadEvent { pc: s.pc, value });
            }
        }
        trace
    }
}

impl fmt::Display for ValueBenchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_generate() {
        for b in ValueBenchmark::ALL {
            let t = b.trace(Input::TRAIN, 3_000);
            assert!(t.len() >= 3_000, "{b} too short");
        }
    }

    #[test]
    fn deterministic_per_input() {
        let a = ValueBenchmark::Gcc.trace(Input::TRAIN, 1_000);
        let b = ValueBenchmark::Gcc.trace(Input::TRAIN, 1_000);
        assert_eq!(a, b);
        let c = ValueBenchmark::Gcc.trace(Input::EVAL, 1_000);
        assert_ne!(a, c);
    }

    #[test]
    fn stride_loads_are_strided() {
        let t = ValueBenchmark::Groff.trace(Input::TRAIN, 600);
        // pc(1) of groff strides by 8.
        let pc1 = t.events()[1].pc;
        let vals: Vec<u64> = t.iter().filter(|e| e.pc == pc1).map(|e| e.value).collect();
        for w in vals.windows(2) {
            assert_eq!(w[1] - w[0], 8);
        }
    }

    #[test]
    fn benchmark_names() {
        let names: Vec<&str> = ValueBenchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names, ["gcc", "go", "groff", "li", "perl"]);
    }
}
