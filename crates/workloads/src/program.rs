//! Synthetic structured programs: the trace generator standing in for the
//! ATOM-instrumented Alpha binaries of the paper's methodology (§5).
//!
//! A [`Program`] is a small structured control-flow skeleton — straight-line
//! branches and do-while loops — whose branches carry [`BranchBehavior`]
//! models. Executing it produces a [`BranchTrace`] with the same
//! *learnable structure* real traces have: a global history stream where
//! correlated branches observe consistent predecessor outcomes, loops
//! produce trip-count patterns, and noise bounds achievable accuracy.

use crate::behavior::BranchBehavior;
use fsmgen_traces::{BranchEvent, BranchTrace, HistoryRegister};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Global-history length maintained while executing (generously longer
/// than any predictor's history).
const EXEC_HISTORY: usize = 24;

/// A static conditional branch in a synthetic program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticBranch {
    /// Instruction address; must be unique within the program.
    pub pc: u64,
    /// Outcome model.
    pub behavior: BranchBehavior,
}

/// One statement of a synthetic program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// A single conditional branch.
    Branch(StaticBranch),
    /// A do-while loop: the body executes, then `latch` is evaluated; while
    /// taken, the body repeats. The latch behaviour is typically
    /// [`BranchBehavior::LoopExit`].
    Loop {
        /// The backward latch branch.
        latch: StaticBranch,
        /// Statements of the loop body.
        body: Vec<Stmt>,
    },
    /// An if-then block: `guard` is evaluated; when taken, the body
    /// executes. Creates input-dependent global history interleavings.
    If {
        /// The guard branch.
        guard: StaticBranch,
        /// Statements executed when the guard is taken.
        body: Vec<Stmt>,
    },
}

/// A synthetic program: a statement list executed repeatedly until the
/// requested number of dynamic branches has been produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    stmts: Vec<Stmt>,
}

impl Program {
    /// Creates a program from its top-level statements.
    ///
    /// # Panics
    ///
    /// Panics if the program contains no branches or duplicate PCs.
    #[must_use]
    pub fn new(stmts: Vec<Stmt>) -> Self {
        let program = Program { stmts };
        let pcs = program.static_pcs();
        assert!(!pcs.is_empty(), "a program needs at least one branch");
        let unique: std::collections::BTreeSet<u64> = pcs.iter().copied().collect();
        assert_eq!(unique.len(), pcs.len(), "duplicate branch PCs in program");
        program
    }

    /// All static branch PCs, in program order.
    #[must_use]
    pub fn static_pcs(&self) -> Vec<u64> {
        fn walk(stmts: &[Stmt], out: &mut Vec<u64>) {
            for s in stmts {
                match s {
                    Stmt::Branch(b) => out.push(b.pc),
                    Stmt::Loop { latch, body } => {
                        walk(body, out);
                        out.push(latch.pc);
                    }
                    Stmt::If { guard, body } => {
                        out.push(guard.pc);
                        walk(body, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.stmts, &mut out);
        out
    }

    /// Executes the program until at least `min_branches` dynamic branches
    /// have been emitted (finishing the current top-level pass), using the
    /// given seed. Equal seeds give identical traces; different seeds model
    /// different program inputs.
    #[must_use]
    pub fn execute(&self, min_branches: usize, seed: u64) -> BranchTrace {
        let mut exec = Executor {
            rng: StdRng::seed_from_u64(seed),
            global: HistoryRegister::new(EXEC_HISTORY),
            local_steps: BTreeMap::new(),
            trace: BranchTrace::new(),
        };
        while exec.trace.len() < min_branches {
            exec.run_block(&self.stmts);
        }
        exec.trace
    }
}

struct Executor {
    rng: StdRng,
    global: HistoryRegister,
    local_steps: BTreeMap<u64, u64>,
    trace: BranchTrace,
}

impl Executor {
    fn run_block(&mut self, stmts: &[Stmt]) {
        for stmt in stmts {
            match stmt {
                Stmt::Branch(b) => {
                    self.execute_branch(b);
                }
                Stmt::Loop { latch, body } => {
                    // Do-while with a safety bound against pathological
                    // always-taken latches.
                    for _ in 0..10_000 {
                        self.run_block(body);
                        if !self.execute_branch(latch) {
                            break;
                        }
                    }
                }
                Stmt::If { guard, body } => {
                    if self.execute_branch(guard) {
                        self.run_block(body);
                    }
                }
            }
        }
    }

    fn execute_branch(&mut self, branch: &StaticBranch) -> bool {
        let step = self.local_steps.entry(branch.pc).or_insert(0);
        let outcome = branch.behavior.outcome(&self.global, *step, &mut self.rng);
        *step += 1;
        self.global.push(outcome);
        self.trace.push(BranchEvent {
            pc: branch.pc,
            target: branch.pc ^ 0x1000,
            taken: outcome,
        });
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn biased(pc: u64, p: f64) -> StaticBranch {
        StaticBranch {
            pc,
            behavior: BranchBehavior::Biased { taken_prob: p },
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let prog = Program::new(vec![
            Stmt::Branch(biased(0x100, 0.7)),
            Stmt::Branch(biased(0x104, 0.3)),
        ]);
        let a = prog.execute(1000, 42);
        let b = prog.execute(1000, 42);
        assert_eq!(a, b);
        let c = prog.execute(1000, 43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn loop_structure_produces_trip_patterns() {
        let prog = Program::new(vec![Stmt::Loop {
            latch: StaticBranch {
                pc: 0x200,
                behavior: BranchBehavior::LoopExit { trip_count: 4 },
            },
            body: vec![Stmt::Branch(biased(0x204, 1.0))],
        }]);
        let t = prog.execute(64, 1);
        // Latch outcomes: taken,taken,taken,not-taken repeating.
        let latch_outcomes: Vec<bool> = t
            .iter()
            .filter(|e| e.pc == 0x200)
            .map(|e| e.taken)
            .collect();
        for chunk in latch_outcomes.chunks_exact(4) {
            assert_eq!(chunk, [true, true, true, false]);
        }
    }

    #[test]
    fn correlated_branch_sees_guard_outcome() {
        // Guard then a branch copying the guard's outcome (age 1).
        let prog = Program::new(vec![
            Stmt::Branch(biased(0x300, 0.5)),
            Stmt::Branch(StaticBranch {
                pc: 0x304,
                behavior: BranchBehavior::GlobalCorrelated {
                    ages: vec![1],
                    invert: false,
                    noise: 0.0,
                },
            }),
        ]);
        let t = prog.execute(400, 5);
        let events = t.events();
        for pair in events.chunks_exact(2) {
            assert_eq!(pair[0].pc, 0x300);
            assert_eq!(pair[1].taken, pair[0].taken, "copier must track guard");
        }
    }

    #[test]
    fn if_blocks_execute_conditionally() {
        let prog = Program::new(vec![Stmt::If {
            guard: biased(0x400, 0.5),
            body: vec![Stmt::Branch(biased(0x404, 1.0))],
        }]);
        let t = prog.execute(300, 9);
        let mut iter = t.iter().peekable();
        while let Some(e) = iter.next() {
            assert_eq!(e.pc, 0x400);
            if e.taken {
                let inner = iter.next().expect("taken guard executes body");
                assert_eq!(inner.pc, 0x404);
            }
        }
    }

    #[test]
    fn static_pcs_in_program_order() {
        let prog = Program::new(vec![
            Stmt::If {
                guard: biased(1, 0.5),
                body: vec![Stmt::Branch(biased(2, 0.5))],
            },
            Stmt::Loop {
                latch: StaticBranch {
                    pc: 4,
                    behavior: BranchBehavior::LoopExit { trip_count: 2 },
                },
                body: vec![Stmt::Branch(biased(3, 0.5))],
            },
        ]);
        assert_eq!(prog.static_pcs(), vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "duplicate branch PCs")]
    fn duplicate_pcs_rejected() {
        let _ = Program::new(vec![
            Stmt::Branch(biased(1, 0.5)),
            Stmt::Branch(biased(1, 0.5)),
        ]);
    }
}
