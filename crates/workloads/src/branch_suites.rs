//! Synthetic models of the paper's six branch benchmarks (§5): `compress`,
//! `ijpeg`, `vortex` from SPEC95 and `gsm`, `g721`, `gs` from MediaBench.
//!
//! Each model is a structured [`Program`] whose branch behaviours encode
//! the *published characteristics* of the benchmark that the paper's
//! results hinge on:
//!
//! * `compress` — one dominant hard branch whose behaviour is a long
//!   local period, weakly visible in 9-bit global history but fully
//!   captured by 10-bit local history: a single custom FSM recovers part
//!   of the loss, then the curve flattens, and a moderate LGC wins (§7.5).
//! * `ijpeg`, `gsm` — strong short-range global correlation and "do not
//!   benefit from local history"; custom FSMs beat even the largest
//!   tables.
//! * `vortex` — many correlated branches; the custom floor sits far below
//!   the baseline (paper: 13% → 3%).
//! * `g721` — mostly easy, strongly biased branches; XScale is already
//!   good (8%), customs shave ~1%.
//! * `gs` — a mix, including multi-pattern correlation like Figure 7;
//!   ~5% → ~4%.
//!
//! Every benchmark mixes three branch classes: *fillers* (strongly biased,
//! easy for every predictor — the bulk of real programs), *drivers*
//! (moderately biased entropy sources), and *correlated* branches whose
//! outcome is a boolean function of recent global-history bits — the class
//! the paper's custom FSMs are built to capture.
//!
//! A benchmark plus an [`Input`] (program-input stand-in) deterministically
//! defines a trace; `custom-diff` experiments train on one input and
//! evaluate on another.

use crate::behavior::BranchBehavior;
use crate::program::{Program, StaticBranch, Stmt};
use fsmgen_traces::BranchTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A program input: different inputs produce different (but behaviourally
/// consistent) traces of the same benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Input(pub u64);

impl Input {
    /// The canonical training input.
    pub const TRAIN: Input = Input(1);
    /// The canonical evaluation input for `custom-diff` experiments.
    pub const EVAL: Input = Input(2);
}

/// The six branch benchmarks of the paper's embedded suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchBenchmark {
    /// SPEC95 `compress`: dominated by one hard, locally-patterned branch.
    Compress,
    /// MediaBench `gs` (PostScript interpreter): mixed behaviours.
    Gs,
    /// MediaBench `gsm decode`: strong global correlation.
    Gsm,
    /// MediaBench `g721 decode`: mostly easy, biased branches.
    G721,
    /// SPEC95 `ijpeg`: strong short-range global correlation.
    Ijpeg,
    /// SPEC95 `vortex`: many correlated branches.
    Vortex,
}

impl BranchBenchmark {
    /// All benchmarks, in the order the paper's Figure 5 panels appear.
    pub const ALL: [BranchBenchmark; 6] = [
        BranchBenchmark::Compress,
        BranchBenchmark::Gs,
        BranchBenchmark::Gsm,
        BranchBenchmark::G721,
        BranchBenchmark::Ijpeg,
        BranchBenchmark::Vortex,
    ];

    /// The benchmark's display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            BranchBenchmark::Compress => "compress",
            BranchBenchmark::Gs => "gs",
            BranchBenchmark::Gsm => "gsm",
            BranchBenchmark::G721 => "g721",
            BranchBenchmark::Ijpeg => "ijpeg",
            BranchBenchmark::Vortex => "vortex",
        }
    }

    /// Builds the synthetic program for this benchmark under `input`.
    #[must_use]
    pub fn program(&self, input: Input) -> Program {
        // Input-dependent parameter jitter: real inputs shift biases and
        // trip counts without changing the correlation *structure*.
        let mut jitter = StdRng::seed_from_u64(0x5EED_0000 ^ input.0);
        match self {
            BranchBenchmark::Compress => compress(&mut jitter),
            BranchBenchmark::Gs => gs(&mut jitter),
            BranchBenchmark::Gsm => gsm(&mut jitter),
            BranchBenchmark::G721 => g721(&mut jitter),
            BranchBenchmark::Ijpeg => ijpeg(&mut jitter),
            BranchBenchmark::Vortex => vortex(&mut jitter),
        }
    }

    /// Generates a trace of at least `min_branches` dynamic branches for
    /// this benchmark and input.
    #[must_use]
    pub fn trace(&self, input: Input, min_branches: usize) -> BranchTrace {
        self.program(input)
            .execute(min_branches, 0xB5A5_0000 ^ input.0 ^ (*self as u64) << 32)
    }
}

impl fmt::Display for BranchBenchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn pc(base: u64, i: u64) -> u64 {
    base + i * 4
}

fn branch(pc: u64, behavior: BranchBehavior) -> Stmt {
    Stmt::Branch(StaticBranch { pc, behavior })
}

/// Strongly biased filler with input jitter: the easy bulk of a program.
fn filler(rng: &mut StdRng, pc: u64, taken_side: bool) -> Stmt {
    let p = 0.988 - rng.random_range(0.0..0.012);
    branch(
        pc,
        BranchBehavior::Biased {
            taken_prob: if taken_side { p } else { 1.0 - p },
        },
    )
}

/// Moderately biased entropy source.
fn driver(rng: &mut StdRng, pc: u64, p: f64) -> Stmt {
    branch(
        pc,
        BranchBehavior::Biased {
            taken_prob: (p + rng.random_range(-0.03..0.03)).clamp(0.05, 0.95),
        },
    )
}

fn corr(ages: &[u8], invert: bool, noise: f64) -> BranchBehavior {
    BranchBehavior::GlobalCorrelated {
        ages: ages.to_vec(),
        invert,
        noise,
    }
}

/// `compress`: one dominant branch with a long local period executes every
/// loop iteration (about a third of all dynamic branches). Its own past
/// outcomes appear in 9-bit global history only at ages 3, 6 and 9 — three
/// scattered samples of a period-11 pattern — so a global-history FSM
/// recovers part of the loss while 10-bit local history nails it.
fn compress(rng: &mut StdRng) -> Program {
    let base = 0x12_0000;
    // Period-11 pattern, ~64% taken, rotated per input.
    let mut pattern = vec![
        true, true, false, true, false, true, true, true, false, true, false,
    ];
    let rot = rng.random_range(0..pattern.len());
    pattern.rotate_left(rot);
    Program::new(vec![
        Stmt::Loop {
            latch: StaticBranch {
                pc: pc(base, 0),
                behavior: BranchBehavior::LoopExit {
                    trip_count: 24 + rng.random_range(0..5),
                },
            },
            body: vec![
                branch(pc(base, 1), BranchBehavior::Periodic { pattern }),
                filler(rng, pc(base, 2), true),
            ],
        },
        filler(rng, pc(base, 3), true),
        filler(rng, pc(base, 4), false),
        driver(rng, pc(base, 5), 0.84),
        filler(rng, pc(base, 6), true),
        filler(rng, pc(base, 7), false),
        filler(rng, pc(base, 8), true),
    ])
}

/// `gs`: mostly easy interpreter dispatch plus a couple of multi-pattern
/// correlated branches (Figure 7's branch lives here). Baseline around 5%,
/// customs shave it toward 4%.
fn gs(rng: &mut StdRng) -> Program {
    let base = 0x20_0000;
    let mut stmts = vec![driver(rng, pc(base, 0), 0.72)];
    stmts.push(branch(pc(base, 1), corr(&[1, 3], false, 0.03)));
    for i in 2..14 {
        stmts.push(filler(rng, pc(base, i), i % 3 != 0));
    }
    stmts.push(branch(pc(base, 14), corr(&[2, 4], true, 0.04)));
    for i in 15..26 {
        stmts.push(filler(rng, pc(base, i), i % 4 != 1));
    }
    stmts.push(Stmt::If {
        guard: StaticBranch {
            pc: pc(base, 26),
            behavior: BranchBehavior::Biased { taken_prob: 0.85 },
        },
        body: vec![filler(rng, pc(base, 27), true)],
    });
    Program::new(stmts)
}

/// `gsm decode`: tight DSP kernels with strong short-range global
/// correlation and essentially no local-history benefit. Baseline in the
/// low teens, custom floor far below every table predictor.
fn gsm(rng: &mut StdRng) -> Program {
    let base = 0x30_0000;
    let mut stmts = vec![driver(rng, pc(base, 0), 0.74)];
    stmts.push(branch(pc(base, 1), corr(&[1], false, 0.03)));
    stmts.push(branch(pc(base, 2), corr(&[1, 2], true, 0.03)));
    stmts.push(driver(rng, pc(base, 3), 0.24));
    stmts.push(branch(pc(base, 4), corr(&[1, 4], false, 0.04)));
    for i in 5..12 {
        stmts.push(filler(rng, pc(base, i), i % 2 == 0));
    }
    stmts.push(branch(pc(base, 12), corr(&[3, 5], false, 0.03)));
    for i in 13..18 {
        stmts.push(filler(rng, pc(base, i), i % 3 != 2));
    }
    Program::new(stmts)
}

/// `g721 decode`: mostly easy, strongly biased branches the XScale 2-bit
/// counters already capture; two correlated ones leave about a point of
/// miss rate on the table.
fn g721(rng: &mut StdRng) -> Program {
    let base = 0x40_0000;
    let mut stmts = vec![driver(rng, pc(base, 0), 0.84)];
    stmts.push(driver(rng, pc(base, 1), 0.16));
    stmts.push(branch(pc(base, 2), corr(&[2], false, 0.06)));
    for i in 3..12 {
        stmts.push(filler(rng, pc(base, i), i % 2 == 1));
    }
    stmts.push(branch(pc(base, 12), corr(&[4], true, 0.08)));
    stmts.push(driver(rng, pc(base, 13), 0.80));
    for i in 14..18 {
        stmts.push(filler(rng, pc(base, i), i % 3 == 0));
    }
    Program::new(stmts)
}

/// `ijpeg`: strong global correlation two branches back — the literal
/// behaviour of the Figure 6 machine — plus more correlated DCT-style
/// branches. Customs beat even the largest tables.
fn ijpeg(rng: &mut StdRng) -> Program {
    let base = 0x50_0000;
    let mut stmts = vec![driver(rng, pc(base, 0), 0.72)];
    // The Figure 6 branch: "highly correlated with the branch that is two
    // branches back in the history".
    stmts.push(branch(pc(base, 1), corr(&[2], false, 0.02)));
    stmts.push(branch(pc(base, 2), corr(&[1, 2], false, 0.03)));
    stmts.push(driver(rng, pc(base, 3), 0.27));
    stmts.push(branch(pc(base, 4), corr(&[1, 4], true, 0.03)));
    for i in 5..11 {
        stmts.push(filler(rng, pc(base, i), i % 2 == 0));
    }
    stmts.push(branch(pc(base, 11), corr(&[2, 6], false, 0.04)));
    for i in 12..16 {
        stmts.push(filler(rng, pc(base, i), i % 3 != 0));
    }
    Program::new(stmts)
}

/// `vortex`: an OO database with many moderately correlated branches; the
/// custom predictors capture nearly all of them (paper: 13% → 3%).
fn vortex(rng: &mut StdRng) -> Program {
    let base = 0x60_0000;
    let mut stmts = Vec::new();
    stmts.push(driver(rng, pc(base, 0), 0.70));
    let specs: [(&[u8], bool, f64); 5] = [
        (&[1], false, 0.02),
        (&[1, 2], true, 0.03),
        (&[3], false, 0.03),
        (&[2, 4], false, 0.03),
        (&[1, 5], true, 0.04),
    ];
    for (i, (ages, inv, noise)) in specs.iter().enumerate() {
        stmts.push(branch(pc(base, 1 + i as u64), corr(ages, *inv, *noise)));
    }
    stmts.push(driver(rng, pc(base, 6), 0.82));
    for i in 7..20 {
        stmts.push(filler(rng, pc(base, i), i % 2 == 1));
    }
    Program::new(stmts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_generate_traces() {
        for bench in BranchBenchmark::ALL {
            let t = bench.trace(Input::TRAIN, 5_000);
            assert!(t.len() >= 5_000, "{bench} too short");
            assert!(
                t.static_branches().len() >= 6,
                "{bench} has too few static branches"
            );
        }
    }

    #[test]
    fn traces_are_deterministic() {
        let a = BranchBenchmark::Ijpeg.trace(Input::TRAIN, 2_000);
        let b = BranchBenchmark::Ijpeg.trace(Input::TRAIN, 2_000);
        assert_eq!(a, b);
    }

    #[test]
    fn inputs_differ_but_share_structure() {
        let a = BranchBenchmark::Gsm.trace(Input::TRAIN, 2_000);
        let b = BranchBenchmark::Gsm.trace(Input::EVAL, 2_000);
        assert_ne!(a, b, "different inputs must differ");
        assert_eq!(
            a.static_branches(),
            b.static_branches(),
            "static structure must be input-invariant"
        );
    }

    #[test]
    fn benchmarks_have_distinct_taken_rates() {
        // Sanity: the workloads are not all the same generator.
        let rates: Vec<f64> = BranchBenchmark::ALL
            .iter()
            .map(|b| {
                let t = b.trace(Input::TRAIN, 4_000);
                t.iter().filter(|e| e.taken).count() as f64 / t.len() as f64
            })
            .collect();
        for (i, a) in rates.iter().enumerate() {
            for b in rates.iter().skip(i + 1) {
                assert!(
                    (a - b).abs() > 1e-6,
                    "two benchmarks produced identical rates"
                );
            }
        }
    }

    #[test]
    fn compress_is_dominated_by_the_loop_branch() {
        let t = BranchBenchmark::Compress.trace(Input::TRAIN, 10_000);
        let counts = t.execution_counts();
        let dominant = counts[&(0x12_0000 + 4)];
        assert!(
            dominant * 2 > t.len() / 2,
            "dominant branch should be about a third of dynamics, got {dominant}/{}",
            t.len()
        );
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = BranchBenchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names, ["compress", "gs", "gsm", "g721", "ijpeg", "vortex"]);
    }
}
