//! SimPoint-style representative sampling (§5: "Traces were gathered for
//! 300 million instructions from the SimPoints recommended in [37, 38]").
//!
//! The original SimPoint clusters basic-block vectors of fixed execution
//! windows and simulates only the medoid window of each cluster. This
//! module reproduces that methodology on branch traces: each window's
//! *branch-frequency vector* (per static branch: executions and taken
//! counts) is clustered with deterministic k-means, and the window
//! closest to each centroid is chosen as that phase's representative.
//! Training a predictor on the concatenated representatives approximates
//! training on the full trace at a fraction of the length.

use fsmgen_traces::BranchTrace;
use std::collections::BTreeMap;

/// The outcome of SimPoint selection on one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SimPoints {
    /// Chosen window indices, ascending.
    pub windows: Vec<usize>,
    /// Per-chosen-window weight: the fraction of all windows whose
    /// cluster it represents.
    pub weights: Vec<f64>,
    /// Window size in dynamic branches.
    pub window_len: usize,
}

impl SimPoints {
    /// Extracts the representative sub-trace: the chosen windows
    /// concatenated in program order.
    #[must_use]
    pub fn sample(&self, trace: &BranchTrace) -> BranchTrace {
        let mut out = BranchTrace::new();
        for &w in &self.windows {
            let start = w * self.window_len;
            let end = (start + self.window_len).min(trace.len());
            out.extend(trace.events()[start..end].iter().copied());
        }
        out
    }
}

/// Builds the frequency vector of one window: for every static branch,
/// `(executions, taken)` scaled into a dense feature vector.
fn window_vector(window: &[fsmgen_traces::BranchEvent], dims: &BTreeMap<u64, usize>) -> Vec<f64> {
    let mut v = vec![0.0; dims.len() * 2];
    for e in window {
        let d = dims[&e.pc];
        v[2 * d] += 1.0;
        if e.taken {
            v[2 * d + 1] += 1.0;
        }
    }
    // Normalise by window length so partial tail windows compare fairly.
    let n = window.len().max(1) as f64;
    for x in &mut v {
        *x /= n;
    }
    v
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Selects up to `k` SimPoint windows of `window_len` branches from
/// `trace` via deterministic k-means (k-means++-style farthest-point
/// seeding from window 0, 20 Lloyd iterations).
///
/// # Errors
///
/// Returns a message when the trace is shorter than one window or `k`
/// is zero.
pub fn select_simpoints(
    trace: &BranchTrace,
    window_len: usize,
    k: usize,
) -> Result<SimPoints, String> {
    if k == 0 {
        return Err("k must be positive".to_string());
    }
    if window_len == 0 || trace.len() < window_len {
        return Err(format!(
            "trace of {} branches is shorter than one window of {window_len}",
            trace.len()
        ));
    }
    let dims: BTreeMap<u64, usize> = trace
        .static_branches()
        .into_iter()
        .enumerate()
        .map(|(i, pc)| (pc, i))
        .collect();
    let windows: Vec<Vec<f64>> = trace
        .events()
        .chunks(window_len)
        .map(|w| window_vector(w, &dims))
        .collect();
    let k = k.min(windows.len());

    // Farthest-point seeding, deterministic.
    let mut centroids: Vec<Vec<f64>> = vec![windows[0].clone()];
    while centroids.len() < k {
        let far = windows
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                let da = centroids
                    .iter()
                    .map(|c| dist2(a, c))
                    .fold(f64::MAX, f64::min);
                let db = centroids
                    .iter()
                    .map(|c| dist2(b, c))
                    .fold(f64::MAX, f64::min);
                da.partial_cmp(&db).expect("finite distances")
            })
            .map(|(i, _)| i)
            .expect("non-empty windows");
        centroids.push(windows[far].clone());
    }

    // Lloyd iterations.
    let mut assignment = vec![0usize; windows.len()];
    for _ in 0..20 {
        let mut changed = false;
        for (i, w) in windows.iter().enumerate() {
            let best = (0..centroids.len())
                .min_by(|&a, &b| {
                    dist2(w, &centroids[a])
                        .partial_cmp(&dist2(w, &centroids[b]))
                        .expect("finite distances")
                })
                .expect("k >= 1");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Recompute centroids.
        let mut sums = vec![vec![0.0; windows[0].len()]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (i, w) in windows.iter().enumerate() {
            counts[assignment[i]] += 1;
            for (s, x) in sums[assignment[i]].iter_mut().zip(w) {
                *s += x;
            }
        }
        for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if *count > 0 {
                *c = sum.iter().map(|s| s / *count as f64).collect();
            }
        }
        if !changed {
            break;
        }
    }

    // Medoid per non-empty cluster, plus cluster weights.
    let mut chosen: Vec<(usize, f64)> = Vec::new();
    for (c, centroid) in centroids.iter().enumerate() {
        let members: Vec<usize> = (0..windows.len()).filter(|&i| assignment[i] == c).collect();
        if members.is_empty() {
            continue;
        }
        let medoid = members
            .iter()
            .copied()
            .min_by(|&a, &b| {
                dist2(&windows[a], centroid)
                    .partial_cmp(&dist2(&windows[b], centroid))
                    .expect("finite distances")
            })
            .expect("non-empty cluster");
        chosen.push((medoid, members.len() as f64 / windows.len() as f64));
    }
    chosen.sort_unstable_by_key(|&(w, _)| w);
    Ok(SimPoints {
        windows: chosen.iter().map(|&(w, _)| w).collect(),
        weights: chosen.iter().map(|&(_, wt)| wt).collect(),
        window_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch_suites::{BranchBenchmark, Input};

    #[test]
    fn picks_at_most_k_windows_with_full_weight() {
        let trace = BranchBenchmark::Gs.trace(Input::TRAIN, 20_000);
        let sp = select_simpoints(&trace, 1_000, 4).unwrap();
        assert!(!sp.windows.is_empty() && sp.windows.len() <= 4);
        let total: f64 = sp.weights.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to 1, got {total}");
        // Windows are in range and sorted.
        for w in sp.windows.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(*sp.windows.last().unwrap() <= trace.len() / 1_000);
    }

    #[test]
    fn sample_concatenates_windows() {
        let trace = BranchBenchmark::Gsm.trace(Input::TRAIN, 10_000);
        let sp = select_simpoints(&trace, 500, 3).unwrap();
        let sample = sp.sample(&trace);
        let expected: usize = sp
            .windows
            .iter()
            .map(|&w| (trace.len() - w * 500).min(500))
            .sum();
        assert_eq!(sample.len(), expected);
    }

    #[test]
    fn distinct_phases_get_distinct_representatives() {
        // A trace with two obvious phases: branch A only, then branch B
        // only. Two clusters must pick one window from each phase.
        let mut t = BranchTrace::new();
        for i in 0..2_000 {
            t.push(fsmgen_traces::BranchEvent {
                pc: 0x10,
                target: 0,
                taken: i % 2 == 0,
            });
        }
        for _ in 0..2_000 {
            t.push(fsmgen_traces::BranchEvent {
                pc: 0x20,
                target: 0,
                taken: true,
            });
        }
        let sp = select_simpoints(&t, 400, 2).unwrap();
        assert_eq!(sp.windows.len(), 2);
        assert!(sp.windows[0] < 5 && sp.windows[1] >= 5, "{:?}", sp.windows);
    }

    #[test]
    fn errors_on_degenerate_inputs() {
        let t = BranchBenchmark::Gs.trace(Input::TRAIN, 1_000);
        assert!(select_simpoints(&t, 0, 2).is_err());
        assert!(select_simpoints(&t, 10_000, 2).is_err());
        assert!(select_simpoints(&t, 100, 0).is_err());
    }

    #[test]
    fn training_on_simpoints_approximates_full_trace() {
        // A predictor designed from the SimPoint sample should be close
        // to one designed from the full trace.
        use fsmgen_traces::BitTrace;
        let bench = BranchBenchmark::Ijpeg;
        let full = bench.trace(Input::TRAIN, 40_000);
        let sp = select_simpoints(&full, 2_000, 5).unwrap();
        let sample = sp.sample(&full);
        assert!(
            sample.len() * 3 <= full.len(),
            "sample must be much shorter"
        );

        let to_bits = |t: &BranchTrace| -> BitTrace { t.iter().map(|e| e.taken).collect() };
        let eval_bits = to_bits(&bench.trace(Input::EVAL, 40_000));
        let accuracy = |train: &BranchTrace| {
            let design = fsmgen::Designer::new(6)
                .design_from_trace(&to_bits(train))
                .expect("long enough");
            let mut p = design.predictor();
            let mut ok = 0usize;
            for b in &eval_bits {
                if p.predict() == b {
                    ok += 1;
                }
                p.update(b);
            }
            ok as f64 / eval_bits.len() as f64
        };
        let full_acc = accuracy(&full);
        let sp_acc = accuracy(&sample);
        assert!(
            (full_acc - sp_acc).abs() < 0.05,
            "full {full_acc:.3} vs simpoint {sp_acc:.3}"
        );
    }
}
