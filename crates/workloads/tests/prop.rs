//! Property-based tests for the synthetic workload generators: structural
//! invariants of programs, determinism, and behaviour-model contracts.

use fsmgen_traces::HistoryRegister;
use fsmgen_workloads::{
    simpoint::select_simpoints, BranchBehavior, BranchBenchmark, Input, Program, StaticBranch,
    Stmt, ValueBenchmark,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy for small random structured programs with unique PCs.
fn program_strategy() -> impl Strategy<Value = Program> {
    let behavior = prop_oneof![
        (0.05f64..0.95).prop_map(|p| BranchBehavior::Biased { taken_prob: p }),
        (2u32..10).prop_map(|t| BranchBehavior::LoopExit { trip_count: t }),
        (proptest::collection::vec(1u8..6, 1..3), any::<bool>()).prop_map(|(ages, inv)| {
            BranchBehavior::GlobalCorrelated {
                ages,
                invert: inv,
                noise: 0.0,
            }
        }),
        proptest::collection::vec(any::<bool>(), 1..6)
            .prop_map(|pattern| BranchBehavior::Periodic { pattern }),
    ];
    proptest::collection::vec(behavior, 1..10).prop_map(|behaviors| {
        // Assign unique PCs; wrap every third branch in an if, every
        // fifth in a loop, for structural variety.
        let mut stmts = Vec::new();
        for (i, behavior) in behaviors.into_iter().enumerate() {
            let pc = 0x1000 + (i as u64) * 8;
            let b = StaticBranch { pc, behavior };
            match i % 5 {
                4 => stmts.push(Stmt::Loop {
                    latch: StaticBranch {
                        pc: pc + 4,
                        behavior: BranchBehavior::LoopExit { trip_count: 3 },
                    },
                    body: vec![Stmt::Branch(b)],
                }),
                2 => stmts.push(Stmt::If {
                    guard: StaticBranch {
                        pc: pc + 4,
                        behavior: BranchBehavior::Biased { taken_prob: 0.5 },
                    },
                    body: vec![Stmt::Branch(b)],
                }),
                _ => stmts.push(Stmt::Branch(b)),
            }
        }
        Program::new(stmts)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every execution is deterministic per seed and meets the length
    /// contract.
    #[test]
    fn execution_contract(program in program_strategy(), seed in 0u64..1000, len in 1usize..3000) {
        let a = program.execute(len, seed);
        prop_assert!(a.len() >= len);
        let b = program.execute(len, seed);
        prop_assert_eq!(&a, &b, "same seed must reproduce the trace");
        // Only declared PCs appear.
        let declared: std::collections::BTreeSet<u64> =
            program.static_pcs().into_iter().collect();
        for e in &a {
            prop_assert!(declared.contains(&e.pc), "undeclared pc {:#x}", e.pc);
        }
    }

    /// Noise-free GlobalCorrelated branches are an exact function of the
    /// preceding global outcomes.
    #[test]
    fn correlation_is_exact_without_noise(
        ages in proptest::collection::vec(1u8..6, 1..3),
        invert in any::<bool>(),
        seed in 0u64..100,
    ) {
        let program = Program::new(vec![
            Stmt::Branch(StaticBranch {
                pc: 0x10,
                behavior: BranchBehavior::Biased { taken_prob: 0.5 },
            }),
            Stmt::Branch(StaticBranch {
                pc: 0x18,
                behavior: BranchBehavior::GlobalCorrelated {
                    ages: ages.clone(),
                    invert,
                    noise: 0.0,
                },
            }),
        ]);
        let trace = program.execute(600, seed);
        let mut global = HistoryRegister::new(16);
        for e in &trace {
            if e.pc == 0x18 && global.is_full() {
                let mut expect = invert;
                for &age in &ages {
                    expect ^= global.outcome(age as usize - 1).unwrap_or(false);
                }
                prop_assert_eq!(e.taken, expect);
            }
            global.push(e.taken);
        }
    }

    /// Benchmark traces honour the length contract and keep static
    /// structure across inputs and lengths.
    #[test]
    fn benchmark_contracts(which in 0usize..6, len in 100usize..5000, input in 1u64..6) {
        let bench = BranchBenchmark::ALL[which];
        let t = bench.trace(Input(input), len);
        prop_assert!(t.len() >= len);
        let again = bench.trace(Input(input), len);
        prop_assert_eq!(&t, &again);
        let other = bench.trace(Input(input + 10), len);
        prop_assert_eq!(t.static_branches(), other.static_branches());
    }

    /// Value traces are deterministic and meet length contracts too.
    #[test]
    fn value_benchmark_contracts(which in 0usize..5, len in 100usize..4000, input in 1u64..6) {
        let bench = ValueBenchmark::ALL[which];
        let t = bench.trace(Input(input), len);
        prop_assert!(t.len() >= len);
        prop_assert_eq!(&t, &bench.trace(Input(input), len));
    }

    /// SimPoint weights always sum to one and windows stay in range.
    #[test]
    fn simpoint_contract(len in 2_000usize..12_000, window in 200usize..1500, k in 1usize..6) {
        let trace = BranchBenchmark::Vortex.trace(Input::TRAIN, len);
        let sp = select_simpoints(&trace, window, k).expect("valid parameters");
        prop_assert!(!sp.windows.is_empty() && sp.windows.len() <= k);
        let total: f64 = sp.weights.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let num_windows = trace.len().div_ceil(window);
        for &w in &sp.windows {
            prop_assert!(w < num_windows);
        }
    }

    /// LoopExit behaviour produces runs of exactly trip_count-1 takens.
    #[test]
    fn loop_exit_run_lengths(trip in 2u32..20, steps in 10u64..200) {
        let b = BranchBehavior::LoopExit { trip_count: trip };
        let g = HistoryRegister::new(4);
        let mut rng = StdRng::seed_from_u64(1);
        let outcomes: Vec<bool> = (0..steps).map(|s| b.outcome(&g, s, &mut rng)).collect();
        for (i, &o) in outcomes.iter().enumerate() {
            prop_assert_eq!(o, (i as u64 % u64::from(trip)) != u64::from(trip) - 1);
        }
    }
}
