//! `fsmgen` — the command-line face of the FSM-predictor design flow.
//!
//! ```text
//! fsmgen design   [--history N] [--threshold P] [--dont-care F]
//!                 [--format summary|dot|vhdl] [FILE]      design from a 0/1 trace
//! fsmgen trace    --benchmark NAME [--kind branch|value|bits]
//!                 [--len N] [--input K]                   dump a synthetic workload
//! fsmgen trace export --format chrome|folded
//!                 [--in trace.jsonl] [--out FILE]
//!                 [--stage NAME] [--min-us N] [--strict]  convert an obs JSONL trace
//! fsmgen simulate --benchmark NAME [--len N]
//!                 [--customs K] [--history N]             compare predictors
//! fsmgen predict  --machine FILE [TRACE]                 replay a saved machine
//! fsmgen figure   {1|6|7}                                 print a paper figure's FSM
//! fsmgen serve    [--addr HOST:PORT] [--shards N]
//!                 [--cache-file FILE]                      run the design service
//! fsmgen scenario {run|hunt} [--seed N] [--plan FILE]     adversarial scenario engine
//! fsmgen client   --addr HOST:PORT [flags] [TRACE]        talk to a running service
//! fsmgen loadgen  --addr HOST:PORT [--connections N]
//!                 [--pipeline N] [--codec json|binary]     seeded client-swarm loadgen
//! fsmgen top      HOST:PORT [--interval-ms N]
//!                 [--once] [--json] [--count N]           live service dashboard
//! ```

mod args;
mod commands;
mod error;
mod top;

use error::CliError;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::from(CliError::Usage(String::new()).exit_code());
    };
    let parsed = match args::Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(CliError::Usage(String::new()).exit_code());
        }
    };
    let result = match command.as_str() {
        "design" => commands::design(&parsed),
        "trace" => commands::trace(&parsed),
        "simulate" => commands::simulate(&parsed),
        "predict" => commands::predict(&parsed),
        "compile" => commands::compile(&parsed),
        "confidence" => commands::confidence(&parsed),
        "headlines" => commands::headlines(&parsed),
        "figure" => commands::figure(&parsed),
        "farm" => commands::farm(&parsed),
        "cache" => commands::cache(&parsed),
        "serve" => commands::serve(&parsed),
        "scenario" => commands::scenario(&parsed),
        "client" => commands::client(&parsed),
        "loadgen" => commands::loadgen(&parsed),
        "top" => top::top(&parsed),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command {other:?}\n{}",
            commands::USAGE
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
