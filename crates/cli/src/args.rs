//! Minimal dependency-free argument parsing: `--key value` flags plus
//! positional arguments, collected in one pass.

use std::collections::BTreeMap;

/// Parsed command-line arguments: flag map plus positionals in order.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: BTreeMap<String, String>,
    positional: Vec<String>,
}

impl Args {
    /// Parses raw arguments (excluding the program and subcommand names).
    ///
    /// # Errors
    ///
    /// Returns a message when a `--flag` is missing its value.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, String> {
        let mut args = Args::default();
        let mut iter = raw.into_iter();
        while let Some(a) = iter.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("flag --{name} requires a value"))?;
                args.flags.insert(name.to_string(), value);
            } else {
                args.positional.push(a);
            }
        }
        Ok(args)
    }

    /// A flag's raw value.
    #[must_use]
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A flag parsed into any `FromStr` type, with a default.
    ///
    /// # Errors
    ///
    /// Returns a message naming the flag when parsing fails.
    pub fn flag_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value {v:?} for --{name}")),
        }
    }

    /// Positional arguments in order.
    #[must_use]
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags_and_positionals() {
        let args =
            Args::parse(["--history", "6", "trace.txt", "--threshold", "0.8"].map(String::from))
                .unwrap();
        assert_eq!(args.flag("history"), Some("6"));
        assert_eq!(args.flag_or("history", 2usize).unwrap(), 6);
        assert_eq!(args.flag_or("missing", 9usize).unwrap(), 9);
        assert_eq!(args.positional(), ["trace.txt"]);
        let t: f64 = args.flag_or("threshold", 0.5).unwrap();
        assert!((t - 0.8).abs() < 1e-12);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(["--history".to_string()]).is_err());
    }

    #[test]
    fn bad_parse_is_an_error() {
        let args = Args::parse(["--history", "six"].map(String::from)).unwrap();
        assert!(args.flag_or("history", 2usize).is_err());
    }
}
