//! Minimal dependency-free argument parsing: `--key value` flags plus
//! positional arguments, collected in one pass.

use std::collections::BTreeMap;

/// Flags that are pure switches: they never consume the next token, so
/// `--no-degrade FILE` keeps `FILE` positional.
const BOOLEAN_FLAGS: &[&str] = &[
    "no-degrade",
    "lenient",
    "verbose",
    "profile",
    "ping",
    "stats",
    "shutdown",
    "once",
    "json",
    "strict",
    "doublecheck",
    "redesign",
];

/// Parsed command-line arguments: flag map plus positionals in order.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: BTreeMap<String, String>,
    positional: Vec<String>,
}

impl Args {
    /// Parses raw arguments (excluding the program and subcommand names).
    /// Flags in [`BOOLEAN_FLAGS`] — and any `--flag` followed by another
    /// `--flag` or by nothing — are stored as presence flags with an empty
    /// value; see [`Args::has`].
    ///
    /// # Errors
    ///
    /// Currently infallible; kept fallible for future syntax checks.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, String> {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") && !BOOLEAN_FLAGS.contains(&name) => {
                        iter.next().unwrap_or_default()
                    }
                    _ => String::new(),
                };
                args.flags.insert(name.to_string(), value);
            } else {
                args.positional.push(a);
            }
        }
        Ok(args)
    }

    /// A flag's raw value. Flags present without a value (boolean style)
    /// read as absent here — use [`Args::has`] for those.
    #[must_use]
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .get(name)
            .map(String::as_str)
            .filter(|v| !v.is_empty())
    }

    /// `true` when the flag appeared at all, with or without a value.
    #[must_use]
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// A flag parsed into any `FromStr` type, with a default.
    ///
    /// # Errors
    ///
    /// Returns a message naming the flag when the value is missing or
    /// fails to parse.
    pub fn flag_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        self.flag_opt(name).map(|v| v.unwrap_or(default))
    }

    /// An optional flag parsed into any `FromStr` type (`None` if absent).
    ///
    /// # Errors
    ///
    /// Returns a message naming the flag when the value is missing or
    /// fails to parse.
    pub fn flag_opt<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.flags.get(name) {
            None => Ok(None),
            Some(v) if v.is_empty() => Err(format!("flag --{name} requires a value")),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value {v:?} for --{name}")),
        }
    }

    /// Positional arguments in order.
    #[must_use]
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags_and_positionals() {
        let args =
            Args::parse(["--history", "6", "trace.txt", "--threshold", "0.8"].map(String::from))
                .unwrap();
        assert_eq!(args.flag("history"), Some("6"));
        assert_eq!(args.flag_or("history", 2usize).unwrap(), 6);
        assert_eq!(args.flag_or("missing", 9usize).unwrap(), 9);
        assert_eq!(args.positional(), ["trace.txt"]);
        let t: f64 = args.flag_or("threshold", 0.5).unwrap();
        assert!((t - 0.8).abs() < 1e-12);
    }

    #[test]
    fn missing_value_is_an_error_at_use() {
        let args = Args::parse(["--history".to_string()]).unwrap();
        assert!(args.has("history"));
        assert_eq!(args.flag("history"), None);
        assert!(args.flag_or("history", 2usize).is_err());
    }

    #[test]
    fn boolean_flags_before_other_flags() {
        let args =
            Args::parse(["--no-degrade", "--history", "6", "--lenient"].map(String::from)).unwrap();
        assert!(args.has("no-degrade"));
        assert!(args.has("lenient"));
        assert!(!args.has("degrade"));
        assert_eq!(args.flag_or("history", 2usize).unwrap(), 6);
    }

    #[test]
    fn boolean_flags_never_swallow_positionals() {
        let args = Args::parse(["--no-degrade", "trace.bits"].map(String::from)).unwrap();
        assert!(args.has("no-degrade"));
        assert_eq!(args.positional(), ["trace.bits"]);
    }

    #[test]
    fn optional_flags() {
        let args = Args::parse(["--budget-states", "64"].map(String::from)).unwrap();
        assert_eq!(args.flag_opt::<usize>("budget-states").unwrap(), Some(64));
        assert_eq!(args.flag_opt::<usize>("budget-primes").unwrap(), None);
    }

    #[test]
    fn bad_parse_is_an_error() {
        let args = Args::parse(["--history", "six"].map(String::from)).unwrap();
        assert!(args.flag_or("history", 2usize).is_err());
    }
}
