//! `fsmgen top`: a live, dependency-free dashboard over the design
//! service's stats endpoint, plus the plain-line watch mode shared with
//! `fsmgen client --stats --watch`.
//!
//! The delta/rate/restart computation lives in `fsmgen_serve::watch`
//! (one module, two front-ends); this file owns polling, the ANSI TUI
//! rendering, and the non-TTY degradations: `--once`/`--json` single
//! shots and `--count N` plain-line frames.

use crate::args::Args;
use crate::error::CliError;
use fsmgen_serve::watch::{parse_stats, RateTracker, WatchFrame};
use fsmgen_serve::{Request, Response, ServeClient};
use std::io::{IsTerminal, Write};
use std::time::Duration;

/// Consecutive failed polls after which a watch loop gives up. Long
/// enough to ride out a server restart at any sane interval.
const MAX_CONSECUTIVE_FAILURES: u32 = 20;

/// Polls one server's stats endpoint, reconnecting after any error so a
/// restarted server is picked up transparently.
pub(crate) struct StatsPoller {
    addr: String,
    timeout: Duration,
    client: Option<ServeClient>,
}

impl StatsPoller {
    pub(crate) fn new(addr: &str, timeout: Duration) -> Self {
        StatsPoller {
            addr: addr.to_string(),
            timeout,
            client: None,
        }
    }

    /// One stats round-trip. On any failure the connection is dropped so
    /// the next call dials fresh (the server may have restarted).
    pub(crate) fn sample(&mut self) -> Result<fsmgen_serve::StatsSample, String> {
        if self.client.is_none() {
            self.client = Some(
                ServeClient::connect(&self.addr, self.timeout)
                    .map_err(|e| format!("cannot connect to {}: {e}", self.addr))?,
            );
        }
        let result = match self.client.as_mut() {
            Some(client) => client.call(&Request::Stats),
            None => return Err("no connection".into()),
        };
        match result {
            Ok(Response::Stats(json)) => parse_stats(&json),
            Ok(other) => {
                self.client = None;
                Err(format!("unexpected reply: {other:?}"))
            }
            Err(e) => {
                self.client = None;
                Err(format!("stats request failed: {e}"))
            }
        }
    }
}

/// `fsmgen top HOST:PORT`.
///
/// # Errors
///
/// Usage errors for missing address or bad flags; a general error when
/// the server never becomes reachable.
pub fn top(args: &Args) -> Result<(), CliError> {
    let addr = match args.positional().first().map(String::as_str) {
        Some(addr) => addr.to_string(),
        None => match args.flag("addr") {
            Some(addr) => addr.to_string(),
            None => {
                return Err(CliError::Usage(
                    "top: HOST:PORT (positional or --addr) is required".into(),
                ))
            }
        },
    };
    let interval = Duration::from_millis(
        args.flag_or("interval-ms", 1000u64)
            .map_err(CliError::Usage)?,
    );
    let timeout = Duration::from_millis(
        args.flag_or("timeout-ms", 3000u64)
            .map_err(CliError::Usage)?,
    );
    let count: u64 = args.flag_or("count", 0u64).map_err(CliError::Usage)?;
    let mut poller = StatsPoller::new(&addr, timeout);

    if args.has("once") || args.has("json") {
        return run_once(&addr, &mut poller, interval, args.has("json"));
    }
    if count > 0 || !std::io::stdout().is_terminal() {
        // Redirected stdout without --count: one table, like --once.
        if count == 0 {
            return run_once(&addr, &mut poller, interval, false);
        }
        return run_plain(&mut poller, interval, count);
    }
    run_tui(&addr, &mut poller, interval)
}

/// Plain-line watch shared with `fsmgen client --stats --watch`.
/// `samples == 0` means until interrupted (or the server stays gone).
pub(crate) fn client_watch(
    addr: &str,
    interval: Duration,
    samples: u64,
    timeout: Duration,
) -> Result<(), CliError> {
    let mut poller = StatsPoller::new(addr, timeout);
    run_watch_lines(&mut poller, interval, samples)
}

fn run_plain(poller: &mut StatsPoller, interval: Duration, count: u64) -> Result<(), CliError> {
    run_watch_lines(poller, interval, count)
}

/// The shared plain-mode loop: one line per poll, surviving restarts
/// and transient connection failures.
fn run_watch_lines(
    poller: &mut StatsPoller,
    interval: Duration,
    count: u64,
) -> Result<(), CliError> {
    let mut tracker = RateTracker::new();
    let mut emitted = 0u64;
    let mut successes = 0u64;
    let mut consecutive_failures = 0u32;
    loop {
        match poller.sample() {
            Ok(sample) => {
                consecutive_failures = 0;
                successes += 1;
                let frame = tracker.observe(sample);
                println!("{}", watch_line(&frame));
            }
            Err(e) => {
                consecutive_failures += 1;
                println!("unreachable: {e}");
                if consecutive_failures >= MAX_CONSECUTIVE_FAILURES {
                    return Err(CliError::Other(format!(
                        "server unreachable for {consecutive_failures} consecutive polls"
                    )));
                }
            }
        }
        emitted += 1;
        if count > 0 && emitted >= count {
            break;
        }
        std::thread::sleep(interval);
    }
    if successes == 0 {
        return Err(CliError::Other("no stats sample succeeded".into()));
    }
    Ok(())
}

/// One plain watch line: rates, hit rate, tail latency, uptime; flags a
/// detected restart explicitly.
pub(crate) fn watch_line(frame: &WatchFrame) -> String {
    let s = &frame.sample;
    let mut line = format!(
        "req/s {:>8.1}  hit {:>5.1}%  rej/s {:>6.1}  p50 {:>6} us  p95 {:>6} us  p99 {:>6} us  \
         flush/s {:>5.1}  up {}",
        frame.req_per_s,
        frame.hit_rate * 100.0,
        frame.reject_per_s,
        s.latency_p50,
        s.latency_p95,
        s.latency_p99,
        frame.flushes_per_s,
        fmt_uptime(s.uptime_ms),
    );
    if frame.restarted {
        line.push_str("  [restart]");
    }
    line
}

fn fmt_uptime(uptime_ms: Option<u64>) -> String {
    match uptime_ms {
        None => "?".into(),
        Some(ms) => {
            let secs = ms / 1000;
            if secs >= 3600 {
                format!("{}h{:02}m", secs / 3600, (secs % 3600) / 60)
            } else if secs >= 60 {
                format!("{}m{:02}s", secs / 60, secs % 60)
            } else {
                format!("{}.{}s", secs, (ms % 1000) / 100)
            }
        }
    }
}

/// `--once` / `--json`: two samples a short beat apart (so rates have a
/// window), then one table or one JSON object.
fn run_once(
    addr: &str,
    poller: &mut StatsPoller,
    interval: Duration,
    json: bool,
) -> Result<(), CliError> {
    let mut tracker = RateTracker::new();
    let first = sample_with_retries(poller)?;
    tracker.observe(first);
    std::thread::sleep(interval.min(Duration::from_millis(250)));
    let second = sample_with_retries(poller)?;
    let frame = tracker.observe(second);
    if json {
        println!("{}", frame_json(addr, &frame));
    } else {
        print!("{}", frame_table(addr, &frame));
    }
    Ok(())
}

/// A few dials with backoff: `--once` in scripts/CI shouldn't flake on
/// a server that is still coming up.
fn sample_with_retries(poller: &mut StatsPoller) -> Result<fsmgen_serve::StatsSample, CliError> {
    let mut last_err = String::new();
    for attempt in 0..5 {
        match poller.sample() {
            Ok(sample) => return Ok(sample),
            Err(e) => {
                last_err = e;
                std::thread::sleep(Duration::from_millis(100 * (attempt + 1)));
            }
        }
    }
    Err(CliError::Other(format!("top: {last_err}")))
}

/// One machine-readable frame (`"kind": "top_frame"`, schema-versioned
/// like every other JSON document this workspace emits).
fn frame_json(addr: &str, frame: &WatchFrame) -> String {
    let s = &frame.sample;
    let opt = |v: Option<u64>| v.map_or("null".into(), |v| v.to_string());
    format!(
        "{{\"v\": {v}, \"kind\": \"top_frame\", \"addr\": {addr}, \
         \"req_per_s\": {req:.3}, \"reject_per_s\": {rej:.3}, \
         \"timeout_per_s\": {to:.3}, \"malformed_per_s\": {mal:.3}, \
         \"hit_rate\": {hit:.4}, \"window_secs\": {win:.3}, \
         \"latency_us\": {{\"count\": {lc}, \"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}}}, \
         \"store\": {{\"appends_per_s\": {aps:.3}, \"flushes_per_s\": {fps:.3}, \
         \"compactions\": {comp}}}, \
         \"requests_ok\": {ok}, \"conns_accepted\": {conns}, \
         \"uptime_ms\": {up}, \"seq\": {seq}, \"restarted\": {restarted}}}",
        v = fsmgen_obs::SCHEMA_VERSION,
        addr = json_string(addr),
        req = frame.req_per_s,
        rej = frame.reject_per_s,
        to = frame.timeout_per_s,
        mal = frame.malformed_per_s,
        hit = frame.hit_rate,
        win = frame.window_secs,
        lc = s.latency_count,
        p50 = s.latency_p50,
        p95 = s.latency_p95,
        p99 = s.latency_p99,
        aps = frame.appends_per_s,
        fps = frame.flushes_per_s,
        comp = frame.compactions,
        ok = s.requests_ok,
        conns = s.conns_accepted,
        up = opt(s.uptime_ms),
        seq = opt(s.seq),
        restarted = frame.restarted,
    )
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The single-shot (and TUI-body) table.
fn frame_table(addr: &str, frame: &WatchFrame) -> String {
    let s = &frame.sample;
    let mut out = String::new();
    out.push_str(&format!(
        "fsmgen top — {addr}   up {}   seq {}\n",
        fmt_uptime(s.uptime_ms),
        s.seq.map_or("?".into(), |v| v.to_string()),
    ));
    if frame.restarted {
        out.push_str("  ** server restarted — rates re-baselined **\n");
    }
    out.push_str(&format!(
        "  req/s      {:>10.1}    hit rate   {:>9.1}%\n",
        frame.req_per_s,
        frame.hit_rate * 100.0
    ));
    out.push_str(&format!(
        "  reject/s   {:>10.1}    timeout/s  {:>10.1}\n",
        frame.reject_per_s, frame.timeout_per_s
    ));
    out.push_str(&format!(
        "  malformed/s{:>10.1}    conns      {:>10}\n",
        frame.malformed_per_s, s.conns_accepted
    ));
    out.push_str(&format!(
        "  latency us  p50 {:>8}  p95 {:>8}  p99 {:>8}  ({} req)\n",
        s.latency_p50, s.latency_p95, s.latency_p99, s.latency_count
    ));
    out.push_str(&format!(
        "  store       appends/s {:>7.1}  flushes/s {:>7.1}  compactions {:>3}\n",
        frame.appends_per_s, frame.flushes_per_s, frame.compactions
    ));
    out
}

/// Braille-free block sparkline over the p95 history.
fn sparkline(values: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0).max(1);
    values
        .iter()
        .map(|&v| BARS[((v as f64 / max as f64) * 7.0).round() as usize])
        .collect()
}

/// The full-screen loop: clear, render, sleep. Exits only on sustained
/// unreachability; a restart shows a banner for one frame and the watch
/// continues against the new process.
fn run_tui(addr: &str, poller: &mut StatsPoller, interval: Duration) -> Result<(), CliError> {
    let mut tracker = RateTracker::new();
    let mut p95_history: Vec<u64> = Vec::new();
    let mut consecutive_failures = 0u32;
    loop {
        let body = match poller.sample() {
            Ok(sample) => {
                consecutive_failures = 0;
                let frame = tracker.observe(sample);
                p95_history.push(frame.sample.latency_p95);
                let len = p95_history.len();
                if len > 48 {
                    p95_history.drain(..len - 48);
                }
                format!(
                    "{}  p95 {}\n\n(interval {:.1}s — ctrl-c to quit)\n",
                    frame_table(addr, &frame),
                    sparkline(&p95_history),
                    interval.as_secs_f64()
                )
            }
            Err(e) => {
                consecutive_failures += 1;
                if consecutive_failures >= MAX_CONSECUTIVE_FAILURES {
                    return Err(CliError::Other(format!(
                        "server unreachable for {consecutive_failures} consecutive polls"
                    )));
                }
                format!("fsmgen top — {addr}\n\n  unreachable: {e}\n  retrying…\n")
            }
        };
        // \x1b[2J clears, \x1b[H homes the cursor.
        print!("\x1b[2J\x1b[H{body}");
        let _ = std::io::stdout().flush();
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmgen_serve::StatsSample;

    fn frame() -> WatchFrame {
        WatchFrame {
            sample: StatsSample {
                uptime_ms: Some(65_000),
                seq: Some(7),
                requests_ok: 42,
                latency_count: 42,
                latency_p50: 127,
                latency_p95: 511,
                latency_p99: 1023,
                ..StatsSample::default()
            },
            req_per_s: 10.5,
            hit_rate: 0.75,
            window_secs: 1.0,
            ..WatchFrame::default()
        }
    }

    #[test]
    fn watch_line_carries_rates_and_uptime() {
        let line = watch_line(&frame());
        assert!(line.contains("req/s"), "{line}");
        assert!(line.contains("10.5"), "{line}");
        assert!(line.contains("75.0%"), "{line}");
        assert!(line.contains("up 1m05s"), "{line}");
        assert!(!line.contains("[restart]"), "{line}");
        let mut restarted = frame();
        restarted.restarted = true;
        assert!(watch_line(&restarted).contains("[restart]"));
    }

    #[test]
    fn frame_json_is_valid_and_kinded() {
        let text = frame_json("127.0.0.1:9", &frame());
        let value = fsmgen_serve::json::parse(&text).expect("top frame must be valid JSON");
        use fsmgen_serve::json::Json;
        assert_eq!(value.get("v").and_then(Json::as_u64), Some(1));
        assert_eq!(value.get("kind").and_then(Json::as_str), Some("top_frame"));
        assert_eq!(value.get("uptime_ms").and_then(Json::as_u64), Some(65_000));
        assert_eq!(value.get("restarted").and_then(Json::as_bool), Some(false));
        assert!(value.get("req_per_s").and_then(Json::as_f64).unwrap() > 10.0);
        let lat = value.get("latency_us").expect("latency block");
        assert_eq!(lat.get("p95").and_then(Json::as_u64), Some(511));
    }

    #[test]
    fn frame_json_renders_absent_fields_as_null() {
        let mut old = frame();
        old.sample.uptime_ms = None;
        old.sample.seq = None;
        let text = frame_json("x:1", &old);
        assert!(text.contains("\"uptime_ms\": null"), "{text}");
        assert!(fsmgen_serve::json::parse(&text).is_ok());
    }

    #[test]
    fn sparkline_scales_to_max() {
        assert_eq!(sparkline(&[]), "");
        let line = sparkline(&[0, 50, 100]);
        assert_eq!(line.chars().count(), 3);
        assert!(line.ends_with('█'), "{line}");
        assert!(line.starts_with('▁'), "{line}");
    }

    #[test]
    fn uptime_formats_scale() {
        assert_eq!(fmt_uptime(None), "?");
        assert_eq!(fmt_uptime(Some(1500)), "1.5s");
        assert_eq!(fmt_uptime(Some(65_000)), "1m05s");
        assert_eq!(fmt_uptime(Some(3_700_000)), "1h01m");
    }
}
