//! Classified CLI failures and their process exit codes.
//!
//! | kind            | exit code | meaning                                 |
//! |-----------------|-----------|-----------------------------------------|
//! | [`CliError::Usage`]  | 2    | bad flags, unknown commands or formats  |
//! | [`CliError::Parse`]  | 3    | malformed trace / machine / input data  |
//! | [`CliError::Budget`] | 4    | design budget exceeded (degradation off)|
//! | [`CliError::Other`]  | 1    | everything else (I/O, failed claims, …) |

use std::fmt;

/// A CLI failure carrying its user-facing message and exit-code class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// The invocation itself is wrong: unknown command, bad flag value,
    /// missing required flag, unknown format. Exit code 2.
    Usage(String),
    /// Input data failed to parse: trace files, machine tables, bit
    /// strings. Exit code 3.
    Parse(String),
    /// The design budget was exceeded and degradation was disabled.
    /// Exit code 4.
    Budget(String),
    /// Any other failure (I/O, simulation, failed headline claims).
    /// Exit code 1.
    Other(String),
}

impl CliError {
    /// The process exit code this error maps to.
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Other(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Parse(_) => 3,
            CliError::Budget(_) => 4,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Parse(m) | CliError::Budget(m) | CliError::Other(m) => {
                f.write_str(m)
            }
        }
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Other(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_match_taxonomy() {
        assert_eq!(CliError::Other("x".into()).exit_code(), 1);
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        assert_eq!(CliError::Parse("x".into()).exit_code(), 3);
        assert_eq!(CliError::Budget("x".into()).exit_code(), 4);
    }

    #[test]
    fn display_is_the_message() {
        assert_eq!(CliError::Usage("bad flag".into()).to_string(), "bad flag");
    }
}
