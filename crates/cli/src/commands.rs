//! The CLI subcommands.
//!
//! Every command returns a classified [`CliError`], which `main` maps to a
//! distinct exit code: usage mistakes exit 2, unparsable input data exits
//! 3, budget exhaustion (with `--no-degrade`) exits 4, everything else 1.

use crate::args::Args;
use crate::error::CliError;
use fsmgen::{failpoints, DesignBudget, DesignError, Designer};
use fsmgen_bpred::{
    simulate as run_sim, BranchPredictor, Combining, CustomTrainer, Gshare, LocalGlobalChooser,
    Ppm, XScaleBtb,
};
use fsmgen_experiments::figures;
use fsmgen_farm::{
    read_design_file, CompactPolicy, DesignJob, DesignStore, EventSink, Farm, FarmConfig,
    FarmEvent, ObsBridgeSink, StderrSink, StoreConfig,
};
use fsmgen_synth::{synthesize_area, to_vhdl, Encoding, VhdlOptions};
use fsmgen_traces::BitTrace;
use fsmgen_workloads::{BranchBenchmark, Input, ValueBenchmark};
use std::io::Read as _;
use std::time::{Duration, Instant};

/// A flag-parsing failure is a usage error (exit 2).
fn usage(message: String) -> CliError {
    CliError::Usage(message)
}

/// Top-level usage text.
pub const USAGE: &str = "\
fsmgen — automated design of finite state machine predictors

USAGE:
  fsmgen design   [--history N] [--threshold P] [--dont-care F]
                  [--format summary|dot|vhdl|table]
                  [--budget-states N] [--budget-nfa-states N]
                  [--budget-minterms N] [--budget-primes N]
                  [--budget-cover-nodes N] [--budget-ms MILLIS]
                  [--profile] [--profile-json FILE] [--trace-jsonl FILE]
                  [--no-degrade] [--inject-fault SPEC] [FILE]
          Design a predictor from a 0/1 trace (FILE or stdin; whitespace
          is ignored, so '0000 1000 1011 ...' works as-is). The table
          format can be reloaded with 'fsmgen predict'.
          The --budget-* flags cap the design pipeline; when a stage
          exceeds its cap the designer degrades gracefully (heuristic
          minimizer, then shorter history, then a saturating counter)
          and reports what it did. With --no-degrade a blown budget is
          an error instead (exit code 4). --inject-fault arms test
          failpoints, e.g. 'minimize=budget:1,dfa=error'.
          --profile prints a per-stage wall/counter table (stdout with
          the summary format, stderr otherwise); --profile-json writes
          the same breakdown as JSON and --trace-jsonl writes the raw
          span/counter event stream, one JSON object per line.

  fsmgen predict  --machine FILE [TRACE_FILE]
          Load a machine table and replay it over a 0/1 trace (file or
          stdin), reporting prediction accuracy.

  fsmgen trace    --benchmark NAME [--kind branch|value|bits]
                  [--len N] [--input K]
          Dump a synthetic workload trace. Branch benchmarks: compress,
          gs, gsm, g721, ijpeg, vortex. Value benchmarks: groff, gcc,
          li, go, perl.

  fsmgen trace export [--format chrome|folded] [--in trace.jsonl]
                  [--out FILE] [--stage NAME] [--min-us N] [--strict]
          Convert an obs JSONL trace (from design/farm/serve/confidence
          --trace-jsonl) into Chrome trace_event JSON — load it at
          chrome://tracing or ui.perfetto.dev — or folded flamegraph
          stacks for inferno/speedscope. Streaming: memory stays bounded
          however large the trace. Corrupt or torn lines are skipped and
          counted in the stderr report (with --strict they fail the
          export, exit 3). --stage keeps only spans under the named
          stage; --min-us drops spans shorter than N microseconds. --in
          and --out default to stdin/stdout ('-' works too).

  fsmgen simulate {--benchmark NAME | --trace-file FILE} [--lenient]
                  [--len N] [--customs K] [--history N]
          Simulate XScale, gshare, LGC, PPM and the customized FSM
          architecture and print miss rates. With --trace-file the file
          (PC TAKEN [TARGET] per line) is split in half: customs train on
          the first half and every predictor is evaluated on the second.
          --lenient skips malformed trace lines (reported on stderr)
          instead of failing.

EXIT CODES:
  0 success, 1 general failure, 2 usage error, 3 input parse error,
  4 design budget exceeded (with --no-degrade).

  fsmgen compile  --patterns LIST [--format summary|dot|vhdl|table]
          Compile history patterns in the paper's notation (oldest bit
          first, 'x' = don't care, '|' or ',' separated; e.g.
          \"0x1x | 0xx1x\" is Figure 7) into a steady-state machine.

  fsmgen confidence --benchmark NAME [--len N] [--trace-jsonl FILE]
          Run one Figure 2 panel: SUD counter sweep vs cross-trained FSM
          confidence estimators on a value benchmark (groff, gcc, li,
          go, perl). --trace-jsonl streams the panel's design-pipeline
          spans for 'fsmgen trace export'.

  fsmgen headlines [--len N]
          Verify the paper's §6.4/§7.5 headline claims on the synthetic
          substrate and print holds/fails per claim.

  fsmgen figure   {1|6|7}
          Print one of the paper's example machines as Graphviz DOT.

  fsmgen farm     [--benchmarks LIST] [--histories LIST] [--len N]
                  [--repeat K] [--threshold P] [--dont-care F]
                  [--jobs N] [--cache-capacity N] [--metrics-json FILE]
                  [--cache-file FILE] [--dump-machines DIR]
                  [--trace-jsonl FILE] [--verbose] [--no-degrade]
                  [--inject-fault SPEC] [budget flags as for 'design']
          Design a whole fleet of predictors as one batch: one job per
          (benchmark, history, pass). Jobs run on --jobs worker threads
          behind a content-addressed design cache (--cache-capacity
          entries; repeated passes hit it). Prints one line per job plus
          the batch metrics; --metrics-json writes the structured
          summary (throughput, p50/p95 latency, cache hit rate,
          degradation rungs) to FILE. --benchmarks and --histories are
          comma-separated (defaults: all branch benchmarks, history 4).
          --trace-jsonl streams the farm lifecycle events and every
          worker's design-pipeline spans to FILE as JSONL, one schema.
          --inject-fault arms process-wide failpoints visible to the
          workers, e.g. 'farm-worker=error:1'. --cache-file persists the
          design cache across runs as a durable append-only store:
          recovered before the batch (torn tails truncated, corrupt
          records skipped, legacy snapshots migrated — never fatal) and
          appended to as jobs complete, so a second run is served warm
          and even a killed run keeps its flushed designs.
          --dump-machines writes each job's machine table into DIR for
          artifact diffing.

  fsmgen cache    {info|verify|gc|compact} --cache-file FILE [--keep N]
                  [--max-generations N]
          Inspect or maintain a persistent design store (or a legacy
          snapshot). 'info' prints the format, accounting, a per-record
          summary and a machine state-count summary (min/median/max
          states, u16 table spills); 'verify' fully decodes every
          record; both exit
          nonzero when any record is corrupt or a torn tail was
          detected, after printing the damage report. 'gc' compacts the
          store keeping only the N newest unique records (default 64).
          'compact' deduplicates in place, optionally bounded by --keep
          and dropping records older than --max-generations sessions.
          'gc' and 'compact' migrate a legacy snapshot to the log
          format.

  fsmgen serve    [--addr HOST:PORT] [--shards N] [--workers N]
                  [--cache-capacity N]
                  [--max-connections N] [--queue-limit N]
                  [--read-timeout-ms N] [--max-frame-bytes N]
                  [--retry-after-ms N] [--cache-file FILE]
                  [--flush-every N] [--flush-interval-ms N]
                  [--metrics-json FILE] [--trace-jsonl FILE]
                  [--inject-fault SPEC] [--redesign]
                  [--redesign-window N] [--redesign-threshold X]
                  [--redesign-hysteresis X] [--redesign-history N]
          Run the TCP design service: length-prefixed JSON requests in,
          designed machines out, all fronted by the same cache-aware
          farm as 'fsmgen farm'. Prints 'listening on HOST:PORT' once
          ready (default 127.0.0.1:0 = OS-assigned port). --cache-file
          is a durable store: recovered on start, appended to on every
          design (fsync'd every --flush-every appends or
          --flush-interval-ms, whichever first) and compacted on
          graceful shutdown — a killed server loses at most one flush
          interval. Stop it with a 'shutdown' protocol request ('fsmgen
          client --shutdown'); the server then drains in-flight
          requests, compacts the store and writes --metrics-json. The
          wire format is specified in DESIGN.md. --inject-fault arms
          process-wide failpoints, e.g. 'serve-conn=error:1'.
          --shards N runs the sharded event-driven architecture: N
          non-blocking event-loop threads, connections dealt round-robin,
          the design cache partitioned per shard by trace fingerprint
          (one shared durable log), pipelined frames answered in request
          order. 0 (the default) keeps the thread-per-connection
          architecture. Both speak JSON v1 and, negotiated per
          connection by an 'FSMB' preamble, the compact binary v2 codec.
          --redesign enables the live predictor: clients stream outcome
          bits ('predict_request' frames), a windowed monitor watches the
          hit rate, and when it collapses below --redesign-threshold the
          server redesigns on the fresh window and hot-swaps the machine
          without dropping in-flight requests. The knob flags imply
          --redesign.

  fsmgen scenario {run|hunt} [--seed N] [--machine FILE]
                  [--train-benchmark NAME] [--train-len N] [--history N]
                  [--backend compiled|interpreted]
          Seeded adversarial scenario engine: deterministic streams of
          phase changes, drift, bursts and biased/periodic regimes, all
          a pure function of one seed, dueling a designed machine
          against the 2-bit-counter fallback. The machine comes from
          --machine (a table file, as 'design --format table' writes) or
          is designed fresh from --train-benchmark (default gsm).

          run   [--plan FILE] [--sample-every N] [--doublecheck]
                [--emit-plan FILE]
          Replay one plan (--plan JSON, else seeded from --seed) and
          print the deterministic JSONL event log: segment entries,
          periodic samples, final report. --doublecheck runs the plan
          twice and fails on the first diverging line — the determinism
          contract. --emit-plan writes the plan JSON for later replay.

          hunt  [--rounds N] [--restarts N] [--max-len N]
                [--target-gap X] [--out FILE]
          Mutate plans (seeded hill-climb over segment boundaries, bias
          knobs and regime mixes) hunting for a stream where the
          designed machine underperforms the counter; the winning plan
          is minimized (segments dropped, lengths halved) and printed as
          a hunt_report JSON, reproducible bit-identically from the
          printed seed. Exits nonzero when no losing plan was found.

  fsmgen client   --addr HOST:PORT [--ping | --stats | --shutdown]
                  [--history N] [--threshold P] [--dont-care F]
                  [--format summary|table] [--batch FILE]
                  [--codec json|binary] [--timeout-ms N] [TRACE_FILE]
          Talk to a running design service. Default: send one design
          request (trace from TRACE_FILE or stdin, as for 'design') and
          print the result; --format table prints the machine table,
          reloadable with 'fsmgen predict'. --batch FILE sends one
          request per line ('HISTORY BITS...', '#' comments allowed)
          over a single connection. --ping, --stats and --shutdown send
          the corresponding control requests instead. --stats --watch S
          re-polls every S seconds and prints one rate line per sample
          (same computation as 'fsmgen top'; --samples N stops after N).
          --codec binary speaks the compact binary v2 wire codec
          (negotiated by preamble; the payloads are byte-identical to
          JSON v1, just framed smaller).

  fsmgen loadgen  --addr HOST:PORT [--connections N] [--requests N]
                  [--pipeline N] [--seed N] [--codec json|binary]
                  [--workers N] [--distinct-traces N] [--history N]
                  [--rate R] [--deadline-ms N] [--json]
          Drive a seeded client swarm at a running design service:
          --connections pipelined connections multiplexed across
          --workers threads, each issuing --requests requests drawn from
          a design-heavy mix over a --distinct-traces trace pool.
          Closed-loop by default (each connection keeps --pipeline
          requests in flight); --rate R switches to open-loop injection
          at R req/s across the swarm. The workload is a pure function
          of --seed. Prints a human summary plus the loadgen_report
          JSON (--json prints only the JSON), with sustained req/s and
          p50/p95/p99 latency. Exits nonzero if any connection failed
          to connect, aborted, or saw a failed response.

  fsmgen top      HOST:PORT [--interval-ms N] [--timeout-ms N]
                  [--once] [--json] [--count N]
          Live dashboard for a running design service: polls the stats
          endpoint every --interval-ms (default 1000) and shows req/s,
          cache hit rate, rejection/timeout rates, latency p50/p95/p99
          with a p95 sparkline, store flush/compaction activity and
          uptime. Tolerates server restarts mid-watch (counters that
          rewind re-baseline and the frame is marked). On a TTY this is
          a full-screen ANSI view; when stdout is redirected it degrades
          to plain per-sample lines (--count N frames, default one
          two-sample table). --once prints a single table and exits;
          --json prints one machine-readable frame instead.";

fn branch_benchmark(name: &str) -> Result<BranchBenchmark, CliError> {
    BranchBenchmark::ALL
        .into_iter()
        .find(|b| b.name() == name)
        .ok_or_else(|| CliError::Usage(format!("unknown branch benchmark {name:?}")))
}

/// Reads the first positional argument as a file, or stdin when absent.
fn read_input(args: &Args) -> Result<String, CliError> {
    match args.positional().first() {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| CliError::Other(format!("cannot read {path}: {e}"))),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| CliError::Other(format!("cannot read stdin: {e}")))?;
            Ok(buf)
        }
    }
}

/// Assembles a [`DesignBudget`] from the `--budget-*` flags.
fn budget_from_flags(args: &Args) -> Result<DesignBudget, CliError> {
    Ok(DesignBudget {
        max_dfa_states: args.flag_opt("budget-states").map_err(usage)?,
        max_nfa_states: args.flag_opt("budget-nfa-states").map_err(usage)?,
        max_minterms: args.flag_opt("budget-minterms").map_err(usage)?,
        max_primes: args.flag_opt("budget-primes").map_err(usage)?,
        max_cover_nodes: args.flag_opt("budget-cover-nodes").map_err(usage)?,
        deadline: args
            .flag_opt::<u64>("budget-ms")
            .map_err(usage)?
            .map(|ms| Instant::now() + Duration::from_millis(ms)),
    })
}

/// `fsmgen design`: trace in, designed machine out.
///
/// # Errors
///
/// Returns a classified error: usage for bad flags, parse for a bad
/// trace, budget when `--no-degrade` is set and a cap is exceeded.
pub fn design(args: &Args) -> Result<(), CliError> {
    let history: usize = args.flag_or("history", 4).map_err(usage)?;
    let threshold: f64 = args.flag_or("threshold", 0.5).map_err(usage)?;
    let dont_care: f64 = args.flag_or("dont-care", 0.01).map_err(usage)?;
    let format = args.flag("format").unwrap_or("summary");
    if history == 0 || history > fsmgen::MAX_ORDER {
        return Err(CliError::Usage(format!(
            "--history must be in 1..={}, got {history}",
            fsmgen::MAX_ORDER
        )));
    }
    let budget = budget_from_flags(args)?;
    if let Some(spec) = args.flag("inject-fault") {
        failpoints::configure_from_spec(spec).map_err(usage)?;
    }

    let raw = read_input(args)?;
    let trace: BitTrace = raw
        .parse()
        .map_err(|e| CliError::Parse(format!("bad trace: {e}")))?;

    // Observability: any of the three flags records the pipeline's span
    // and counter events for this design; otherwise the recorder stays on
    // its disabled fast path. --trace-jsonl streams through a stamped
    // JSONL sink (ts_us/tid per line, flushed at every root-span close)
    // so the file is exportable with 'fsmgen trace export' and survives
    // a crash mid-run.
    let observing = args.has("profile")
        || args.flag("profile-json").is_some()
        || args.flag("trace-jsonl").is_some();
    let jsonl_sink = match args.flag("trace-jsonl") {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| CliError::Other(format!("cannot create {path}: {e}")))?;
            Some(std::sync::Arc::new(fsmgen_obs::JsonlObsSink::new(
                std::io::BufWriter::new(file),
            )))
        }
        None => None,
    };
    let jsonl_guard = jsonl_sink
        .clone()
        .map(|sink| fsmgen_obs::install(sink as std::sync::Arc<dyn fsmgen_obs::ObsSink>));
    let (result, events) = if observing {
        fsmgen_obs::profiled_events(|| {
            Designer::new(history)
                .prob_threshold(threshold)
                .dont_care_fraction(dont_care)
                .budget(budget)
                .degrade(!args.has("no-degrade"))
                .design_from_trace(&trace)
        })
    } else {
        let result = Designer::new(history)
            .prob_threshold(threshold)
            .dont_care_fraction(dont_care)
            .budget(budget)
            .degrade(!args.has("no-degrade"))
            .design_from_trace(&trace);
        (result, Vec::new())
    };
    drop(jsonl_guard);
    failpoints::clear();
    if let Some(sink) = jsonl_sink {
        sink.flush();
        if let Some(path) = args.flag("trace-jsonl") {
            eprintln!("design: trace events written to {path}");
        }
    }
    if let Some(path) = args.flag("profile-json") {
        let profile = fsmgen_obs::PipelineProfile::from_events(&events);
        std::fs::write(path, profile.to_json())
            .map_err(|e| CliError::Other(format!("cannot write {path}: {e}")))?;
        eprintln!("design: profile written to {path}");
    }
    let design = result.map_err(|e| match e {
        DesignError::BudgetExceeded { .. } => CliError::Budget(e.to_string()),
        DesignError::TraceTooShort { .. } | DesignError::EmptyModel => {
            CliError::Parse(e.to_string())
        }
        DesignError::BadConfig(_) | DesignError::OrderTooLarge { .. } => {
            CliError::Usage(e.to_string())
        }
        other => CliError::Other(other.to_string()),
    })?;

    // Machine-readable formats keep stdout clean; the degradation report
    // still reaches the user on stderr.
    if design.degradation().is_degraded() && format != "summary" {
        eprintln!("warning: design degraded: {}", design.degradation());
    }

    match format {
        "summary" => {
            println!(
                "trace: {} bits ({:.1}% ones)",
                trace.len(),
                100.0 * trace.ones_fraction()
            );
            println!("history: {history}, threshold: {threshold}, dont-care: {dont_care}");
            println!(
                "markov histories observed: {}",
                design.model().observed_histories()
            );
            println!("cover: {}", design.cover());
            match design.regex() {
                Some(re) => println!("regex: {re}"),
                None => println!("regex: (empty language, constant predict-0)"),
            }
            println!(
                "states: {} (was {} before start-state reduction)",
                design.fsm().num_states(),
                design.pre_reduction_states()
            );
            if design.degradation().is_degraded() {
                println!("degraded: {}", design.degradation());
                println!(
                    "effective history: {} (requested {history})",
                    design.effective_history()
                );
            }
            let est = synthesize_area(design.fsm(), Encoding::Binary);
            println!(
                "area: {:.0} gate-equivalents ({} flip-flops, {:.0} logic gates)",
                est.area, est.flip_flops, est.logic_gates
            );
        }
        "dot" => print!("{}", design.fsm().to_dot("predictor")),
        "vhdl" => print!("{}", to_vhdl(design.fsm(), &VhdlOptions::default())),
        "table" => print!("{}", fsmgen_automata::machine_to_table(design.fsm())),
        other => {
            return Err(CliError::Usage(format!(
                "unknown format {other:?} (summary|dot|vhdl|table)"
            )))
        }
    }
    if args.has("profile") {
        let profile = fsmgen_obs::PipelineProfile::from_events(&events);
        // Machine-readable formats keep stdout clean: the table goes to
        // stderr unless the human-facing summary is already on stdout.
        if format == "summary" {
            print!("{}", profile.to_text());
        } else {
            eprint!("{}", profile.to_text());
        }
    }
    Ok(())
}

/// `fsmgen trace`: dump a synthetic workload, or — with the `export`
/// subcommand — convert an obs JSONL trace to a visualization format.
///
/// # Errors
///
/// Returns a usage error for unknown benchmarks or invalid flags.
pub fn trace(args: &Args) -> Result<(), CliError> {
    if args.positional().first().map(String::as_str) == Some("export") {
        return trace_export(args);
    }
    let name = args
        .flag("benchmark")
        .ok_or_else(|| CliError::Usage("--benchmark is required".into()))?;
    let len: usize = args.flag_or("len", 10_000).map_err(usage)?;
    let input = Input(args.flag_or("input", 1u64).map_err(usage)?);
    let kind = args.flag("kind").unwrap_or("branch");

    match kind {
        "branch" => {
            let t = branch_benchmark(name)?.trace(input, len);
            for e in &t {
                println!("{:#x} {} {:#x}", e.pc, u8::from(e.taken), e.target);
            }
        }
        "bits" => {
            let t = branch_benchmark(name)?.trace(input, len);
            let bits: BitTrace = t.iter().map(|e| e.taken).collect();
            println!("{bits}");
        }
        "value" => {
            let bench = ValueBenchmark::ALL
                .into_iter()
                .find(|b| b.name() == name)
                .ok_or_else(|| CliError::Usage(format!("unknown value benchmark {name:?}")))?;
            for e in &bench.trace(input, len) {
                println!("{:#x} {:#x}", e.pc, e.value);
            }
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown kind {other:?} (branch|value|bits)"
            )))
        }
    }
    Ok(())
}

/// `fsmgen trace export`: stream an obs JSONL trace into Chrome
/// `trace_event` JSON (chrome://tracing / Perfetto) or folded
/// flamegraph stacks (inferno / speedscope).
///
/// # Errors
///
/// Usage errors for bad flags; a parse error (exit 3) in `--strict`
/// mode when the input has a corrupt or torn line; otherwise damage is
/// skipped and counted in the report printed to stderr.
fn trace_export(args: &Args) -> Result<(), CliError> {
    use fsmgen_obs::trace::{export, ExportFormat, ExportOptions};
    let format = match args.flag("format").unwrap_or("chrome") {
        "chrome" => ExportFormat::Chrome,
        "folded" => ExportFormat::Folded,
        other => {
            return Err(CliError::Usage(format!(
                "trace export: unknown format {other:?} (chrome|folded)"
            )))
        }
    };
    let options = ExportOptions {
        strict: args.has("strict"),
        stage: args.flag("stage").map(str::to_string),
        min_us: args.flag_or("min-us", 0u64).map_err(usage)?,
    };
    let report = {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let mut input: Box<dyn std::io::BufRead> = match args.flag("in") {
            Some("-") | None => Box::new(stdin.lock()),
            Some(path) => Box::new(std::io::BufReader::new(
                std::fs::File::open(path)
                    .map_err(|e| CliError::Other(format!("cannot open {path}: {e}")))?,
            )),
        };
        let mut out: Box<dyn std::io::Write> = match args.flag("out") {
            Some("-") | None => Box::new(stdout.lock()),
            Some(path) => Box::new(std::io::BufWriter::new(
                std::fs::File::create(path)
                    .map_err(|e| CliError::Other(format!("cannot create {path}: {e}")))?,
            )),
        };
        export(format, &mut input, &mut out, &options).map_err(|e| match e {
            fsmgen_obs::ExportError::Corrupt { .. } => CliError::Parse(e.to_string()),
            fsmgen_obs::ExportError::Io(err) => CliError::Other(format!("trace export: {err}")),
        })?
    };
    eprintln!("trace export: {report}");
    Ok(())
}

/// `fsmgen simulate`: predictor comparison on one benchmark.
///
/// # Errors
///
/// Returns a usage error for unknown benchmarks or invalid flags, a
/// parse error for a malformed trace file (unless `--lenient`).
pub fn simulate(args: &Args) -> Result<(), CliError> {
    let len: usize = args.flag_or("len", 40_000).map_err(usage)?;
    let customs: usize = args.flag_or("customs", 4).map_err(usage)?;
    let history: usize = args.flag_or("history", 9).map_err(usage)?;

    let (train, eval) = match (args.flag("benchmark"), args.flag("trace-file")) {
        (Some(name), None) => {
            let bench = branch_benchmark(name)?;
            (
                bench.trace(Input::TRAIN, len),
                bench.trace(Input::EVAL, len),
            )
        }
        (None, Some(path)) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Other(format!("cannot read {path}: {e}")))?;
            let full = if args.has("lenient") {
                let (t, report) = fsmgen_traces::parse_branch_trace_lenient(&text);
                if !report.is_clean() {
                    eprintln!("warning: {path}: {report}");
                }
                t
            } else {
                fsmgen_traces::parse_branch_trace(&text)
                    .map_err(|e| CliError::Parse(format!("{path}: {e}")))?
            };
            if full.len() < 4 {
                return Err(CliError::Parse("trace file needs at least 4 events".into()));
            }
            let mid = full.len() / 2;
            let train: fsmgen_traces::BranchTrace = full.events()[..mid].iter().copied().collect();
            let eval: fsmgen_traces::BranchTrace = full.events()[mid..].iter().copied().collect();
            (train, eval)
        }
        _ => {
            return Err(CliError::Usage(
                "exactly one of --benchmark or --trace-file is required".into(),
            ))
        }
    };

    println!(
        "{:<20} {:>12} {:>10}",
        "predictor", "table bits", "miss rate"
    );
    let row = |p: &mut dyn BranchPredictor| {
        let r = run_sim(p, &eval);
        println!(
            "{:<20} {:>12} {:>9.2}%",
            p.describe(),
            p.storage_bits(),
            100.0 * r.miss_rate()
        );
    };
    row(&mut XScaleBtb::xscale());
    row(&mut Gshare::new(4096));
    row(&mut Combining::new(1024, 4096, 1024));
    row(&mut LocalGlobalChooser::new(512, 10, 4096));
    row(&mut Ppm::new(8));

    let designs = CustomTrainer::new(history).train(&train, customs);
    let mut arch = designs.architecture(customs);
    let r = run_sim(&mut arch, &eval);
    println!(
        "{:<20} {:>12} {:>9.2}%  ({} FSM states total)",
        arch.describe(),
        arch.storage_bits(),
        100.0 * r.miss_rate(),
        arch.total_custom_states()
    );
    Ok(())
}

/// `fsmgen compile`: patterns in paper notation -> machine.
///
/// # Errors
///
/// Returns a parse error for malformed pattern lists, usage for unknown
/// formats.
pub fn compile(args: &Args) -> Result<(), CliError> {
    let list = args
        .flag("patterns")
        .ok_or_else(|| CliError::Usage("--patterns is required".into()))?;
    let patterns =
        fsmgen_automata::parse_pattern_list(list).map_err(|e| CliError::Parse(e.to_string()))?;
    let fsm = fsmgen_automata::compile_patterns(&patterns);
    match args.flag("format").unwrap_or("summary") {
        "summary" => {
            println!("patterns: {list}");
            println!("states: {}", fsm.num_states());
            let est = synthesize_area(&fsm, Encoding::Binary);
            println!(
                "area: {:.0} gate-equivalents ({} flip-flops, {:.0} logic gates)",
                est.area, est.flip_flops, est.logic_gates
            );
        }
        "dot" => print!("{}", fsm.to_dot("pattern_fsm")),
        "vhdl" => print!("{}", to_vhdl(&fsm, &VhdlOptions::default())),
        "table" => print!("{}", fsmgen_automata::machine_to_table(&fsm)),
        other => {
            return Err(CliError::Usage(format!(
                "unknown format {other:?} (summary|dot|vhdl|table)"
            )))
        }
    }
    Ok(())
}

/// `fsmgen predict`: replay a saved machine over a trace.
///
/// # Errors
///
/// Returns a parse error for malformed machines or traces, other for
/// unreadable files.
pub fn predict(args: &Args) -> Result<(), CliError> {
    let machine_path = args
        .flag("machine")
        .ok_or_else(|| CliError::Usage("--machine is required".into()))?;
    let machine_text = std::fs::read_to_string(machine_path)
        .map_err(|e| CliError::Other(format!("cannot read {machine_path}: {e}")))?;
    let machine = fsmgen_automata::machine_from_table(&machine_text)
        .map_err(|e| CliError::Parse(e.to_string()))?;

    let raw = read_input(args)?;
    let trace: BitTrace = raw
        .parse()
        .map_err(|e| CliError::Parse(format!("bad trace: {e}")))?;
    if trace.is_empty() {
        return Err(CliError::Parse("trace is empty".into()));
    }

    let mut p = fsmgen_automata::MoorePredictor::new(machine);
    let mut correct = 0usize;
    for bit in &trace {
        if p.predict() == bit {
            correct += 1;
        }
        p.update(bit);
    }
    println!(
        "{} states, {} bits, {}/{} correct ({:.2}%)",
        p.num_states(),
        trace.len(),
        correct,
        trace.len(),
        100.0 * correct as f64 / trace.len() as f64
    );
    Ok(())
}

/// `fsmgen confidence`: one Figure 2 panel.
///
/// # Errors
///
/// Returns a usage error for unknown benchmarks or invalid flags.
pub fn confidence(args: &Args) -> Result<(), CliError> {
    let name = args
        .flag("benchmark")
        .ok_or_else(|| CliError::Usage("--benchmark is required".into()))?;
    let bench = ValueBenchmark::ALL
        .into_iter()
        .find(|b| b.name() == name)
        .ok_or_else(|| CliError::Usage(format!("unknown value benchmark {name:?}")))?;
    let len: usize = args.flag_or("len", 40_000).map_err(usage)?;
    let config = fsmgen_experiments::fig2::Fig2Config {
        trace_len: len,
        ..fsmgen_experiments::fig2::Fig2Config::default()
    };
    // --trace-jsonl streams the whole panel's design-pipeline spans
    // (including farm worker threads) for 'fsmgen trace export'.
    let panel = match args.flag("trace-jsonl") {
        Some(path) => {
            let panel =
                fsmgen_experiments::profiling::with_trace_jsonl(std::path::Path::new(path), || {
                    fsmgen_experiments::fig2::run_panel(bench, &config)
                })
                .map_err(|e| CliError::Other(format!("cannot create {path}: {e}")))?;
            eprintln!("confidence: trace events written to {path}");
            panel
        }
        None => fsmgen_experiments::fig2::run_panel(bench, &config),
    };
    print!("{}", fsmgen_experiments::report::fig2_table(&panel));
    Ok(())
}

/// `fsmgen headlines`: verify the paper's headline claims.
///
/// # Errors
///
/// Returns a general error when any claim fails (exit status reflects it)
/// or a usage error for an invalid flag.
pub fn headlines(args: &Args) -> Result<(), CliError> {
    let len: usize = args.flag_or("len", 40_000).map_err(usage)?;
    let claims =
        fsmgen_experiments::headlines::run(&fsmgen_experiments::headlines::HeadlineConfig {
            trace_len: len,
        });
    print!("{}", fsmgen_experiments::headlines::table(&claims));
    let failed = claims.iter().filter(|c| !c.holds).count();
    if failed > 0 {
        return Err(CliError::Other(format!(
            "{failed} headline claim(s) do not hold at this scale"
        )));
    }
    Ok(())
}

/// `fsmgen figure`: print a paper figure's machine.
///
/// # Errors
///
/// Returns a usage error when the figure id is not 1, 6 or 7.
pub fn figure(args: &Args) -> Result<(), CliError> {
    match args.positional().first().map(String::as_str) {
        Some("1") => {
            let design = figures::figure1();
            println!(
                "-- with start-up states ({}):",
                design.pre_reduction_states()
            );
            print!("{}", design.minimized_with_startup().to_dot("fig1_startup"));
            println!(
                "-- after start state removal ({}):",
                design.fsm().num_states()
            );
            print!("{}", design.fsm().to_dot("fig1_steady"));
            Ok(())
        }
        Some("6") => {
            print!("{}", figures::figure6().to_dot("fig6"));
            Ok(())
        }
        Some("7") => {
            print!("{}", figures::figure7().to_dot("fig7"));
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "expected figure 1, 6 or 7, got {other:?}"
        ))),
    }
}

/// Fans farm events out to several sinks (`--verbose` plus
/// `--trace-jsonl` at the same time).
struct TeeSink(Vec<std::sync::Arc<dyn EventSink>>);

impl EventSink for TeeSink {
    fn record(&self, event: &FarmEvent) {
        for sink in &self.0 {
            sink.record(event);
        }
    }
}

/// Parses a comma-separated list flag, with a default when absent.
fn comma_list(args: &Args, name: &str, default: &str) -> Vec<String> {
    args.flag(name)
        .unwrap_or(default)
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// `fsmgen farm`: batch-design a fleet of predictors on worker threads
/// behind the content-addressed design cache.
///
/// # Errors
///
/// Returns a usage error for bad flags or unknown benchmarks, other when
/// any job in the batch failed (the rest still complete and are printed).
pub fn farm(args: &Args) -> Result<(), CliError> {
    let len: usize = args.flag_or("len", 20_000).map_err(usage)?;
    let repeat: usize = args.flag_or("repeat", 1).map_err(usage)?;
    let jobs_workers: usize = args.flag_or("jobs", 4).map_err(usage)?;
    let cache_capacity: usize = args.flag_or("cache-capacity", 256).map_err(usage)?;
    let threshold: f64 = args.flag_or("threshold", 0.5).map_err(usage)?;
    let dont_care: f64 = args.flag_or("dont-care", 0.01).map_err(usage)?;
    let budget = budget_from_flags(args)?;
    if repeat == 0 {
        return Err(CliError::Usage("--repeat must be at least 1".into()));
    }

    let histories: Vec<usize> = comma_list(args, "histories", "4")
        .iter()
        .map(|h| h.parse::<usize>().map_err(|e| format!("--histories: {e}")))
        .collect::<Result<_, _>>()
        .map_err(usage)?;
    for &h in &histories {
        if h == 0 || h > fsmgen::MAX_ORDER {
            return Err(CliError::Usage(format!(
                "--histories entries must be in 1..={}, got {h}",
                fsmgen::MAX_ORDER
            )));
        }
    }
    let benches: Vec<BranchBenchmark> = match args.flag("benchmarks") {
        None => BranchBenchmark::ALL.to_vec(),
        Some(_) => comma_list(args, "benchmarks", "")
            .iter()
            .map(|n| branch_benchmark(n))
            .collect::<Result<_, _>>()?,
    };
    if benches.is_empty() {
        return Err(CliError::Usage("--benchmarks list is empty".into()));
    }

    // Worker threads can't see thread-local failpoints; arm process-wide.
    if let Some(spec) = args.flag("inject-fault") {
        failpoints::configure_from_spec_global(spec).map_err(usage)?;
    }

    // One job per (pass, benchmark, history). The trace for a benchmark
    // is built once and shared; repeated passes model fleet re-runs and
    // are where the design cache earns its keep.
    let traces: Vec<std::sync::Arc<BitTrace>> = benches
        .iter()
        .map(|b| {
            std::sync::Arc::new(
                b.trace(Input::TRAIN, len)
                    .iter()
                    .map(|e| e.taken)
                    .collect::<BitTrace>(),
            )
        })
        .collect();
    let mut jobs = Vec::new();
    let mut labels = Vec::new();
    for pass in 0..repeat {
        for (bench, trace) in benches.iter().zip(&traces) {
            for &history in &histories {
                let designer = Designer::new(history)
                    .prob_threshold(threshold)
                    .dont_care_fraction(dont_care)
                    .budget(budget)
                    .degrade(!args.has("no-degrade"));
                jobs.push(DesignJob::from_trace(
                    jobs.len() as u64,
                    std::sync::Arc::clone(trace),
                    designer,
                ));
                labels.push(format!("{}/H{history} pass {pass}", bench.name()));
            }
        }
    }

    let config = FarmConfig {
        workers: jobs_workers.max(1),
        cache_capacity,
    };
    // Observability: --trace-jsonl streams both the farm's own lifecycle
    // events (bridged onto the obs schema) and every worker thread's
    // design-pipeline spans into one JSONL file. The pipeline spans need
    // the process-wide sink because jobs run on worker threads.
    let jsonl_sink: Option<
        std::sync::Arc<fsmgen_obs::JsonlObsSink<std::io::BufWriter<std::fs::File>>>,
    > = match args.flag("trace-jsonl") {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| CliError::Other(format!("cannot create {path}: {e}")))?;
            Some(std::sync::Arc::new(fsmgen_obs::JsonlObsSink::new(
                std::io::BufWriter::new(file),
            )))
        }
        None => None,
    };
    let obs_sink: Option<std::sync::Arc<dyn fsmgen_obs::ObsSink>> = jsonl_sink
        .clone()
        .map(|sink| sink as std::sync::Arc<dyn fsmgen_obs::ObsSink>);
    let mut sinks: Vec<std::sync::Arc<dyn EventSink>> = Vec::new();
    if args.has("verbose") {
        sinks.push(std::sync::Arc::new(StderrSink));
    }
    if let Some(sink) = &obs_sink {
        fsmgen_obs::install_global(std::sync::Arc::clone(sink));
        sinks.push(std::sync::Arc::new(ObsBridgeSink::new(
            std::sync::Arc::clone(sink),
        )));
    }
    let farm = match sinks.len() {
        0 => Farm::new(config),
        1 => Farm::with_sink(config, sinks.remove(0)),
        _ => Farm::with_sink(config, std::sync::Arc::new(TeeSink(sinks))),
    };
    // Warm start: attach the durable store, replaying its log into the
    // cache. Damage (torn tails, corrupt records) is never fatal — the
    // farm just starts (partially) cold; a store that cannot be opened
    // at all (e.g. a foreign file) leaves the run un-persisted.
    let cache_file = args.flag("cache-file").map(std::path::PathBuf::from);
    if let Some(path) = &cache_file {
        match farm.attach_store(path, StoreConfig::default()) {
            Ok(stats) => eprintln!(
                "farm: cache store {}: {} recovered, {} migrated, {} skipped, {} torn tail(s) truncated",
                path.display(),
                stats.recovered,
                stats.migrated,
                stats.skipped,
                stats.truncated
            ),
            Err(e) => eprintln!(
                "farm: ignoring cache store {}: {e} (starting cold, not persisting)",
                path.display()
            ),
        }
    }
    let report = farm.design_batch(jobs);
    if let Some(path) = &cache_file {
        match farm.flush_store() {
            Ok(()) => eprintln!("farm: cache store {} flushed", path.display()),
            Err(e) => eprintln!("farm: could not flush cache store {}: {e}", path.display()),
        }
    }
    failpoints::clear_global();
    if let Some(sink) = &jsonl_sink {
        fsmgen_obs::clear_global();
        sink.flush();
        if let Some(path) = args.flag("trace-jsonl") {
            eprintln!("farm: trace events written to {path}");
        }
    }

    println!(
        "{:<24} {:>7} {:>7} {:>10}  status",
        "job", "states", "cached", "wall ms"
    );
    let mut failed = 0usize;
    for (outcome, label) in report.outcomes.iter().zip(&labels) {
        match &outcome.result {
            Ok(design) => println!(
                "{:<24} {:>7} {:>7} {:>10.2}  {}",
                label,
                design.fsm().num_states(),
                if outcome.cache_hit { "hit" } else { "-" },
                outcome.wall.as_secs_f64() * 1e3,
                if design.degradation().is_degraded() {
                    format!("degraded: {}", design.degradation())
                } else {
                    "ok".into()
                }
            ),
            Err(e) => {
                failed += 1;
                println!(
                    "{:<24} {:>7} {:>7} {:>10.2}  FAILED: {e}",
                    label,
                    "-",
                    "-",
                    outcome.wall.as_secs_f64() * 1e3
                );
            }
        }
    }
    println!("{}", report.metrics);

    if let Some(path) = args.flag("metrics-json") {
        std::fs::write(path, report.metrics.to_json())
            .map_err(|e| CliError::Other(format!("cannot write {path}: {e}")))?;
        eprintln!("farm: metrics written to {path}");
    }
    if let Some(dir) = args.flag("dump-machines") {
        let dir = std::path::Path::new(dir);
        std::fs::create_dir_all(dir)
            .map_err(|e| CliError::Other(format!("cannot create {}: {e}", dir.display())))?;
        for (outcome, label) in report.outcomes.iter().zip(&labels) {
            if let Ok(design) = &outcome.result {
                let name = format!("{}.table", label.replace(['/', ' '], "_"));
                std::fs::write(
                    dir.join(&name),
                    fsmgen_automata::machine_to_table(design.fsm()),
                )
                .map_err(|e| CliError::Other(format!("cannot write {name}: {e}")))?;
            }
        }
        eprintln!("farm: machine tables written to {}", dir.display());
    }
    if failed > 0 {
        return Err(CliError::Other(format!("{failed} job(s) failed")));
    }
    Ok(())
}

/// `fsmgen cache`: inspect, verify or compact a persistent design store
/// written by `fsmgen farm --cache-file` (or a legacy snapshot, which
/// the mutating actions migrate to the log format).
///
/// # Errors
///
/// Returns a usage error for a missing action or `--cache-file`, other
/// when the file is unreadable — or, for `info` and `verify`, when any
/// record is corrupt or a torn tail was detected (reported first, then
/// a nonzero exit; never a panic, never a silent success).
pub fn cache(args: &Args) -> Result<(), CliError> {
    let Some(action) = args.positional().first() else {
        return Err(CliError::Usage(
            "cache: expected an action: info, verify, gc or compact".into(),
        ));
    };
    let path = args
        .flag("cache-file")
        .ok_or_else(|| CliError::Usage("cache: --cache-file FILE is required".into()))?;
    let path = std::path::Path::new(path);
    let store_error =
        |e: fsmgen_farm::StoreError| CliError::Other(format!("cache: {}: {e}", path.display()));
    // Damage report shared by `info` and `verify`: nonzero exit whenever
    // any record failed to decode or a torn tail was found.
    let damage = |decoded: &fsmgen_farm::DecodedStore| -> Result<(), CliError> {
        if decoded.skipped > 0 || decoded.truncated > 0 {
            return Err(CliError::Other(format!(
                "cache: {}: {} corrupt record(s) skipped, {} torn tail(s) ({} valid)",
                path.display(),
                decoded.skipped,
                decoded.truncated,
                decoded.records.len()
            )));
        }
        Ok(())
    };
    match action.as_str() {
        "info" => {
            let size = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            let decoded = read_design_file(path).map_err(store_error)?;
            println!("store {} ({})", path.display(), decoded.format);
            println!(
                "  {size} bytes, {} record(s) decoded, {} corrupt skipped, {} torn tail(s)",
                decoded.records.len(),
                decoded.skipped,
                decoded.truncated
            );
            for (i, rec) in decoded.records.iter().enumerate() {
                println!(
                    "  [{i:>3}] fp {:016x}  gen {:>3}  {} states, history {}, {}",
                    rec.fingerprint,
                    rec.generation,
                    rec.design.fsm().num_states(),
                    rec.design.effective_history(),
                    if rec.design.degradation().is_degraded() {
                        "degraded"
                    } else {
                        "ok"
                    }
                );
            }
            if !decoded.records.is_empty() {
                let mut states: Vec<usize> = decoded
                    .records
                    .iter()
                    .map(|rec| rec.design.fsm().num_states())
                    .collect();
                states.sort_unstable();
                let spill = states
                    .iter()
                    .filter(|&&n| n > fsmgen_exec::U8_STATE_LIMIT)
                    .count();
                println!(
                    "  machines: {} — states min {} / median {} / max {} ({} over the \
                     {}-state u8 table width, compiled as u16)",
                    states.len(),
                    states[0],
                    states[states.len() / 2],
                    states[states.len() - 1],
                    spill,
                    fsmgen_exec::U8_STATE_LIMIT
                );
            }
            damage(&decoded)
        }
        "verify" => {
            let decoded = read_design_file(path).map_err(store_error)?;
            damage(&decoded)?;
            println!(
                "{}: ok ({} record(s), {})",
                path.display(),
                decoded.records.len(),
                decoded.format
            );
            Ok(())
        }
        "gc" => {
            let keep: usize = args.flag_or("keep", 64).map_err(usage)?;
            let (mut store, records) =
                DesignStore::open(path, StoreConfig::default()).map_err(store_error)?;
            let total = records.len();
            let policy = CompactPolicy {
                keep: Some(keep),
                max_generations: None,
            };
            let report = store.compact(&policy).map_err(store_error)?;
            println!(
                "{}: kept {} of {} record(s), {} dropped",
                path.display(),
                report.kept,
                total,
                report.dropped
            );
            Ok(())
        }
        "compact" => {
            let keep: Option<usize> = args.flag_opt("keep").map_err(usage)?;
            let max_generations: Option<u32> = args.flag_opt("max-generations").map_err(usage)?;
            let (mut store, records) =
                DesignStore::open(path, StoreConfig::default()).map_err(store_error)?;
            let total = records.len();
            let report = store
                .compact(&CompactPolicy {
                    keep,
                    max_generations,
                })
                .map_err(store_error)?;
            println!(
                "{}: kept {} of {} record(s), {} dropped",
                path.display(),
                report.kept,
                total,
                report.dropped
            );
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "cache: unknown action {other:?} (expected info, verify, gc or compact)"
        ))),
    }
}

/// Assembles the online-redesign config from the `--redesign*` flags.
/// Any knob flag implies `--redesign` itself.
fn redesign_from_flags(args: &Args) -> Result<Option<fsmgen_serve::RedesignConfig>, CliError> {
    let knobs = [
        "redesign-window",
        "redesign-threshold",
        "redesign-hysteresis",
        "redesign-history",
    ];
    if !args.has("redesign") && !knobs.iter().any(|k| args.has(k)) {
        return Ok(None);
    }
    let defaults = fsmgen_serve::RedesignConfig::default();
    let rate = |name: &str, default: f64| -> Result<f64, CliError> {
        let value: f64 = args.flag_or(name, default).map_err(usage)?;
        if !value.is_finite() || !(0.0..=1.0).contains(&value) {
            return Err(CliError::Usage(format!(
                "--{name} must be a rate in 0..=1, got {value}"
            )));
        }
        Ok(value)
    };
    let history: usize = args
        .flag_or("redesign-history", defaults.history)
        .map_err(usage)?;
    if history == 0 || history > fsmgen::MAX_ORDER {
        return Err(CliError::Usage(format!(
            "--redesign-history must be in 1..={}, got {history}",
            fsmgen::MAX_ORDER
        )));
    }
    Ok(Some(fsmgen_serve::RedesignConfig {
        window: args
            .flag_or("redesign-window", defaults.window)
            .map_err(usage)?
            .max(1),
        collapse_threshold: rate("redesign-threshold", defaults.collapse_threshold)?,
        hysteresis: rate("redesign-hysteresis", defaults.hysteresis)?,
        history,
    }))
}

/// `fsmgen serve`: run the TCP design service until a protocol-level
/// shutdown request arrives.
///
/// # Errors
///
/// Usage errors for bad flags; bind failures and shutdown-time
/// persistence failures as general errors.
pub fn serve(args: &Args) -> Result<(), CliError> {
    let config = fsmgen_serve::ServeConfig {
        addr: args.flag("addr").unwrap_or("127.0.0.1:0").to_string(),
        shards: args.flag_or("shards", 0usize).map_err(usage)?,
        workers: args.flag_or("workers", 1usize).map_err(usage)?,
        cache_capacity: args.flag_or("cache-capacity", 1024usize).map_err(usage)?,
        max_connections: args.flag_or("max-connections", 64usize).map_err(usage)?,
        queue_limit: args.flag_or("queue-limit", 256usize).map_err(usage)?,
        read_timeout: Duration::from_millis(
            args.flag_or("read-timeout-ms", 5000u64).map_err(usage)?,
        ),
        max_frame_bytes: args
            .flag_or("max-frame-bytes", fsmgen_serve::DEFAULT_MAX_FRAME)
            .map_err(usage)?,
        cache_file: args.flag("cache-file").map(std::path::PathBuf::from),
        metrics_json: args.flag("metrics-json").map(std::path::PathBuf::from),
        retry_after_ms: args.flag_or("retry-after-ms", 50u64).map_err(usage)?,
        flush_every: args.flag_or("flush-every", 8usize).map_err(usage)?,
        flush_interval: Duration::from_millis(
            args.flag_or("flush-interval-ms", 200u64).map_err(usage)?,
        ),
        redesign: redesign_from_flags(args)?,
    };
    if let Some(spec) = args.flag("inject-fault") {
        failpoints::configure_from_spec_global(spec).map_err(usage)?;
    }
    let jsonl_sink = match args.flag("trace-jsonl") {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| CliError::Other(format!("cannot create {path}: {e}")))?;
            let sink =
                std::sync::Arc::new(fsmgen_obs::JsonlObsSink::new(std::io::BufWriter::new(file)));
            fsmgen_obs::install_global(
                std::sync::Arc::clone(&sink) as std::sync::Arc<dyn fsmgen_obs::ObsSink>
            );
            Some(sink)
        }
        None => None,
    };
    let server = fsmgen_serve::Server::bind(config)
        .map_err(|e| CliError::Other(format!("bind failed: {e}")))?;
    println!("listening on {}", server.local_addr());
    use std::io::Write as _;
    let _flushed = std::io::stdout().flush();
    let result = server
        .run()
        .map_err(|e| CliError::Other(format!("serve: {e}")));
    fsmgen_obs::clear_global();
    if let Some(sink) = jsonl_sink {
        sink.flush();
    }
    result
}

/// The machine a scenario duels against the counter fallback: loaded
/// from a `--machine` table file, or designed fresh from a benchmark
/// training trace (`--train-benchmark`/`--train-len`/`--history`).
fn scenario_machine(args: &Args) -> Result<fsmgen_automata::Dfa, CliError> {
    if let Some(path) = args.flag("machine") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Other(format!("cannot read {path}: {e}")))?;
        return fsmgen_automata::machine_from_table(&text)
            .map_err(|e| CliError::Parse(e.to_string()));
    }
    let history: usize = args.flag_or("history", 4).map_err(usage)?;
    if history == 0 || history > fsmgen::MAX_ORDER {
        return Err(CliError::Usage(format!(
            "--history must be in 1..={}, got {history}",
            fsmgen::MAX_ORDER
        )));
    }
    let name = args.flag("train-benchmark").unwrap_or("gsm");
    let len: usize = args.flag_or("train-len", 20_000).map_err(usage)?;
    let trace: BitTrace = branch_benchmark(name)?
        .trace(Input::TRAIN, len)
        .iter()
        .map(|e| e.taken)
        .collect();
    let design = Designer::new(history)
        .design_from_trace(&trace)
        .map_err(|e| CliError::Other(format!("training design failed: {e}")))?;
    Ok(design.fsm().clone())
}

fn scenario_backend(args: &Args) -> Result<fsmgen_exec::ExecBackend, CliError> {
    match args.flag("backend").unwrap_or("compiled") {
        "compiled" => Ok(fsmgen_exec::ExecBackend::Compiled),
        "interpreted" => Ok(fsmgen_exec::ExecBackend::Interpreted),
        other => Err(CliError::Usage(format!(
            "unknown backend {other:?} (compiled|interpreted)"
        ))),
    }
}

/// `fsmgen scenario {run|hunt}`: the seeded adversarial scenario engine.
///
/// `run` replays one plan (from `--seed` or a `--plan` JSON file) and
/// prints the deterministic event log; `--doublecheck` runs it twice and
/// fails on any divergence. `hunt` hill-climbs over mutated plans
/// looking for one where the designed machine loses to the 2-bit
/// counter fallback, then minimizes and prints it.
///
/// # Errors
///
/// Usage errors for bad flags; parse errors for bad plan/machine files;
/// general errors for doublecheck divergence or a hunt that found no
/// losing plan.
pub fn scenario(args: &Args) -> Result<(), CliError> {
    use fsmgen_scenario as scn;
    let Some(action) = args.positional().first() else {
        return Err(CliError::Usage(
            "scenario: expected an action: run or hunt".into(),
        ));
    };
    let machine = scenario_machine(args)?;
    let backend = scenario_backend(args)?;
    match action.as_str() {
        "run" => {
            let plan = match args.flag("plan") {
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| CliError::Other(format!("cannot read {path}: {e}")))?;
                    scn::ScenarioPlan::from_json(&text)
                        .map_err(|e| CliError::Parse(format!("{path}: {e}")))?
                }
                None => scn::ScenarioPlan::from_seed(args.flag_or("seed", 1u64).map_err(usage)?),
            };
            let sample_every: u64 = args.flag_or("sample-every", 1024).map_err(usage)?;
            if let Some(path) = args.flag("emit-plan") {
                std::fs::write(path, plan.to_json())
                    .map_err(|e| CliError::Other(format!("cannot write {path}: {e}")))?;
                eprintln!("scenario: plan written to {path}");
            }
            let log = if args.has("doublecheck") {
                scn::doublecheck(&machine, &plan, backend, sample_every.max(1))
                    .map_err(|e| CliError::Other(format!("doublecheck: {e}")))?
            } else {
                scn::run_logged(&machine, &plan, backend, sample_every.max(1))
                    .map_err(|e| CliError::Other(e.to_string()))?
                    .rendered()
            };
            println!("{log}");
            Ok(())
        }
        "hunt" => {
            let defaults = scn::HuntConfig::default();
            let config = scn::HuntConfig {
                seed: args.flag_or("seed", defaults.seed).map_err(usage)?,
                rounds: args.flag_or("rounds", defaults.rounds).map_err(usage)?,
                restarts: args.flag_or("restarts", defaults.restarts).map_err(usage)?,
                max_total_len: args
                    .flag_or("max-len", defaults.max_total_len)
                    .map_err(usage)?,
                target_gap: args
                    .flag_or("target-gap", defaults.target_gap)
                    .map_err(usage)?,
                backend,
            };
            let report =
                scn::hunt(&machine, &config).map_err(|e| CliError::Other(e.to_string()))?;
            if let Some(path) = args.flag("out") {
                std::fs::write(path, report.to_json())
                    .map_err(|e| CliError::Other(format!("cannot write {path}: {e}")))?;
                eprintln!("scenario: hunt report written to {path}");
            }
            println!("{}", report.to_json());
            eprintln!(
                "hunt: {} plan(s) evaluated, seed {}: {}",
                report.evaluated,
                report.seed,
                if report.found {
                    format!(
                        "found a losing plan ({} segments, {} bits, gap {:.4})",
                        report.plan.segments.len(),
                        report.plan.total_len(),
                        report.report.gap()
                    )
                } else {
                    format!("no losing plan found (best gap {:.4})", report.report.gap())
                }
            );
            if report.found {
                Ok(())
            } else {
                Err(CliError::Other(
                    "hunt: no plan found where the designed machine loses to the counter".into(),
                ))
            }
        }
        other => Err(CliError::Usage(format!(
            "scenario: unknown action {other:?} (expected run or hunt)"
        ))),
    }
}

/// The `--codec` flag, shared by `fsmgen client` and `fsmgen loadgen`:
/// JSON v1 by default, the compact binary v2 codec on request.
fn parse_codec(args: &Args) -> Result<fsmgen_serve::Codec, CliError> {
    fsmgen_serve::Codec::parse(args.flag("codec").unwrap_or("json")).map_err(CliError::Usage)
}

/// `fsmgen loadgen`: a seeded pipelined client swarm against a running
/// design service, reporting sustained throughput and latency
/// percentiles.
///
/// # Errors
///
/// Usage errors for bad flags; a general error (exit 1) when any
/// connection failed to connect, aborted, or saw a failed response —
/// so CI smoke jobs can gate on the exit code alone.
pub fn loadgen(args: &Args) -> Result<(), CliError> {
    let Some(addr) = args.flag("addr") else {
        return Err(CliError::Usage(
            "loadgen: --addr HOST:PORT is required".into(),
        ));
    };
    let defaults = fsmgen_serve::LoadgenConfig::default();
    let rate = match args.flag_opt::<f64>("rate").map_err(usage)? {
        Some(r) if r.is_finite() && r > 0.0 => Some(r),
        Some(r) => {
            return Err(CliError::Usage(format!(
                "loadgen: --rate must be a positive req/s rate, got {r}"
            )))
        }
        None => None,
    };
    let config = fsmgen_serve::LoadgenConfig {
        addr: addr.to_string(),
        connections: args
            .flag_or("connections", defaults.connections)
            .map_err(usage)?,
        requests_per_conn: args
            .flag_or("requests", defaults.requests_per_conn)
            .map_err(usage)?,
        pipeline: args
            .flag_or("pipeline", defaults.pipeline)
            .map_err(usage)?
            .max(1),
        seed: args.flag_or("seed", defaults.seed).map_err(usage)?,
        codec: parse_codec(args)?,
        workers: args
            .flag_or("workers", defaults.workers)
            .map_err(usage)?
            .max(1),
        distinct_traces: args
            .flag_or("distinct-traces", defaults.distinct_traces)
            .map_err(usage)?
            .max(1),
        history: args.flag_or("history", defaults.history).map_err(usage)?,
        rate,
        deadline: Duration::from_millis(args.flag_or("deadline-ms", 60_000u64).map_err(usage)?),
        ..defaults
    };
    let report = fsmgen_serve::run_loadgen(&config);
    if args.has("json") {
        println!("{}", report.to_json());
    } else {
        println!(
            "swarm: {} connections x {} requests, pipeline {}, {} worker thread(s), {}",
            config.connections,
            config.requests_per_conn,
            config.pipeline,
            config.workers,
            match config.rate {
                Some(r) => format!("open loop at {r} req/s"),
                None => "closed loop".to_string(),
            }
        );
        println!(
            "completed: {}/{} conns  sent {}  ok {}  failed {}  aborted {}",
            report.completed_conns,
            config.connections,
            report.requests_sent,
            report.responses_ok,
            report.responses_failed,
            report.aborted
        );
        println!(
            "sustained: {:.0} req/s over {:.2}s   latency p50 {}us  p95 {}us  p99 {}us",
            report.req_per_sec,
            report.wall.as_secs_f64(),
            report.p50_us,
            report.p95_us,
            report.p99_us
        );
        println!("{}", report.to_json());
    }
    let clean = report.connect_errors == 0
        && report.aborted == 0
        && report.responses_failed == 0
        && report.completed_conns == config.connections;
    if clean {
        Ok(())
    } else {
        Err(CliError::Other(format!(
            "loadgen: {} connect error(s), {} aborted, {} failed response(s)",
            report.connect_errors, report.aborted, report.responses_failed
        )))
    }
}

/// `fsmgen client`: one control request, one design request, or a batch
/// of design requests over a single connection.
///
/// # Errors
///
/// Usage errors for bad flags, parse errors for bad batch lines, general
/// errors for connection failures and server-reported design errors.
pub fn client(args: &Args) -> Result<(), CliError> {
    use fsmgen_serve::{Request, Response, ServeClient};
    let Some(addr) = args.flag("addr") else {
        return Err(CliError::Usage(
            "client: --addr HOST:PORT is required".into(),
        ));
    };
    let timeout = Duration::from_millis(args.flag_or("timeout-ms", 10_000u64).map_err(usage)?);
    let codec = parse_codec(args)?;
    let mut client = ServeClient::connect_with(addr, timeout, codec)
        .map_err(|e| CliError::Other(format!("cannot connect to {addr}: {e}")))?;
    let call = |client: &mut ServeClient, request: &Request| {
        client
            .design_with_retry(request, 20)
            .map_err(|e| CliError::Other(format!("request failed: {e}")))
    };

    if args.has("ping") {
        match call(&mut client, &Request::Ping)? {
            Response::Pong => {
                println!("pong");
                return Ok(());
            }
            other => return Err(CliError::Other(format!("unexpected reply: {other:?}"))),
        }
    }
    if args.has("stats") {
        // --watch polls on an interval and prints one rate line per
        // sample, sharing the delta/restart computation with 'fsmgen
        // top' (crate::top / fsmgen_serve::watch).
        if let Some(secs) = args.flag_opt::<f64>("watch").map_err(usage)? {
            if secs.is_nan() || secs <= 0.0 {
                return Err(CliError::Usage("client: --watch needs seconds > 0".into()));
            }
            let samples: u64 = args.flag_or("samples", 0).map_err(usage)?;
            drop(client);
            return crate::top::client_watch(addr, Duration::from_secs_f64(secs), samples, timeout);
        }
        match call(&mut client, &Request::Stats)? {
            Response::Stats(json) => {
                println!("{json}");
                return Ok(());
            }
            other => return Err(CliError::Other(format!("unexpected reply: {other:?}"))),
        }
    }
    if args.has("shutdown") {
        match call(&mut client, &Request::Shutdown)? {
            Response::ShutdownAck => {
                println!("shutdown acknowledged");
                return Ok(());
            }
            other => return Err(CliError::Other(format!("unexpected reply: {other:?}"))),
        }
    }

    let format = args.flag("format").unwrap_or("summary");
    if !matches!(format, "summary" | "table") {
        return Err(CliError::Usage(format!(
            "client: unknown format {format:?} (expected summary or table)"
        )));
    }
    let print_design = |label: &str, response: Response| -> Result<(), CliError> {
        match response {
            Response::DesignOk {
                states,
                cache_hit,
                wall_ms,
                machine,
                ..
            } => {
                if format == "table" {
                    print!("{machine}");
                } else {
                    println!(
                        "{label}: {states} state(s)  cache={}  {wall_ms:.3} ms",
                        if cache_hit { "hit" } else { "miss" }
                    );
                }
                Ok(())
            }
            Response::DesignError { error, .. } => {
                Err(CliError::Other(format!("{label}: server error: {error}")))
            }
            other => Err(CliError::Other(format!(
                "{label}: unexpected reply: {other:?}"
            ))),
        }
    };
    let history: usize = args.flag_or("history", 4).map_err(usage)?;
    let threshold: Option<f64> = args.flag_opt("threshold").map_err(usage)?;
    let dont_care: Option<f64> = args.flag_opt("dont-care").map_err(usage)?;

    if let Some(batch_path) = args.flag("batch") {
        let text = std::fs::read_to_string(batch_path)
            .map_err(|e| CliError::Other(format!("cannot read {batch_path}: {e}")))?;
        let mut id = 0u64;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((history_text, trace)) = line.split_once(char::is_whitespace) else {
                return Err(CliError::Parse(format!(
                    "{batch_path}:{}: expected 'HISTORY BITS...'",
                    lineno + 1
                )));
            };
            let history: usize = history_text.parse().map_err(|_| {
                CliError::Parse(format!(
                    "{batch_path}:{}: bad history {history_text:?}",
                    lineno + 1
                ))
            })?;
            let request = Request::Design {
                id,
                trace: trace.to_string(),
                history,
                threshold,
                dont_care,
            };
            let response = call(&mut client, &request)?;
            print_design(&format!("job {id} (h={history})"), response)?;
            id += 1;
        }
        return Ok(());
    }

    let raw = read_input(args)?;
    let request = Request::Design {
        id: 0,
        trace: raw,
        history,
        threshold,
        dont_care,
    };
    let response = call(&mut client, &request)?;
    print_design("design", response)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::parse(list.iter().map(|s| (*s).to_string())).unwrap()
    }

    #[test]
    fn figure_command_validates_id() {
        assert!(figure(&args(&["1"])).is_ok());
        assert!(figure(&args(&["6"])).is_ok());
        assert!(figure(&args(&["7"])).is_ok());
        assert!(figure(&args(&["2"])).is_err());
        assert!(figure(&args(&[])).is_err());
    }

    #[test]
    fn trace_command_requires_benchmark() {
        assert!(trace(&args(&[])).is_err());
        assert!(trace(&args(&["--benchmark", "nope"])).is_err());
        assert!(trace(&args(&["--benchmark", "gsm", "--kind", "weird"])).is_err());
    }

    #[test]
    fn simulate_small_run() {
        assert!(simulate(&args(&[
            "--benchmark",
            "g721",
            "--len",
            "3000",
            "--customs",
            "2",
            "--history",
            "4",
        ]))
        .is_ok());
    }

    #[test]
    fn simulate_from_trace_file() {
        let dir = std::env::temp_dir().join("fsmgen-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sim.trace");
        let text =
            fsmgen_traces::format_branch_trace(&BranchBenchmark::Gsm.trace(Input::TRAIN, 2_000));
        std::fs::write(&path, text).unwrap();
        assert!(simulate(&args(&[
            "--trace-file",
            path.to_str().unwrap(),
            "--customs",
            "1",
            "--history",
            "4",
        ]))
        .is_ok());
        // Both sources or neither is an error.
        assert!(simulate(&args(&[])).is_err());
        assert!(simulate(&args(&[
            "--benchmark",
            "gsm",
            "--trace-file",
            path.to_str().unwrap(),
        ]))
        .is_err());
    }

    #[test]
    fn compile_patterns_notation() {
        assert!(compile(&args(&["--patterns", "0x1x | 0xx1x"])).is_ok());
        assert!(compile(&args(&["--patterns", "1x", "--format", "table"])).is_ok());
        assert!(compile(&args(&["--patterns", "2z"])).is_err());
        assert!(compile(&args(&[])).is_err());
    }

    #[test]
    fn confidence_panel_small() {
        assert!(confidence(&args(&["--benchmark", "li", "--len", "4000"])).is_ok());
        assert!(confidence(&args(&["--benchmark", "nope"])).is_err());
        assert!(confidence(&args(&[])).is_err());
    }

    #[test]
    fn predict_round_trip() {
        let dir = std::env::temp_dir().join("fsmgen-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bits_path = dir.join("p.bits");
        std::fs::write(&bits_path, "0101 0101 0101 0101 0101").unwrap();
        let machine_path = dir.join("p.fsm");
        let fsm = fsmgen_automata::compile_patterns(&[vec![Some(false)]]);
        std::fs::write(&machine_path, fsmgen_automata::machine_to_table(&fsm)).unwrap();
        assert!(predict(&args(&[
            "--machine",
            machine_path.to_str().unwrap(),
            bits_path.to_str().unwrap(),
        ]))
        .is_ok());
        assert!(predict(&args(&[bits_path.to_str().unwrap()])).is_err());
        assert!(predict(&args(&["--machine", "/no/such.fsm"])).is_err());
    }

    /// Serializes the tests that actually run farm batches: the
    /// `farm-worker` failpoint is process-global, so a batch in a
    /// concurrent test could consume another test's armed fault.
    static FARM_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn farm_batch_with_cache_and_metrics() {
        let _guard = FARM_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join("fsmgen-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let json_path = dir.join("farm-metrics.json");
        assert!(farm(&args(&[
            "--benchmarks",
            "gsm,g721",
            "--histories",
            "2,3",
            "--len",
            "2000",
            "--repeat",
            "2",
            "--jobs",
            "2",
            "--metrics-json",
            json_path.to_str().unwrap(),
        ]))
        .is_ok());
        let json = std::fs::read_to_string(&json_path).unwrap();
        assert!(json.contains("\"jobs\": 8"));
        assert!(json.contains("\"hit_rate\""));
    }

    #[test]
    fn farm_flag_validation() {
        assert!(farm(&args(&["--benchmarks", "nope", "--len", "500"])).is_err());
        assert!(farm(&args(&["--histories", "0", "--len", "500"])).is_err());
        assert!(farm(&args(&["--histories", "banana", "--len", "500"])).is_err());
        assert!(farm(&args(&["--repeat", "0", "--len", "500"])).is_err());
        assert!(farm(&args(&["--benchmarks", " ", "--len", "500"])).is_err());
    }

    #[test]
    fn farm_injected_fault_fails_one_job_not_the_batch() {
        // The injected fault kills exactly one job; the command reports
        // the failure (exit nonzero) but the batch still completes.
        let _guard = FARM_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let r = farm(&args(&[
            "--benchmarks",
            "gsm",
            "--histories",
            "2",
            "--len",
            "1500",
            "--repeat",
            "3",
            "--jobs",
            "2",
            "--cache-capacity",
            "0",
            "--inject-fault",
            "farm-worker=error:1",
        ]));
        assert!(matches!(r, Err(CliError::Other(ref m)) if m.contains("1 job(s) failed")));
    }

    #[test]
    fn design_profile_and_trace_outputs() {
        let dir = std::env::temp_dir().join("fsmgen-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("profile-in.txt");
        std::fs::write(&trace_path, "0011".repeat(32)).unwrap();
        let profile_path = dir.join("design-profile.json");
        let jsonl_path = dir.join("design-trace.jsonl");
        assert!(design(&args(&[
            "--history",
            "4",
            "--profile",
            "--profile-json",
            profile_path.to_str().unwrap(),
            "--trace-jsonl",
            jsonl_path.to_str().unwrap(),
            trace_path.to_str().unwrap(),
        ]))
        .is_ok());

        let json = std::fs::read_to_string(&profile_path).unwrap();
        assert!(json.contains("\"version\": 1"), "{json}");
        assert!(json.contains("\"kind\": \"pipeline_profile\""), "{json}");
        // Every pipeline stage of the DESIGN.md flow diagram is profiled.
        for stage in [
            "markov", "patterns", "minimize", "regex", "nfa", "dfa", "hopcroft", "reduce",
        ] {
            assert!(json.contains(&format!("\"name\": \"{stage}\"")), "{stage}");
        }

        let jsonl = std::fs::read_to_string(&jsonl_path).unwrap();
        assert!(!jsonl.is_empty());
        for line in jsonl.lines() {
            assert!(line.starts_with("{\"v\": 1, \"type\": "), "{line}");
        }
        assert!(jsonl.contains("\"type\": \"span_end\", \"name\": \"design\""));
    }

    #[test]
    fn farm_trace_jsonl_streams_both_schemas() {
        let _guard = FARM_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join("fsmgen-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let jsonl_path = dir.join("farm-trace.jsonl");
        assert!(farm(&args(&[
            "--benchmarks",
            "gsm",
            "--histories",
            "2",
            "--len",
            "1500",
            "--jobs",
            "2",
            "--trace-jsonl",
            jsonl_path.to_str().unwrap(),
        ]))
        .is_ok());
        let jsonl = std::fs::read_to_string(&jsonl_path).unwrap();
        // One schema for both sources: farm lifecycle marks and the
        // workers' design-pipeline spans interleave in the same stream.
        assert!(
            jsonl.contains("\"type\": \"mark\", \"scope\": \"farm\""),
            "{jsonl}"
        );
        assert!(
            jsonl.contains("\"type\": \"span_end\", \"name\": \"design\""),
            "{jsonl}"
        );
        for line in jsonl.lines() {
            assert!(line.starts_with("{\"v\": 1, \"type\": "), "{line}");
        }
    }

    #[test]
    fn design_from_file() {
        let dir = std::env::temp_dir().join("fsmgen-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.txt");
        std::fs::write(&path, "0000 1000 1011 1101 1110 1111").unwrap();
        for format in ["summary", "dot", "vhdl"] {
            assert!(design(&args(&[
                "--history",
                "2",
                "--format",
                format,
                path.to_str().unwrap(),
            ]))
            .is_ok());
        }
        assert!(design(&args(&["--format", "bogus", path.to_str().unwrap()])).is_err());
        assert!(design(&args(&["/no/such/file.txt"])).is_err());
    }
}
