//! CLI durability drills for the persistent design store: `fsmgen farm`
//! must write the log format, `fsmgen cache verify`/`info` must exit
//! nonzero (after printing a damage report, never panicking) on
//! truncated or bit-flipped stores, `cache compact` must heal a torn
//! tail in place, and `cache gc` must migrate a legacy snapshot file.

use fsmgen::Designer;
use fsmgen_farm::{write_snapshot_file, SNAPSHOT_MAGIC, STORE_MAGIC};
use fsmgen_traces::BitTrace;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fsmgen() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fsmgen"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fsmgen-cached-{}-{tag}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("can clear stale temp dir");
    }
    std::fs::create_dir_all(&dir).expect("can create temp dir");
    dir
}

fn run_farm(store: &Path) {
    let out = fsmgen()
        .args([
            "farm",
            "--benchmarks",
            "gsm",
            "--histories",
            "2,3",
            "--len",
            "2000",
            "--jobs",
            "2",
            "--cache-file",
            store.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("farm runs");
    assert!(
        out.status.success(),
        "farm failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn cache_cmd(action: &str, store: &Path, extra: &[&str]) -> Output {
    fsmgen()
        .args([
            "cache",
            action,
            "--cache-file",
            store.to_str().expect("utf8"),
        ])
        .args(extra)
        .output()
        .expect("cache command runs")
}

#[test]
fn truncated_and_corrupt_stores_fail_verify_and_info_with_a_report() {
    let dir = tmpdir("damage");
    let store = dir.join("designs.fsnap");
    run_farm(&store);

    // The farm now writes the append-log format.
    let bytes = std::fs::read(&store).expect("store exists");
    assert_eq!(&bytes[..8], &STORE_MAGIC, "farm must write log v1");

    // Pristine: info and verify both exit 0 and name the format.
    let info = cache_cmd("info", &store, &[]);
    assert!(info.status.success(), "info on a pristine store");
    let stdout = String::from_utf8_lossy(&info.stdout);
    assert!(stdout.contains("log v1"));
    // The machine summary: state-count spread plus how many records
    // would spill past the compiled backend's u8 table width.
    assert!(
        stdout.contains("states min") && stdout.contains("u8 table width"),
        "info must print the machine state-count summary: {stdout}"
    );
    assert!(cache_cmd("verify", &store, &[]).status.success());

    // dd-style truncation mid-record: a torn tail.
    let full_len = bytes.len() as u64;
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&store)
        .expect("open store");
    file.set_len(full_len - 7).expect("truncate");
    drop(file);

    // Both read-only actions exit nonzero with a report — no panic, no
    // silent 0 — and neither mutates the file.
    let verify = cache_cmd("verify", &store, &[]);
    assert!(!verify.status.success(), "verify must fail on a torn tail");
    assert!(
        String::from_utf8_lossy(&verify.stderr).contains("torn tail"),
        "stderr must report the damage: {}",
        String::from_utf8_lossy(&verify.stderr)
    );
    let info = cache_cmd("info", &store, &[]);
    assert!(!info.status.success(), "info must fail on a torn tail");
    assert!(
        String::from_utf8_lossy(&info.stdout).contains("torn tail"),
        "info still prints its report first"
    );
    assert_eq!(
        std::fs::metadata(&store).expect("store").len(),
        full_len - 7,
        "read-only actions must not mutate the store"
    );

    // `cache compact` heals: the tail is truncated, survivors rewritten.
    let compact = cache_cmd("compact", &store, &[]);
    assert!(
        compact.status.success(),
        "compact must heal a torn tail: {}",
        String::from_utf8_lossy(&compact.stderr)
    );
    assert!(cache_cmd("verify", &store, &[]).status.success());

    // A bit-flip inside a record payload: framed corruption.
    let mut bytes = std::fs::read(&store).expect("store");
    assert!(bytes.len() > 48, "store too small to corrupt");
    bytes[40] ^= 0xFF;
    std::fs::write(&store, &bytes).expect("rewrite");
    let verify = cache_cmd("verify", &store, &[]);
    assert!(!verify.status.success(), "verify must fail on corruption");
    assert!(
        String::from_utf8_lossy(&verify.stderr).contains("corrupt record"),
        "stderr must count the corrupt record: {}",
        String::from_utf8_lossy(&verify.stderr)
    );

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn gc_migrates_a_legacy_snapshot_to_the_log_format() {
    let dir = tmpdir("legacy");
    let store = dir.join("legacy.fsnap");

    // A genuine snapshot-v1 file, as PR 4 wrote them.
    let trace: BitTrace = "0000 1000 1011 1101 1110 1111".parse().expect("trace");
    let designs: Vec<_> = [2usize, 3]
        .iter()
        .map(|&h| {
            Designer::new(h)
                .design_from_trace(&trace)
                .expect("local design")
        })
        .collect();
    write_snapshot_file(
        &store,
        designs
            .iter()
            .enumerate()
            .map(|(i, d)| (i as u64 + 1, 0u64, d)),
    )
    .expect("write legacy snapshot");
    let bytes = std::fs::read(&store).expect("snapshot");
    assert_eq!(&bytes[..8], &SNAPSHOT_MAGIC, "precondition: legacy format");

    // `cache gc` opens (migrating) and compacts; the file comes out as a
    // log and verifies clean.
    let gc = cache_cmd("gc", &store, &["--keep", "10"]);
    assert!(
        gc.status.success(),
        "gc on a legacy snapshot: {}",
        String::from_utf8_lossy(&gc.stderr)
    );
    let bytes = std::fs::read(&store).expect("store");
    assert_eq!(&bytes[..8], &STORE_MAGIC, "gc must migrate to log v1");
    assert!(cache_cmd("verify", &store, &[]).status.success());
    let info = cache_cmd("info", &store, &[]);
    assert!(info.status.success());
    let report = String::from_utf8_lossy(&info.stdout);
    assert!(
        report.contains("2 record(s) decoded"),
        "both legacy records must survive migration: {report}"
    );

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
