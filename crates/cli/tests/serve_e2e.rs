//! End-to-end test of `fsmgen serve` + `fsmgen client` as real processes:
//! the served machine table must be byte-identical to `fsmgen design`'s
//! table for the same trace and history, control requests must work, and
//! a protocol shutdown must exit the server cleanly and persist the
//! cache snapshot.

use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};

fn fsmgen() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fsmgen"))
}

fn tmp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fsmgen-cli-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const PAPER_TRACE: &str = "0000 1000 1011 1101 1110 1111";

struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    fn spawn(extra: &[&str]) -> ServerProc {
        let mut child = fsmgen()
            .args(["serve", "--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn fsmgen serve");
        let stdout = child.stdout.take().expect("stdout");
        let banner = std::io::BufReader::new(stdout)
            .lines()
            .next()
            .expect("banner line")
            .expect("banner utf8");
        let addr = banner
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
            .to_string();
        ServerProc { child, addr }
    }

    fn client(&self, extra: &[&str]) -> Output {
        fsmgen()
            .args(["client", "--addr", &self.addr])
            .args(extra)
            .output()
            .expect("run fsmgen client")
    }

    fn shutdown(mut self) {
        let output = self.client(&["--shutdown"]);
        assert!(output.status.success(), "shutdown: {output:?}");
        let status = self.child.wait().expect("server exit");
        assert!(status.success(), "server exit status {status:?}");
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn stdout_text(output: &Output) -> String {
    assert!(
        output.status.success(),
        "command failed: {:?}\nstderr: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn cli_serve_and_client_round_trip_matches_local_design() {
    let dir = tmp_dir();
    let trace_file = dir.join("trace.txt");
    std::fs::write(&trace_file, PAPER_TRACE).unwrap();
    let trace_flag = trace_file.to_str().unwrap();
    let cache_file = dir.join("cli-serve.fsnap");
    let cache_flag = cache_file.to_str().unwrap();

    // The local ground truth: fsmgen design --format table.
    let local = stdout_text(
        &fsmgen()
            .args(["design", "--history", "2", "--format", "table", trace_flag])
            .output()
            .expect("run fsmgen design"),
    );

    let server = ServerProc::spawn(&["--cache-file", cache_flag]);

    // Control plane.
    assert_eq!(stdout_text(&server.client(&["--ping"])).trim(), "pong");
    let stats = stdout_text(&server.client(&["--stats"]));
    assert!(stats.contains("\"kind\": \"serve_metrics\""), "{stats}");

    // Served table == local table, byte for byte.
    let served = stdout_text(&server.client(&["--history", "2", "--format", "table", trace_flag]));
    assert_eq!(served, local, "served table differs from local design");

    // Batch mode over one connection; the repeated job is a cache hit.
    let batch_file = dir.join("batch.txt");
    std::fs::write(
        &batch_file,
        format!("# history trace\n2 {PAPER_TRACE}\n3 {PAPER_TRACE}\n2 {PAPER_TRACE}\n"),
    )
    .unwrap();
    let batch_out = stdout_text(&server.client(&["--batch", batch_file.to_str().unwrap()]));
    let lines: Vec<&str> = batch_out.lines().collect();
    assert_eq!(lines.len(), 3, "{batch_out}");
    assert!(lines[0].contains("job 0 (h=2)"), "{batch_out}");
    assert!(lines[2].contains("cache=hit"), "{batch_out}");

    // A design error surfaces as a nonzero client exit, not a wedge.
    let bad = server.client(&["--history", "99", trace_flag]);
    assert!(!bad.status.success());
    assert!(
        String::from_utf8_lossy(&bad.stderr).contains("history"),
        "{bad:?}"
    );

    server.shutdown();
    assert!(cache_file.exists(), "shutdown must persist the snapshot");

    // Warm restart: the same design must now be a cache hit.
    let warm = ServerProc::spawn(&["--cache-file", cache_flag]);
    let summary = stdout_text(&warm.client(&["--history", "2", trace_flag]));
    assert!(
        summary.contains("cache=hit"),
        "warm restart missed: {summary}"
    );
    warm.shutdown();

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cli_client_requires_addr() {
    let output = fsmgen().args(["client", "--ping"]).output().expect("run");
    assert_eq!(output.status.code(), Some(2), "usage error expected");
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("--addr"),
        "{output:?}"
    );
}
