//! End-to-end tests for `fsmgen top` and `fsmgen client --stats --watch`
//! against a real `fsmgen serve` process: the non-TTY degradations
//! (`--once`, `--json`, `--count`) must print rates and quantiles, and a
//! watch must survive a SIGKILL + restart of the server mid-flight.

use fsmgen_serve::json::{self, Json};
use std::io::BufRead;
use std::process::{Child, Command, Output, Stdio};

const PAPER_TRACE: &str = "0000 1000 1011 1101 1110 1111";

fn fsmgen() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fsmgen"))
}

struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    /// Spawns `fsmgen serve` on `addr` ("127.0.0.1:0" for an OS port)
    /// and waits for the listening banner. Retries briefly so a restart
    /// can rebind the port the previous process just vacated.
    fn spawn_at(addr: &str) -> ServerProc {
        let mut last: Option<String> = None;
        for _ in 0..40 {
            let mut child = fsmgen()
                .args(["serve", "--addr", addr])
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn fsmgen serve");
            let stdout = child.stdout.take().expect("stdout");
            match std::io::BufReader::new(stdout).lines().next() {
                Some(Ok(banner)) if banner.starts_with("listening on ") => {
                    let addr = banner["listening on ".len()..].to_string();
                    return ServerProc { child, addr };
                }
                other => {
                    last = Some(format!("{other:?}"));
                    let _ = child.kill();
                    let _ = child.wait();
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
            }
        }
        panic!("server never came up on {addr}: {last:?}");
    }

    /// Sends a couple of design requests so the counters are non-zero.
    fn warm(&self) {
        for _ in 0..2 {
            let output = fsmgen()
                .args(["client", "--addr", &self.addr, "--history", "2"])
                .arg("/dev/stdin")
                .stdin(Stdio::piped())
                .stdout(Stdio::null())
                .stderr(Stdio::piped())
                .spawn()
                .and_then(|mut child| {
                    use std::io::Write as _;
                    child
                        .stdin
                        .take()
                        .expect("stdin")
                        .write_all(PAPER_TRACE.as_bytes())?;
                    child.wait_with_output()
                })
                .expect("run fsmgen client");
            assert!(output.status.success(), "warm design failed: {output:?}");
        }
    }

    fn sigkill(mut self) -> String {
        let addr = self.addr.clone();
        self.child.kill().expect("SIGKILL server");
        let _ = self.child.wait();
        addr
    }

    fn shutdown(self) {
        let output = fsmgen()
            .args(["client", "--addr", &self.addr, "--shutdown"])
            .output()
            .expect("run shutdown");
        assert!(output.status.success(), "{output:?}");
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn stdout_text(output: &Output) -> String {
    assert!(
        output.status.success(),
        "command failed: {:?}\nstdout: {}\nstderr: {}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn top_once_json_reports_rates_and_quantiles() {
    let server = ServerProc::spawn_at("127.0.0.1:0");
    server.warm();

    let output = fsmgen()
        .args(["top", &server.addr, "--once", "--json"])
        .output()
        .expect("run fsmgen top");
    let text = stdout_text(&output);
    let value = json::parse(text.trim()).expect("top --json must print valid JSON");
    assert_eq!(value.get("v").and_then(Json::as_u64), Some(1));
    assert_eq!(value.get("kind").and_then(Json::as_str), Some("top_frame"));
    assert_eq!(value.get("restarted").and_then(Json::as_bool), Some(false));
    assert!(value.get("req_per_s").and_then(Json::as_f64).is_some());
    assert!(value.get("hit_rate").and_then(Json::as_f64).is_some());
    assert!(value.get("uptime_ms").and_then(Json::as_u64).is_some());
    assert!(value.get("seq").and_then(Json::as_u64).is_some());
    let lat = value.get("latency_us").expect("latency_us block");
    for key in ["count", "p50", "p95", "p99"] {
        assert!(lat.get(key).and_then(Json::as_u64).is_some(), "{key}");
    }
    // The two warm designs are on the books.
    assert!(value.get("requests_ok").and_then(Json::as_u64).unwrap() >= 2);

    server.shutdown();
}

#[test]
fn top_once_table_degrades_without_a_tty() {
    let server = ServerProc::spawn_at("127.0.0.1:0");
    server.warm();

    // stdout is a pipe here, so even without --once this must print one
    // table and exit rather than entering the ANSI TUI.
    let output = fsmgen()
        .args(["top", &server.addr])
        .output()
        .expect("run fsmgen top");
    let text = stdout_text(&output);
    assert!(text.contains("req/s"), "{text}");
    assert!(text.contains("p95"), "{text}");
    assert!(
        !text.contains("\x1b["),
        "plain mode must not emit ANSI: {text:?}"
    );

    server.shutdown();
}

#[test]
fn client_stats_watch_prints_rate_lines() {
    let server = ServerProc::spawn_at("127.0.0.1:0");
    server.warm();

    let output = fsmgen()
        .args([
            "client",
            "--addr",
            &server.addr,
            "--stats",
            "--watch",
            "0.05",
            "--samples",
            "3",
        ])
        .output()
        .expect("run client --stats --watch");
    let text = stdout_text(&output);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "{text}");
    for line in &lines {
        assert!(line.contains("req/s"), "{line}");
        assert!(line.contains("p95"), "{line}");
    }

    server.shutdown();
}

/// A watch must survive the server being SIGKILL'd and restarted on the
/// same address: unreachable polls are reported, the first sample from
/// the new process is flagged as a restart, and the watch exits cleanly.
#[test]
#[cfg(unix)]
fn top_survives_server_restart_mid_watch() {
    let first = ServerProc::spawn_at("127.0.0.1:0");
    first.warm();
    // A couple of stats polls so the old process's seq is ahead of a
    // fresh process's.
    for _ in 0..3 {
        let output = fsmgen()
            .args(["client", "--addr", &first.addr, "--stats"])
            .output()
            .expect("stats poll");
        assert!(output.status.success());
    }

    // 14 frames at 250 ms ≈ 3.5 s of watching; piped stdout selects the
    // plain line-per-frame mode.
    let top = fsmgen()
        .args(["top", &first.addr, "--count", "14", "--interval-ms", "250"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn fsmgen top");

    // Let it land a couple of good samples, then kill and restart the
    // server on the very same address.
    std::thread::sleep(std::time::Duration::from_millis(700));
    let addr = first.sigkill();
    let second = ServerProc::spawn_at(&addr);
    second.warm();

    let output = top.wait_with_output().expect("top exit");
    let text = stdout_text(&output);
    assert!(
        text.contains("[restart]") || text.contains("unreachable"),
        "watch never noticed the restart:\n{text}"
    );
    // It kept watching the new process after the restart.
    let rate_lines = text.lines().filter(|l| l.contains("req/s")).count();
    assert!(rate_lines >= 2, "too few successful frames:\n{text}");
    assert!(
        text.lines().last().unwrap_or("").contains("req/s"),
        "watch did not recover by the final frame:\n{text}"
    );

    second.shutdown();
}
