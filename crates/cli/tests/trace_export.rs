//! Round-trip tests for `fsmgen trace export`: property tests over
//! synthetic obs-JSONL corpora (every span appears exactly once in both
//! formats, durations non-negative, corruption skip-and-counts without
//! panicking) plus end-to-end runs against real `fsmgen design`/`farm`
//! traces — including a SIGKILL'd farm whose trace must still parse
//! thanks to the sink's flush-on-root-close discipline.

use fsmgen_obs::trace::{export_chrome, export_folded, ExportOptions};
use fsmgen_serve::json::{self, Json};
use fsmgen_testkit::obs_jsonl;
use proptest::prelude::*;
use std::path::PathBuf;
use std::process::Command;

fn fsmgen() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fsmgen"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("fsmgen-trace-export-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn chrome(input: &str, options: &ExportOptions) -> (String, fsmgen_obs::ExportReport) {
    let mut out = Vec::new();
    let report = export_chrome(&mut input.as_bytes(), &mut out, options).expect("chrome export");
    (String::from_utf8(out).unwrap(), report)
}

fn folded(input: &str, options: &ExportOptions) -> (String, fsmgen_obs::ExportReport) {
    let mut out = Vec::new();
    let report = export_folded(&mut input.as_bytes(), &mut out, options).expect("folded export");
    (String::from_utf8(out).unwrap(), report)
}

/// Parses a chrome export and returns its `X` (complete span) events.
fn x_events(text: &str) -> Vec<Json> {
    let value = json::parse(text).expect("chrome export must be valid JSON");
    assert_eq!(
        value.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    match value.get("traceEvents") {
        Some(Json::Arr(events)) => events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .cloned()
            .collect(),
        other => panic!("traceEvents must be an array, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every span in the input appears exactly once in both formats,
    /// with non-negative durations, for stamped and legacy traces alike.
    #[test]
    fn round_trip_counts_and_durations(
        roots in 1usize..6,
        depth in 0usize..5,
        tid in 1u64..4,
        stamped in any::<bool>(),
    ) {
        let input = if stamped {
            obs_jsonl::stamped_trace(roots, depth, tid)
        } else {
            obs_jsonl::unstamped_trace(roots, depth)
        };
        let expected = obs_jsonl::span_count(roots, depth);

        let (chrome_text, chrome_report) = chrome(&input, &ExportOptions::default());
        prop_assert_eq!(chrome_report.spans as usize, expected);
        prop_assert_eq!(chrome_report.corrupt, 0);
        prop_assert_eq!(chrome_report.unclosed, 0);
        let spans = x_events(&chrome_text);
        prop_assert_eq!(spans.len(), expected);
        for event in &spans {
            for key in ["pid", "tid", "ts", "dur"] {
                prop_assert!(
                    event.get(key).and_then(Json::as_f64).is_some(),
                    "span event missing {}", key
                );
            }
            prop_assert!(event.get("dur").and_then(Json::as_f64).unwrap() >= 0.0);
        }

        let (folded_text, folded_report) = folded(&input, &ExportOptions::default());
        prop_assert_eq!(folded_report.spans as usize, expected);
        prop_assert_eq!(folded_text.lines().count(), expected);
        for line in folded_text.lines() {
            let (stack, value) = line.rsplit_once(' ').expect("folded line shape");
            prop_assert!(!stack.is_empty());
            let self_us: i64 = value.parse().expect("folded self time");
            prop_assert!(self_us >= 0, "negative self time in {}", line);
        }
    }

    /// Corrupting any single byte never panics either exporter; the
    /// damage is skipped and counted, and span counts never exceed the
    /// intact corpus.
    #[test]
    fn corruption_skips_and_counts_never_panics(
        roots in 1usize..4,
        depth in 0usize..4,
        at in 0usize..4096,
    ) {
        let intact = obs_jsonl::stamped_trace(roots, depth, 1);
        let expected = obs_jsonl::span_count(roots, depth);
        let damaged = obs_jsonl::corrupt_byte(&intact, at % intact.len());

        let (chrome_text, report) = chrome(&damaged, &ExportOptions::default());
        prop_assert_eq!(report.corrupt, 1, "stray quote must corrupt exactly one line");
        prop_assert!((report.spans as usize) <= expected);
        // The output document itself stays well-formed.
        let _ = x_events(&chrome_text);

        let (_, folded_report) = folded(&damaged, &ExportOptions::default());
        prop_assert_eq!(folded_report.corrupt, 1);

        // Strict mode refuses the same input.
        let strict = ExportOptions { strict: true, ..ExportOptions::default() };
        let mut sink = Vec::new();
        prop_assert!(export_chrome(&mut damaged.as_bytes(), &mut sink, &strict).is_err());
    }

    /// Truncating the corpus at any byte never panics; a mid-line cut is
    /// reported as a torn tail, never as corruption.
    #[test]
    fn truncation_is_a_torn_tail(
        roots in 1usize..4,
        depth in 0usize..4,
        at in 1usize..4096,
    ) {
        let intact = obs_jsonl::stamped_trace(roots, depth, 1);
        let cut = obs_jsonl::truncate_at(&intact, at % intact.len());
        let (chrome_text, report) = chrome(&cut, &ExportOptions::default());
        prop_assert_eq!(report.corrupt, 0, "a torn tail is not corruption");
        prop_assert!(report.truncated <= 1);
        prop_assert!((report.spans as usize) <= obs_jsonl::span_count(roots, depth));
        let _ = x_events(&chrome_text);
    }
}

#[test]
fn cli_design_trace_exports_both_formats() {
    let dir = tmp_dir("design");
    let trace_file = dir.join("bits.txt");
    std::fs::write(&trace_file, "0000 1000 1011 1101 1110 1111").unwrap();
    let jsonl = dir.join("design.jsonl");

    let output = fsmgen()
        .args([
            "design",
            "--history",
            "2",
            "--trace-jsonl",
            jsonl.to_str().unwrap(),
            trace_file.to_str().unwrap(),
        ])
        .output()
        .expect("run fsmgen design");
    assert!(output.status.success(), "{output:?}");

    // The written trace is stamped line-by-line.
    let text = std::fs::read_to_string(&jsonl).unwrap();
    assert!(!text.is_empty());
    for line in text.lines() {
        assert!(line.starts_with("{\"v\": 1, \"type\": "), "{line}");
        assert!(line.contains("\"ts_us\": "), "{line}");
    }
    let span_ends = text.matches("\"type\": \"span_end\"").count();
    assert!(span_ends > 0, "design trace has spans");

    // Chrome export via the CLI.
    let chrome_out = dir.join("design.chrome.json");
    let output = fsmgen()
        .args([
            "trace",
            "export",
            "--format",
            "chrome",
            "--in",
            jsonl.to_str().unwrap(),
            "--out",
            chrome_out.to_str().unwrap(),
        ])
        .output()
        .expect("run trace export");
    assert!(output.status.success(), "{output:?}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("0 corrupt line(s)"), "{stderr}");
    let chrome_text = std::fs::read_to_string(&chrome_out).unwrap();
    assert_eq!(x_events(&chrome_text).len(), span_ends);

    // Folded export via stdout; line count == span_end count.
    let output = fsmgen()
        .args([
            "trace",
            "export",
            "--format",
            "folded",
            "--in",
            jsonl.to_str().unwrap(),
        ])
        .output()
        .expect("run trace export folded");
    assert!(output.status.success(), "{output:?}");
    let folded_text = String::from_utf8_lossy(&output.stdout);
    assert_eq!(folded_text.lines().count(), span_ends);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_trace_export_strict_rejects_corrupt_input_with_exit_3() {
    let dir = tmp_dir("strict");
    let jsonl = dir.join("damaged.jsonl");
    let mut corpus = obs_jsonl::stamped_trace(2, 2, 1);
    corpus.push_str("this is not json\n");
    std::fs::write(&jsonl, &corpus).unwrap();

    // Lenient: succeeds, reports the skip on stderr.
    let output = fsmgen()
        .args(["trace", "export", "--in", jsonl.to_str().unwrap()])
        .output()
        .expect("run trace export");
    assert!(output.status.success(), "{output:?}");
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("1 corrupt line(s)"),
        "{output:?}"
    );

    // Strict: parse error, exit 3.
    let output = fsmgen()
        .args([
            "trace",
            "export",
            "--strict",
            "--in",
            jsonl.to_str().unwrap(),
        ])
        .output()
        .expect("run strict trace export");
    assert_eq!(output.status.code(), Some(3), "{output:?}");

    std::fs::remove_dir_all(&dir).ok();
}

/// The flush-on-root-close regression: SIGKILL a farm run mid-batch and
/// the trace written so far must still export — complete root spans
/// reached the file even though the process never exited cleanly.
#[test]
#[cfg(unix)]
fn sigkilled_farm_trace_still_parses() {
    let dir = tmp_dir("sigkill");
    let jsonl = dir.join("farm.jsonl");

    let mut child = fsmgen()
        .args([
            "farm",
            "--benchmarks",
            "gsm,g721,compress,gs,ijpeg,vortex",
            "--histories",
            "2,3,4",
            "--repeat",
            "40",
            "--len",
            "20000",
            "--jobs",
            "2",
            "--trace-jsonl",
            jsonl.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn fsmgen farm");

    // Wait until at least one complete span has hit the disk.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let content = std::fs::read_to_string(&jsonl).unwrap_or_default();
        if content.contains("\"type\": \"span_end\"") {
            break;
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("farm exited before producing spans: {status:?}");
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no span_end reached the trace file within 60s"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    child.kill().expect("SIGKILL farm");
    let _ = child.wait();

    let content = std::fs::read_to_string(&jsonl).unwrap();
    let (_, report) = chrome(&content, &ExportOptions::default());
    assert!(report.spans > 0, "killed farm left no exportable spans");
    assert_eq!(report.corrupt, 0, "flushed lines must be whole: {report:?}");
    let (_, folded_report) = folded(&content, &ExportOptions::default());
    assert_eq!(folded_report.spans, report.spans);

    std::fs::remove_dir_all(&dir).ok();
}
