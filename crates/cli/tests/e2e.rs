//! End-to-end tests driving the actual `fsmgen` binary.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn fsmgen() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fsmgen"))
}

fn tmpdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("fsmgen-e2e");
    std::fs::create_dir_all(&dir).expect("can create temp dir");
    dir
}

#[test]
fn design_from_stdin_reproduces_figure1() {
    let mut child = fsmgen()
        .args(["design", "--history", "2", "--dont-care", "0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .take()
        .expect("piped")
        .write_all(b"0000 1000 1011 1101 1110 1111")
        .expect("write trace");
    let out = child.wait_with_output().expect("completes");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(
        text.contains("states: 3 (was 5 before start-state reduction)"),
        "{text}"
    );
    assert!(text.contains("cover: -1 + 1-"), "{text}");
}

#[test]
fn full_pipeline_trace_design_predict() {
    let dir = tmpdir();
    let bits = dir.join("e2e.bits");
    let machine = dir.join("e2e.fsm");

    // 1. Dump a workload as bits.
    let out = fsmgen()
        .args([
            "trace",
            "--benchmark",
            "gsm",
            "--kind",
            "bits",
            "--len",
            "5000",
        ])
        .output()
        .expect("trace runs");
    assert!(out.status.success());
    std::fs::write(&bits, &out.stdout).expect("write bits");

    // 2. Design and save the machine table.
    let out = fsmgen()
        .args([
            "design",
            "--history",
            "4",
            "--format",
            "table",
            bits.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("design runs");
    assert!(out.status.success());
    std::fs::write(&machine, &out.stdout).expect("write machine");

    // 3. Reload and replay.
    let out = fsmgen()
        .args([
            "predict",
            "--machine",
            machine.to_str().expect("utf8 path"),
            bits.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("predict runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    let pct: f64 = text
        .split('(')
        .nth(1)
        .and_then(|s| s.split('%').next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable predict output: {text}"));
    assert!(pct > 60.0, "designed machine should beat chance: {text}");
}

#[test]
fn compile_figure7_notation() {
    let out = fsmgen()
        .args(["compile", "--patterns", "0x1x | 0xx1x"])
        .output()
        .expect("compile runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("states: 11"), "{text}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = fsmgen().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).expect("utf8");
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn no_command_prints_usage_and_fails() {
    let out = fsmgen().output().expect("runs");
    assert!(!out.status.success());
}

#[test]
fn figure_subcommand_emits_dot() {
    let out = fsmgen().args(["figure", "6"]).output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("digraph fig6"));
}
