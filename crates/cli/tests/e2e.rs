//! End-to-end tests driving the actual `fsmgen` binary.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn fsmgen() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fsmgen"))
}

fn tmpdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("fsmgen-e2e");
    std::fs::create_dir_all(&dir).expect("can create temp dir");
    dir
}

#[test]
fn design_from_stdin_reproduces_figure1() {
    let mut child = fsmgen()
        .args(["design", "--history", "2", "--dont-care", "0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .take()
        .expect("piped")
        .write_all(b"0000 1000 1011 1101 1110 1111")
        .expect("write trace");
    let out = child.wait_with_output().expect("completes");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(
        text.contains("states: 3 (was 5 before start-state reduction)"),
        "{text}"
    );
    assert!(text.contains("cover: -1 + 1-"), "{text}");
}

#[test]
fn full_pipeline_trace_design_predict() {
    let dir = tmpdir();
    let bits = dir.join("e2e.bits");
    let machine = dir.join("e2e.fsm");

    // 1. Dump a workload as bits.
    let out = fsmgen()
        .args([
            "trace",
            "--benchmark",
            "gsm",
            "--kind",
            "bits",
            "--len",
            "5000",
        ])
        .output()
        .expect("trace runs");
    assert!(out.status.success());
    std::fs::write(&bits, &out.stdout).expect("write bits");

    // 2. Design and save the machine table.
    let out = fsmgen()
        .args([
            "design",
            "--history",
            "4",
            "--format",
            "table",
            bits.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("design runs");
    assert!(out.status.success());
    std::fs::write(&machine, &out.stdout).expect("write machine");

    // 3. Reload and replay.
    let out = fsmgen()
        .args([
            "predict",
            "--machine",
            machine.to_str().expect("utf8 path"),
            bits.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("predict runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    let pct: f64 = text
        .split('(')
        .nth(1)
        .and_then(|s| s.split('%').next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable predict output: {text}"));
    assert!(pct > 60.0, "designed machine should beat chance: {text}");
}

#[test]
fn compile_figure7_notation() {
    let out = fsmgen()
        .args(["compile", "--patterns", "0x1x | 0xx1x"])
        .output()
        .expect("compile runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("states: 11"), "{text}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = fsmgen().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).expect("utf8");
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn no_command_prints_usage_and_fails() {
    let out = fsmgen().output().expect("runs");
    assert!(!out.status.success());
}

#[test]
fn figure_subcommand_emits_dot() {
    let out = fsmgen().args(["figure", "6"]).output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("digraph fig6"));
}

/// A long pseudorandom 0/1 trace that populates many histories — the kind
/// of input that makes exact minimization and subset construction blow
/// small budgets for real.
fn pathological_bits() -> String {
    (0..2048u32)
        .map(|i| {
            let h = i.wrapping_mul(2654435761);
            if (h >> 11) & 1 == 1 {
                '1'
            } else {
                '0'
            }
        })
        .collect()
}

#[test]
fn design_with_budget_degrades_and_reports() {
    let dir = tmpdir();
    let path = dir.join("pathological.bits");
    std::fs::write(&path, pathological_bits()).expect("write bits");
    let out = fsmgen()
        .args([
            "design",
            "--history",
            "8",
            "--budget-states",
            "64",
            "--budget-minterms",
            "16",
            path.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("design runs");
    assert!(out.status.success(), "degraded design must still succeed");
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("degraded:"), "{text}");
    assert!(text.contains("effective history:"), "{text}");
    assert!(text.contains("states:"), "{text}");
}

#[test]
fn no_degrade_exits_with_budget_code() {
    let dir = tmpdir();
    let path = dir.join("pathological2.bits");
    std::fs::write(&path, pathological_bits()).expect("write bits");
    let out = fsmgen()
        .args([
            "design",
            "--history",
            "8",
            "--budget-minterms",
            "16",
            "--no-degrade",
            path.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("design runs");
    assert_eq!(out.status.code(), Some(4), "budget errors must exit 4");
    let err = String::from_utf8(out.stderr).expect("utf8");
    assert!(err.contains("budget"), "{err}");
}

#[test]
fn injected_fault_exits_nonzero_without_panicking() {
    let mut child = fsmgen()
        .args(["design", "--history", "2", "--inject-fault", "dfa=error"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .take()
        .expect("piped")
        .write_all(b"0000 1000 1011 1101 1110 1111")
        .expect("write trace");
    let out = child.wait_with_output().expect("completes");
    assert_eq!(out.status.code(), Some(1), "internal faults exit 1");
    let err = String::from_utf8(out.stderr).expect("utf8");
    assert!(err.contains("injected"), "{err}");
    assert!(!err.contains("panicked"), "{err}");
}

#[test]
fn injected_budget_fault_degrades_through_cli() {
    let mut child = fsmgen()
        .args([
            "design",
            "--history",
            "3",
            "--inject-fault",
            "minimize=budget:1",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .take()
        .expect("piped")
        .write_all(b"0000 1000 1011 1101 1110 1111")
        .expect("write trace");
    let out = child.wait_with_output().expect("completes");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("degraded: heuristic minimizer"), "{text}");
}

#[test]
fn usage_and_parse_exit_codes() {
    // Unknown command → usage (2).
    let out = fsmgen().arg("frobnicate").output().expect("runs");
    assert_eq!(out.status.code(), Some(2));

    // Bad flag value → usage (2).
    let out = fsmgen()
        .args(["design", "--history", "lots"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));

    // Out-of-range history → usage (2), not a panic.
    let out = fsmgen()
        .args(["design", "--history", "99"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(!String::from_utf8_lossy(&out.stderr).contains("panicked"));

    // Garbage trace data → parse (3).
    let dir = tmpdir();
    let path = dir.join("garbage.bits");
    std::fs::write(&path, "this is not a bit trace").expect("write");
    let out = fsmgen()
        .args(["design", path.to_str().expect("utf8 path")])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn simulate_lenient_skips_malformed_lines() {
    let dir = tmpdir();
    let path = dir.join("dirty.trace");
    // Valid events interleaved with junk lines.
    let mut text = String::new();
    for i in 0..200u64 {
        text.push_str(&format!("0x{:x} {} 0x2000\n", 0x1000 + 4 * i, i % 2));
        if i % 10 == 0 {
            text.push_str("corrupted record here\n");
        }
    }
    std::fs::write(&path, &text).expect("write");

    // Strict mode refuses the file with a parse error.
    let out = fsmgen()
        .args([
            "simulate",
            "--trace-file",
            path.to_str().expect("utf8 path"),
            "--customs",
            "1",
            "--history",
            "4",
        ])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(3));

    // Lenient mode runs and warns.
    let out = fsmgen()
        .args([
            "simulate",
            "--lenient",
            "--trace-file",
            path.to_str().expect("utf8 path"),
            "--customs",
            "1",
            "--history",
            "4",
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8(out.stderr).expect("utf8");
    assert!(err.contains("lines skipped"), "{err}");
}
