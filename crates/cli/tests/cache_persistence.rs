//! Cross-process persistence: two separate `fsmgen farm` invocations
//! sharing a `--cache-file` snapshot. The second (warm) process must be
//! served almost entirely from the snapshot and must produce byte-identical
//! machine-table artifacts, and a deliberately corrupted snapshot must be
//! skipped gracefully — never a crash.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fsmgen() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fsmgen"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fsmgen-cachep-{}-{tag}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("can clear stale temp dir");
    }
    std::fs::create_dir_all(&dir).expect("can create temp dir");
    dir
}

/// Runs one `fsmgen farm` pass against a shared snapshot, returning the
/// parsed-out metrics JSON text.
fn run_farm(dir: &Path, pass: &str) -> String {
    let metrics = dir.join(format!("metrics-{pass}.json"));
    let out = fsmgen()
        .args([
            "farm",
            "--benchmarks",
            "gsm,compress",
            "--histories",
            "2,3",
            "--len",
            "3000",
            "--jobs",
            "2",
            "--cache-file",
            dir.join("designs.fsnap").to_str().expect("utf8 path"),
            "--metrics-json",
            metrics.to_str().expect("utf8 path"),
            "--dump-machines",
            dir.join(format!("machines-{pass}"))
                .to_str()
                .expect("utf8 path"),
        ])
        .output()
        .expect("farm runs");
    assert!(
        out.status.success(),
        "farm {pass} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::read_to_string(&metrics).expect("metrics json written")
}

/// Pulls a `"name": <integer>` field out of the flat metrics JSON.
fn json_u64(json: &str, name: &str) -> u64 {
    let key = format!("\"{name}\":");
    let at = json
        .find(&key)
        .unwrap_or_else(|| panic!("{name} in {json}"));
    json[at + key.len()..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("{name} is not an integer in {json}"))
}

#[test]
fn second_process_is_served_from_the_snapshot_with_identical_artifacts() {
    let dir = tmpdir("warm");

    let cold = run_farm(&dir, "cold");
    assert_eq!(json_u64(&cold, "snapshot_hits"), 0, "{cold}");
    let loaded = json_u64(&cold, "loaded");
    assert_eq!(loaded, 0, "cold run must not load anything: {cold}");

    let warm = run_farm(&dir, "warm");
    let jobs = json_u64(&warm, "jobs");
    let snapshot_hits = json_u64(&warm, "snapshot_hits");
    assert!(jobs > 0, "{warm}");
    assert!(
        snapshot_hits * 10 >= jobs * 9,
        "warm run must hit the snapshot for >=90% of jobs \
         ({snapshot_hits}/{jobs}): {warm}"
    );
    assert_eq!(json_u64(&warm, "misses"), 0, "{warm}");
    assert_eq!(json_u64(&warm, "skipped"), 0, "{warm}");

    // Byte-identical machine tables between the cold and warm processes.
    let cold_dir = dir.join("machines-cold");
    let warm_dir = dir.join("machines-warm");
    let mut names: Vec<String> = std::fs::read_dir(&cold_dir)
        .expect("cold machines dir")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .into_string()
                .expect("utf8")
        })
        .collect();
    names.sort();
    assert!(!names.is_empty(), "cold run dumped no machines");
    for name in &names {
        let cold_bytes = std::fs::read(cold_dir.join(name)).expect("cold table");
        let warm_bytes = std::fs::read(warm_dir.join(name)).expect("warm table");
        assert_eq!(cold_bytes, warm_bytes, "{name}: artifacts differ");
    }

    // `fsmgen cache verify` agrees the snapshot is intact.
    let out = fsmgen()
        .args([
            "cache",
            "verify",
            "--cache-file",
            dir.join("designs.fsnap").to_str().expect("utf8 path"),
        ])
        .output()
        .expect("cache verify runs");
    assert!(out.status.success());

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn corrupted_snapshot_is_skipped_not_fatal() {
    let dir = tmpdir("corrupt");
    let snap = dir.join("designs.fsnap");

    let _ = run_farm(&dir, "cold");

    // Flip a byte in the middle of the first record's payload.
    let mut bytes = std::fs::read(&snap).expect("snapshot exists");
    assert!(bytes.len() > 64, "snapshot too small to corrupt");
    bytes[40] ^= 0xFF;
    std::fs::write(&snap, &bytes).expect("rewrite snapshot");

    // `cache verify` flags it with a nonzero exit.
    let out = fsmgen()
        .args([
            "cache",
            "verify",
            "--cache-file",
            snap.to_str().expect("utf8"),
        ])
        .output()
        .expect("cache verify runs");
    assert!(!out.status.success(), "verify must fail on corruption");

    // A warm farm run still succeeds; the bad record is just skipped and
    // its job recomputed as a plain miss.
    let warm = run_farm(&dir, "warm");
    assert!(json_u64(&warm, "skipped") >= 1, "{warm}");
    assert!(json_u64(&warm, "misses") >= 1, "{warm}");

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
