//! Memory-access workload generation and the cache-exclusion experiment
//! harness, including training a custom FSM exclusion policy with the
//! paper's design flow.

use crate::cache::{Cache, CacheStats};
use crate::policy::AllocationPolicy;
use fsmgen::{Design, DesignError, Designer, MarkovModel};
use fsmgen_traces::HistoryRegister;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One memory access: the load/store instruction and the byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryAccess {
    /// Instruction address.
    pub pc: u64,
    /// Effective byte address.
    pub addr: u64,
}

/// Access-pattern model of one static memory instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Streaming: a new line every time, never reused — the classic
    /// cache-polluting behaviour exclusion targets.
    Stream {
        /// Bytes between consecutive accesses.
        stride: u64,
    },
    /// A resident working set revisited round-robin (reused heavily).
    LoopingArray {
        /// Working-set size in bytes.
        bytes: u64,
        /// Access stride within the array.
        stride: u64,
    },
    /// Uniform random accesses within a (large) region.
    RandomRegion {
        /// Region size in bytes.
        bytes: u64,
    },
}

/// A synthetic memory workload: static instructions executed round-robin.
#[derive(Debug, Clone)]
pub struct MemoryWorkload {
    instructions: Vec<(u64, AccessPattern, u64)>, // (pc, pattern, base)
}

impl MemoryWorkload {
    /// Builds a workload from `(pc, pattern)` pairs; each instruction gets
    /// its own disjoint address region.
    ///
    /// # Panics
    ///
    /// Panics if `instructions` is empty.
    #[must_use]
    pub fn new(instructions: Vec<(u64, AccessPattern)>) -> Self {
        assert!(!instructions.is_empty(), "a workload needs instructions");
        MemoryWorkload {
            instructions: instructions
                .into_iter()
                .enumerate()
                .map(|(i, (pc, p))| (pc, p, 0x1000_0000 + (i as u64) * 0x100_0000))
                .collect(),
        }
    }

    /// The mixed workload of the §2.4 story: a resident array being
    /// polluted by streams. Deterministic per seed.
    #[must_use]
    pub fn pollution_mix() -> Self {
        MemoryWorkload::new(vec![
            (
                0x100,
                AccessPattern::LoopingArray {
                    bytes: 6 * 1024,
                    stride: 32,
                },
            ),
            (0x104, AccessPattern::Stream { stride: 64 }),
            (0x108, AccessPattern::Stream { stride: 32 }),
            (
                0x10c,
                AccessPattern::LoopingArray {
                    bytes: 1024,
                    stride: 32,
                },
            ),
            (
                0x110,
                AccessPattern::RandomRegion {
                    bytes: 4 * 1024 * 1024,
                },
            ),
        ])
    }

    /// Generates `n` accesses.
    #[must_use]
    pub fn generate(&self, n: usize, seed: u64) -> Vec<MemoryAccess> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counters = vec![0u64; self.instructions.len()];
        let mut out = Vec::with_capacity(n);
        let mut i = 0usize;
        while out.len() < n {
            let idx = i % self.instructions.len();
            let (pc, pattern, base) = &self.instructions[idx];
            let step = counters[idx];
            counters[idx] += 1;
            let addr = match pattern {
                AccessPattern::Stream { stride } => base + step * stride,
                AccessPattern::LoopingArray { bytes, stride } => {
                    base + (step * stride) % (*bytes).max(1)
                }
                AccessPattern::RandomRegion { bytes } => base + rng.random_range(0..*bytes),
            };
            out.push(MemoryAccess { pc: *pc, addr });
            i += 1;
        }
        out
    }
}

/// Runs a cache with an allocation policy over an access stream.
pub fn run_cache<P: AllocationPolicy + ?Sized>(
    cache: &mut Cache,
    policy: &mut P,
    accesses: &[MemoryAccess],
) -> CacheStats {
    for a in accesses {
        let allocate = cache.probe(a.addr) || policy.should_allocate(a.pc);
        let (_, report) = cache.access(a.pc, a.addr, allocate);
        if let Some(r) = report {
            policy.observe(r);
        }
    }
    *cache.stats()
}

/// Builds the per-instruction reuse Markov model by running the cache
/// with always-allocate and recording, per allocating instruction, the
/// history of "line reused before eviction" bits — the §4 training input
/// for the FSM exclusion policy.
#[must_use]
pub fn reuse_model(cache: &mut Cache, accesses: &[MemoryAccess], order: usize) -> MarkovModel {
    let mut model = MarkovModel::new(order);
    let mut histories: BTreeMap<u64, HistoryRegister> = BTreeMap::new();
    for a in accesses {
        let (_, report) = cache.access(a.pc, a.addr, true);
        if let Some(r) = report {
            let h = histories
                .entry(r.allocator_pc)
                .or_insert_with(|| HistoryRegister::new(order));
            if h.is_full() {
                model.observe(h.value(), r.reused);
            }
            h.push(r.reused);
        }
    }
    model
}

/// Designs an FSM exclusion machine from a training access stream.
///
/// # Errors
///
/// Propagates [`DesignError`] when the reuse stream is too short or
/// unconstrained.
pub fn design_exclusion_fsm(
    training: &[MemoryAccess],
    cache_geometry: &Cache,
    order: usize,
) -> Result<Design, DesignError> {
    let mut cache = cache_geometry.clone();
    let model = reuse_model(&mut cache, training, order);
    // Exclusion costs are asymmetric: wrongly bypassing a reusable line
    // costs a miss plus a later refill, while wrongly allocating a dead
    // line costs one eviction. Also, the training run (always-allocate)
    // under-reports reuse because pollution evicts resident lines early.
    // Both push the operating point toward "allocate unless clearly
    // streaming": predict-allocate whenever P[reused | history] >= 0.3.
    Designer::new(order)
        .prob_threshold(0.3)
        .design_from_model(model)
}

/// [`design_exclusion_fsm`] routed through a design `farm`: the reuse
/// model is built exactly as in the serial flow, then designed as a farm
/// job so repeated geometries and training streams hit the design cache —
/// including warm hits from a persistent snapshot the caller loaded into
/// the farm.
///
/// # Errors
///
/// Returns [`fsmgen_farm::FarmError`], which wraps the serial flow's
/// [`DesignError`] and adds the farm's own failure modes (contained
/// worker panics, injected faults).
pub fn design_exclusion_fsm_farmed(
    training: &[MemoryAccess],
    cache_geometry: &Cache,
    order: usize,
    farm: &fsmgen_farm::Farm,
) -> Result<Design, fsmgen_farm::FarmError> {
    let mut cache = cache_geometry.clone();
    let model = reuse_model(&mut cache, training, order);
    let designer = Designer::new(order).prob_threshold(0.3);
    let job = fsmgen_farm::DesignJob::from_model(0, model, designer);
    let mut report = farm.design_batch(vec![job]);
    let outcome = report
        .outcomes
        .pop()
        .unwrap_or_else(|| unreachable!("one job in, one outcome out"));
    outcome.result.map(|d| (*d).clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AlwaysAllocate, CounterExclusion, FsmExclusion};

    #[test]
    fn workload_is_deterministic() {
        let w = MemoryWorkload::pollution_mix();
        assert_eq!(w.generate(1_000, 7), w.generate(1_000, 7));
        assert_ne!(w.generate(1_000, 7), w.generate(1_000, 8));
    }

    #[test]
    fn counter_exclusion_beats_always_allocate_on_pollution() {
        let w = MemoryWorkload::pollution_mix();
        let accesses = w.generate(60_000, 1);
        let base = run_cache(&mut Cache::embedded_8k(), &mut AlwaysAllocate, &accesses);
        let excl = run_cache(
            &mut Cache::embedded_8k(),
            &mut CounterExclusion::new(3, 0),
            &accesses,
        );
        assert!(
            excl.hit_rate() > base.hit_rate() + 0.03,
            "exclusion {:.3} vs baseline {:.3}",
            excl.hit_rate(),
            base.hit_rate()
        );
        assert!(excl.bypasses > 0, "streams must be bypassed");
    }

    #[test]
    fn designed_fsm_exclusion_matches_or_beats_counters() {
        let w = MemoryWorkload::pollution_mix();
        let train = w.generate(60_000, 1);
        let eval = w.generate(60_000, 2);

        let design = design_exclusion_fsm(&train, &Cache::embedded_8k(), 4)
            .expect("reuse stream is long enough");
        let mut fsm_policy = FsmExclusion::new(design.into_fsm(), "fsm-excl-h4");
        let fsm = run_cache(&mut Cache::embedded_8k(), &mut fsm_policy, &eval);

        let counter = run_cache(
            &mut Cache::embedded_8k(),
            &mut CounterExclusion::new(3, 0),
            &eval,
        );
        let base = run_cache(&mut Cache::embedded_8k(), &mut AlwaysAllocate, &eval);

        assert!(
            fsm.hit_rate() > base.hit_rate() + 0.10,
            "FSM must clearly beat always-allocate: {:.3} vs {:.3}",
            fsm.hit_rate(),
            base.hit_rate()
        );
        // The online counter adapts during the run while the FSM is fixed
        // at design time, so a small gap is expected; competitive means
        // within a few points.
        assert!(
            fsm.hit_rate() > counter.hit_rate() - 0.04,
            "FSM {:.3} should be competitive with counters {:.3}",
            fsm.hit_rate(),
            counter.hit_rate()
        );
    }

    #[test]
    fn farmed_exclusion_design_matches_serial_and_warm_starts() {
        let w = MemoryWorkload::pollution_mix();
        let train = w.generate(40_000, 1);

        let serial = design_exclusion_fsm(&train, &Cache::embedded_8k(), 4)
            .expect("reuse stream is long enough");
        let farm = fsmgen_farm::Farm::new(fsmgen_farm::FarmConfig {
            workers: 1,
            cache_capacity: 8,
        });
        let farmed = design_exclusion_fsm_farmed(&train, &Cache::embedded_8k(), 4, &farm)
            .expect("farmed design succeeds");
        assert_eq!(serial.fsm(), farmed.fsm(), "farmed flow must match serial");

        // Round-trip through a snapshot: a second farm serves the same
        // design warm, without redesigning.
        let dir = std::env::temp_dir().join(format!("fsmgen-cache-warm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("exclusion.fsnap");
        farm.save_cache_snapshot(&path).expect("snapshot saves");

        let warm_farm = fsmgen_farm::Farm::new(fsmgen_farm::FarmConfig {
            workers: 1,
            cache_capacity: 8,
        });
        warm_farm
            .load_cache_snapshot(&path)
            .expect("snapshot loads");
        let warm = design_exclusion_fsm_farmed(&train, &Cache::embedded_8k(), 4, &warm_farm)
            .expect("warm design succeeds");
        assert_eq!(serial.fsm(), warm.fsm(), "warm flow must match serial");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reuse_model_sees_observations() {
        let w = MemoryWorkload::pollution_mix();
        let accesses = w.generate(20_000, 3);
        let mut cache = Cache::embedded_8k();
        let model = reuse_model(&mut cache, &accesses, 3);
        assert!(model.total_observations() > 1_000);
    }

    #[test]
    #[should_panic(expected = "needs instructions")]
    fn empty_workload_rejected() {
        let _ = MemoryWorkload::new(vec![]);
    }
}
