//! Stream-buffer prefetching with predictor-guided allocation (§2.4):
//! "prefetching architectures have used FSM predictors to determine when
//! to initiate prefetching for a load and to guide stream buffer
//! allocation" (citing Sherwood, Sair & Calder's predictor-directed
//! stream buffers).
//!
//! A [`StreamBufferUnit`] holds a few buffers, each following one
//! sequential stream of cache lines. On a cache miss an
//! [`AllocationFilter`] decides whether the missing load deserves a
//! buffer; useful streams then convert subsequent misses into prefetch
//! hits. The filter is the predictor under study: allocate-always,
//! per-PC counters trained on "did the buffer get hits", or an instance
//! of an automatically designed FSM over the same feedback stream.

use fsmgen_automata::{Dfa, MoorePredictor};
use fsmgen_bpred::SaturatingCounter;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Feedback when a stream buffer is recycled: did it supply any hits?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamReport {
    /// PC of the load that allocated the buffer.
    pub allocator_pc: u64,
    /// Lines the buffer supplied before being recycled.
    pub hits: u32,
}

/// Decides whether a missing load may allocate a stream buffer.
pub trait AllocationFilter {
    /// May the miss by `pc` take a buffer?
    fn should_allocate(&mut self, pc: u64) -> bool;

    /// Feedback from a recycled buffer.
    fn observe(&mut self, report: StreamReport);

    /// Short description.
    fn describe(&self) -> String;
}

/// Allocate a buffer on every miss (classic stream buffers).
#[derive(Debug, Clone, Default)]
pub struct AllocateAlways;

impl AllocationFilter for AllocateAlways {
    fn should_allocate(&mut self, _pc: u64) -> bool {
        true
    }

    fn observe(&mut self, _report: StreamReport) {}

    fn describe(&self) -> String {
        "allocate-always".to_string()
    }
}

/// How often a denied load may allocate anyway, so its usefulness can be
/// re-sampled (feedback only arrives from allocated buffers).
pub const FILTER_RETRY_PERIOD: u32 = 32;

/// Per-PC counter filter: useful buffers increment, useless ones
/// decrement; denied loads re-probe periodically.
#[derive(Debug, Clone)]
pub struct CounterFilter {
    counters: BTreeMap<u64, SaturatingCounter>,
    denied_streak: BTreeMap<u64, u32>,
}

impl CounterFilter {
    /// A 2-bit filter starting weakly-allocate.
    #[must_use]
    pub fn two_bit() -> Self {
        CounterFilter {
            counters: BTreeMap::new(),
            denied_streak: BTreeMap::new(),
        }
    }

    fn counter(&mut self, pc: u64) -> &mut SaturatingCounter {
        self.counters
            .entry(pc)
            .or_insert_with(|| SaturatingCounter::two_bit().with_value(2))
    }
}

impl AllocationFilter for CounterFilter {
    fn should_allocate(&mut self, pc: u64) -> bool {
        if self.counter(pc).predict() {
            self.denied_streak.insert(pc, 0);
            return true;
        }
        let streak = self.denied_streak.entry(pc).or_insert(0);
        *streak += 1;
        if *streak >= FILTER_RETRY_PERIOD {
            *streak = 0;
            true // periodic re-probe
        } else {
            false
        }
    }

    fn observe(&mut self, report: StreamReport) {
        self.counter(report.allocator_pc).update(report.hits > 0);
    }

    fn describe(&self) -> String {
        "counter-filter-2bit".to_string()
    }
}

/// FSM filter: per-PC instances of one designed machine over the
/// "buffer was useful" feedback stream.
#[derive(Debug, Clone)]
pub struct FsmFilter {
    machine: Arc<Dfa>,
    instances: BTreeMap<u64, MoorePredictor>,
    denied_streak: BTreeMap<u64, u32>,
    label: String,
}

impl FsmFilter {
    /// Wraps a designed machine whose input is "buffer was useful" and
    /// whose output means "allocate".
    #[must_use]
    pub fn new(machine: impl Into<Arc<Dfa>>, label: impl Into<String>) -> Self {
        FsmFilter {
            machine: machine.into(),
            instances: BTreeMap::new(),
            denied_streak: BTreeMap::new(),
            label: label.into(),
        }
    }
}

impl AllocationFilter for FsmFilter {
    fn should_allocate(&mut self, pc: u64) -> bool {
        if self.instances.get(&pc).is_none_or(MoorePredictor::predict) {
            self.denied_streak.insert(pc, 0);
            return true;
        }
        let streak = self.denied_streak.entry(pc).or_insert(0);
        *streak += 1;
        if *streak >= FILTER_RETRY_PERIOD {
            *streak = 0;
            true // periodic re-probe
        } else {
            false
        }
    }

    fn observe(&mut self, report: StreamReport) {
        let machine = Arc::clone(&self.machine);
        self.instances
            .entry(report.allocator_pc)
            .or_insert_with(|| MoorePredictor::new(machine))
            .update(report.hits > 0);
    }

    fn describe(&self) -> String {
        self.label.clone()
    }
}

#[derive(Debug, Clone, Copy)]
struct Buffer {
    valid: bool,
    allocator_pc: u64,
    /// Next line address the buffer holds.
    next_line: u64,
    /// Remaining prefetched lines.
    depth: u32,
    hits: u32,
    /// LRU stamp for recycling.
    stamp: u64,
}

/// Aggregate stream-buffer statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Misses presented to the unit.
    pub misses: usize,
    /// Misses satisfied by a buffer (prefetch hits).
    pub prefetch_hits: usize,
    /// Buffers allocated.
    pub allocations: usize,
    /// Buffers recycled without a single hit (wasted bandwidth).
    pub useless_buffers: usize,
}

impl StreamStats {
    /// Fraction of misses covered by prefetching.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / self.misses as f64
        }
    }

    /// Fraction of allocated buffers that were useful.
    #[must_use]
    pub fn usefulness(&self) -> f64 {
        if self.allocations == 0 {
            0.0
        } else {
            1.0 - self.useless_buffers as f64 / self.allocations as f64
        }
    }
}

/// A small unit of sequential stream buffers with predictor-guided
/// allocation.
#[derive(Debug, Clone)]
pub struct StreamBufferUnit {
    buffers: Vec<Buffer>,
    line_bits: u32,
    depth: u32,
    clock: u64,
    stats: StreamStats,
}

impl StreamBufferUnit {
    /// Creates a unit of `buffers` stream buffers prefetching `depth`
    /// lines of `2^line_bits` bytes each.
    ///
    /// # Panics
    ///
    /// Panics if `buffers` or `depth` is zero.
    #[must_use]
    pub fn new(buffers: usize, depth: u32, line_bits: u32) -> Self {
        assert!(buffers > 0 && depth > 0, "unit needs buffers and depth");
        StreamBufferUnit {
            buffers: vec![
                Buffer {
                    valid: false,
                    allocator_pc: 0,
                    next_line: 0,
                    depth: 0,
                    hits: 0,
                    stamp: 0,
                };
                buffers
            ],
            line_bits,
            depth,
            clock: 0,
            stats: StreamStats::default(),
        }
    }

    /// Presents a cache miss to the unit. Returns `true` when a buffer
    /// supplied the line (prefetch hit); otherwise the filter may
    /// allocate a new buffer starting at the next sequential line.
    /// Recycled buffers report to the filter.
    pub fn miss<F: AllocationFilter + ?Sized>(
        &mut self,
        pc: u64,
        addr: u64,
        filter: &mut F,
    ) -> bool {
        self.clock += 1;
        self.stats.misses += 1;
        let line = addr >> self.line_bits;

        // Check buffers for the line.
        for b in &mut self.buffers {
            if b.valid && b.depth > 0 && b.next_line == line {
                // Hit: the buffer advances down its stream.
                b.next_line += 1;
                b.depth -= 1;
                b.hits += 1;
                b.stamp = self.clock;
                if b.depth == 0 {
                    b.valid = false;
                    filter.observe(StreamReport {
                        allocator_pc: b.allocator_pc,
                        hits: b.hits,
                    });
                }
                self.stats.prefetch_hits += 1;
                return true;
            }
        }

        if !filter.should_allocate(pc) {
            return false;
        }
        // Recycle the LRU buffer.
        let victim = (0..self.buffers.len())
            .min_by_key(|&i| (self.buffers[i].valid, self.buffers[i].stamp))
            .expect("at least one buffer");
        let old = self.buffers[victim];
        if old.valid {
            if old.hits == 0 {
                self.stats.useless_buffers += 1;
            }
            filter.observe(StreamReport {
                allocator_pc: old.allocator_pc,
                hits: old.hits,
            });
        }
        self.stats.allocations += 1;
        self.buffers[victim] = Buffer {
            valid: true,
            allocator_pc: pc,
            next_line: line + 1,
            depth: self.depth,
            hits: 0,
            stamp: self.clock,
        };
        false
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_misses_are_covered() {
        let mut unit = StreamBufferUnit::new(2, 8, 5);
        let mut filter = AllocateAlways;
        let mut covered = 0;
        for i in 0..100u64 {
            if unit.miss(0x40, i * 32, &mut filter) {
                covered += 1;
            }
        }
        // After the first allocation, subsequent lines hit until the
        // buffer drains and is re-allocated.
        assert!(covered > 80, "covered {covered}/100");
        assert!(unit.stats().coverage() > 0.8);
    }

    #[test]
    fn random_misses_gain_nothing() {
        let mut unit = StreamBufferUnit::new(2, 8, 5);
        let mut filter = AllocateAlways;
        let mut state = 1u64;
        let mut covered = 0;
        for _ in 0..300 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            if unit.miss(0x80, state & 0xFFFF_FFE0, &mut filter) {
                covered += 1;
            }
        }
        assert!(covered < 5, "random stream should not prefetch: {covered}");
        assert!(unit.stats().usefulness() < 0.1);
    }

    #[test]
    fn counter_filter_protects_buffers_from_random_load() {
        // One sequential load and one random load compete for ONE buffer.
        // Without a filter the random load constantly steals it; the
        // counter filter learns to deny the random PC.
        let run = |filter: &mut dyn AllocationFilter| {
            let mut unit = StreamBufferUnit::new(1, 8, 5);
            let mut state = 9u64;
            let mut seq_covered = 0usize;
            for i in 0..2_000u64 {
                if unit.miss(0x40, i * 32, filter) {
                    seq_covered += 1;
                }
                state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
                unit.miss(0x80, state & 0xFFFF_FFE0, filter);
            }
            seq_covered
        };
        let unfiltered = run(&mut AllocateAlways);
        let filtered = run(&mut CounterFilter::two_bit());
        assert!(
            filtered > unfiltered * 3,
            "filter must protect the stream: {filtered} vs {unfiltered}"
        );
    }

    #[test]
    fn fsm_filter_behaves_like_its_machine() {
        // Machine: allocate unless the last two buffers were useless.
        let machine =
            fsmgen_automata::compile_patterns(&[vec![Some(true), None], vec![None, Some(true)]]);
        let mut f = FsmFilter::new(machine, "fsm-filter");
        assert!(f.should_allocate(0x9));
        for _ in 0..2 {
            f.observe(StreamReport {
                allocator_pc: 0x9,
                hits: 0,
            });
        }
        assert!(!f.should_allocate(0x9));
        f.observe(StreamReport {
            allocator_pc: 0x9,
            hits: 3,
        });
        assert!(f.should_allocate(0x9));
        assert_eq!(f.describe(), "fsm-filter");
    }

    #[test]
    #[should_panic(expected = "buffers and depth")]
    fn zero_buffers_rejected() {
        let _ = StreamBufferUnit::new(0, 4, 5);
    }
}
