//! A set-associative, LRU, write-allocate data cache model with
//! allocation feedback: each evicted line reports whether it was reused
//! after fill, which is exactly the signal cache-exclusion predictors
//! train on.

use serde::{Deserialize, Serialize};

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Access {
    /// The line was present.
    Hit,
    /// The line was absent and (depending on policy) allocated.
    Miss,
}

/// Feedback produced when a line leaves the cache (eviction) or when an
/// allocation decision can be scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvictionReport {
    /// PC of the instruction that allocated the line.
    pub allocator_pc: u64,
    /// Whether the line was referenced again between fill and eviction.
    pub reused: bool,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    /// LRU stamp: larger = more recent.
    stamp: u64,
    allocator_pc: u64,
    reused: bool,
}

/// Aggregate cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: usize,
    /// Hits.
    pub hits: usize,
    /// Misses that allocated a line.
    pub allocations: usize,
    /// Misses that bypassed the cache.
    pub bypasses: usize,
    /// Evicted lines that were never reused (pollution).
    pub dead_evictions: usize,
}

impl CacheStats {
    /// Hit rate over all accesses.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement and optional
/// allocation bypass.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    line_bits: u32,
    lines: Vec<Line>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache with `sets` sets of `ways` lines of
    /// `2^line_bits` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    #[must_use]
    pub fn new(sets: usize, ways: usize, line_bits: u32) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways > 0, "associativity must be positive");
        Cache {
            sets,
            ways,
            line_bits,
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    stamp: 0,
                    allocator_pc: 0,
                    reused: false,
                };
                sets * ways
            ],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// A small embedded-class data cache: 64 sets x 4 ways x 32-byte
    /// lines = 8 KiB.
    #[must_use]
    pub fn embedded_8k() -> Self {
        Cache::new(64, 4, 5)
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.line_bits) as usize) & (self.sets - 1)
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr >> self.line_bits >> self.sets.trailing_zeros()
    }

    /// Probes without updating state: would `addr` hit?
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.lines[set * self.ways..(set + 1) * self.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Performs an access by instruction `pc` to `addr`. On a miss,
    /// `allocate` decides whether the line is brought in; the return
    /// value carries the access outcome plus, when an allocation evicted
    /// a valid line, that line's reuse report.
    pub fn access(
        &mut self,
        pc: u64,
        addr: u64,
        allocate: bool,
    ) -> (Access, Option<EvictionReport>) {
        self.clock += 1;
        self.stats.accesses += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.ways;

        // Hit path.
        for line in &mut self.lines[base..base + self.ways] {
            if line.valid && line.tag == tag {
                line.stamp = self.clock;
                line.reused = true;
                self.stats.hits += 1;
                return (Access::Hit, None);
            }
        }

        // Miss path.
        if !allocate {
            self.stats.bypasses += 1;
            return (Access::Miss, None);
        }
        self.stats.allocations += 1;
        let victim = (base..base + self.ways)
            .min_by_key(|&i| (self.lines[i].valid, self.lines[i].stamp))
            .expect("ways >= 1");
        let old = self.lines[victim];
        let report = old.valid.then(|| {
            if !old.reused {
                self.stats.dead_evictions += 1;
            }
            EvictionReport {
                allocator_pc: old.allocator_pc,
                reused: old.reused,
            }
        });
        self.lines[victim] = Line {
            tag,
            valid: true,
            stamp: self.clock,
            allocator_pc: pc,
            reused: false,
        };
        (Access::Miss, report)
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Total lines.
    #[must_use]
    pub fn capacity_lines(&self) -> usize {
        self.sets * self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = Cache::new(4, 2, 5);
        let (a, _) = c.access(0x10, 0x1000, true);
        assert_eq!(a, Access::Miss);
        let (a, _) = c.access(0x10, 0x1000, true);
        assert_eq!(a, Access::Hit);
        assert_eq!(c.stats().hits, 1);
        assert!(c.probe(0x1000));
        // Same line, different byte.
        let (a, _) = c.access(0x10, 0x101f, true);
        assert_eq!(a, Access::Hit);
    }

    #[test]
    fn lru_evicts_oldest_and_reports_reuse() {
        let mut c = Cache::new(1, 2, 5); // one set, 2 ways
        c.access(0x1, 0x000, true);
        c.access(0x2, 0x100, true);
        c.access(0x1, 0x000, true); // touch line 0 -> line 0x100 is LRU
        let (_, report) = c.access(0x3, 0x200, true);
        let r = report.expect("eviction happened");
        assert_eq!(r.allocator_pc, 0x2);
        assert!(!r.reused, "0x100 was never touched again");
        assert!(c.probe(0x000), "recently used line survives");
        assert!(!c.probe(0x100));
    }

    #[test]
    fn bypass_leaves_cache_untouched() {
        let mut c = Cache::new(4, 2, 5);
        c.access(0x1, 0x400, true);
        let before = c.probe(0x800);
        let (a, rep) = c.access(0x2, 0x800, false);
        assert_eq!(a, Access::Miss);
        assert!(rep.is_none());
        assert_eq!(c.probe(0x800), before);
        assert_eq!(c.stats().bypasses, 1);
        assert!(c.probe(0x400), "existing lines unaffected");
    }

    #[test]
    fn dead_eviction_accounting() {
        let mut c = Cache::new(1, 1, 5);
        c.access(0x1, 0x000, true);
        c.access(0x2, 0x100, true); // evicts 0x000, never reused
        assert_eq!(c.stats().dead_evictions, 1);
        c.access(0x2, 0x100, true); // reuse
        c.access(0x3, 0x200, true); // evicts 0x100, which WAS reused
        assert_eq!(c.stats().dead_evictions, 1);
    }

    #[test]
    fn streaming_thrashes_a_small_cache() {
        let mut c = Cache::embedded_8k();
        for i in 0..10_000u64 {
            c.access(0x40, i * 32, true);
        }
        assert!(c.stats().hit_rate() < 0.01, "pure streaming never reuses");
    }

    #[test]
    fn resident_loop_hits() {
        let mut c = Cache::embedded_8k();
        // 4 KiB loop fits in 8 KiB.
        for _ in 0..10 {
            for i in 0..128u64 {
                c.access(0x80, i * 32, true);
            }
        }
        assert!(c.stats().hit_rate() > 0.85, "got {}", c.stats().hit_rate());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = Cache::new(3, 2, 5);
    }
}
