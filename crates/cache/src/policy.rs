//! Cache-exclusion (allocation bypass) policies (§2.4): "Cache management
//! schemes have been proposed that perform intelligent replacement, cache
//! exclusion, and they use a small FSM counter to determine when the
//! optimization should be applied."
//!
//! The policy watches, per static instruction, whether the lines it
//! allocates get reused before eviction; streaming instructions whose
//! lines die unused are made to bypass the cache, protecting resident
//! data. Three policies are provided: always-allocate (the baseline),
//! per-PC saturating counters (Tyson et al.), and instances of an
//! automatically designed FSM fed the same reuse stream — the paper's
//! flow pointed at cache management.

use crate::cache::EvictionReport;
use fsmgen_automata::{Dfa, MoorePredictor};
use fsmgen_bpred::SaturatingCounter;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Decides whether a missing line should be allocated, and learns from
/// eviction feedback.
pub trait AllocationPolicy {
    /// Should the miss by instruction `pc` allocate a line?
    fn should_allocate(&mut self, pc: u64) -> bool;

    /// Feeds back one evicted line's fate.
    fn observe(&mut self, report: EvictionReport);

    /// Short description for reporting.
    fn describe(&self) -> String;
}

/// The baseline: every miss allocates.
#[derive(Debug, Clone, Default)]
pub struct AlwaysAllocate;

impl AllocationPolicy for AlwaysAllocate {
    fn should_allocate(&mut self, _pc: u64) -> bool {
        true
    }

    fn observe(&mut self, _report: EvictionReport) {}

    fn describe(&self) -> String {
        "always-allocate".to_string()
    }
}

/// How often an excluded instruction is allowed to allocate anyway, to
/// re-sample its reuse behaviour (all real exclusion schemes re-probe;
/// without it an instruction excluded once could never recover, since
/// feedback only arrives from allocated lines).
pub const RETRY_PERIOD: u32 = 64;

/// Per-PC saturating-counter exclusion: reuse increments, a dead eviction
/// decrements; instructions whose counter falls to the floor bypass
/// (with periodic retry).
#[derive(Debug, Clone)]
pub struct CounterExclusion {
    counters: BTreeMap<u64, SaturatingCounter>,
    bypass_streak: BTreeMap<u64, u32>,
    max: u32,
    threshold: u32,
}

impl CounterExclusion {
    /// Creates the policy with the given counter shape; a common choice
    /// is `max = 3, threshold = 0` (bypass only when pinned at zero).
    #[must_use]
    pub fn new(max: u32, threshold: u32) -> Self {
        CounterExclusion {
            counters: BTreeMap::new(),
            bypass_streak: BTreeMap::new(),
            max,
            threshold,
        }
    }

    fn counter(&mut self, pc: u64) -> &mut SaturatingCounter {
        let (max, threshold) = (self.max, self.threshold);
        self.counters
            .entry(pc)
            .or_insert_with(|| SaturatingCounter::new(max, 1, 1, threshold).with_value(max))
    }
}

impl AllocationPolicy for CounterExclusion {
    fn should_allocate(&mut self, pc: u64) -> bool {
        if self.counter(pc).predict() {
            self.bypass_streak.insert(pc, 0);
            return true;
        }
        let streak = self.bypass_streak.entry(pc).or_insert(0);
        *streak += 1;
        if *streak >= RETRY_PERIOD {
            *streak = 0;
            true // periodic re-probe
        } else {
            false
        }
    }

    fn observe(&mut self, report: EvictionReport) {
        self.counter(report.allocator_pc).update(report.reused);
    }

    fn describe(&self) -> String {
        format!("counter-excl(m{},t{})", self.max, self.threshold)
    }
}

/// FSM-driven exclusion: each static instruction runs an instance of one
/// automatically designed machine over its reuse history; the machine's
/// output is "allocate".
#[derive(Debug, Clone)]
pub struct FsmExclusion {
    machine: Arc<Dfa>,
    instances: BTreeMap<u64, MoorePredictor>,
    bypass_streak: BTreeMap<u64, u32>,
    /// Instructions with no feedback yet allocate by default.
    label: String,
}

impl FsmExclusion {
    /// Creates the policy around a designed machine whose input alphabet
    /// is "line was reused" and whose output means "allocate".
    #[must_use]
    pub fn new(machine: impl Into<Arc<Dfa>>, label: impl Into<String>) -> Self {
        FsmExclusion {
            machine: machine.into(),
            instances: BTreeMap::new(),
            bypass_streak: BTreeMap::new(),
            label: label.into(),
        }
    }
}

impl AllocationPolicy for FsmExclusion {
    fn should_allocate(&mut self, pc: u64) -> bool {
        let allocate = match self.instances.get(&pc) {
            Some(p) => p.predict(),
            None => true, // no evidence yet
        };
        if allocate {
            self.bypass_streak.insert(pc, 0);
            return true;
        }
        let streak = self.bypass_streak.entry(pc).or_insert(0);
        *streak += 1;
        if *streak >= RETRY_PERIOD {
            *streak = 0;
            true // periodic re-probe
        } else {
            false
        }
    }

    fn observe(&mut self, report: EvictionReport) {
        let machine = Arc::clone(&self.machine);
        self.instances
            .entry(report.allocator_pc)
            .or_insert_with(|| MoorePredictor::new(machine))
            .update(report.reused);
    }

    fn describe(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmgen_automata::compile_patterns;

    #[test]
    fn always_allocate_never_bypasses() {
        let mut p = AlwaysAllocate;
        assert!(p.should_allocate(0x1));
        p.observe(EvictionReport {
            allocator_pc: 0x1,
            reused: false,
        });
        assert!(p.should_allocate(0x1));
        assert_eq!(p.describe(), "always-allocate");
    }

    #[test]
    fn counter_learns_to_bypass_dead_allocators() {
        let mut p = CounterExclusion::new(3, 0);
        assert!(p.should_allocate(0x1), "optimistic start");
        for _ in 0..4 {
            p.observe(EvictionReport {
                allocator_pc: 0x1,
                reused: false,
            });
        }
        assert!(!p.should_allocate(0x1), "dead allocator excluded");
        // Reuse re-enables allocation.
        p.observe(EvictionReport {
            allocator_pc: 0x1,
            reused: true,
        });
        assert!(p.should_allocate(0x1));
        // Other PCs unaffected.
        assert!(p.should_allocate(0x2));
    }

    #[test]
    fn fsm_exclusion_follows_its_machine() {
        // Allocate unless the last two evictions were both dead: the
        // machine predicts 1 ("allocate") except after history 00.
        let machine = compile_patterns(&[vec![Some(true), None], vec![None, Some(true)]]);
        let mut p = FsmExclusion::new(machine, "fsm-excl");
        assert!(p.should_allocate(0x9), "no evidence yet");
        let dead = EvictionReport {
            allocator_pc: 0x9,
            reused: false,
        };
        p.observe(dead);
        p.observe(dead);
        assert!(!p.should_allocate(0x9), "two dead evictions exclude");
        p.observe(EvictionReport {
            allocator_pc: 0x9,
            reused: true,
        });
        assert!(p.should_allocate(0x9));
        assert_eq!(p.describe(), "fsm-excl");
    }
}
