//! Cache management with FSM predictors — the §2.4 application.
//!
//! "Cache management schemes have been proposed that perform intelligent
//! replacement, cache exclusion, and they use a small FSM counter to
//! determine when the optimization should be applied" (Sherwood &
//! Calder, ISCA 2001, citing McFarling and Tyson et al.).
//!
//! This crate provides the substrate and the experiment: a set-associative
//! LRU [`Cache`] whose evictions report whether each line was reused, an
//! [`AllocationPolicy`] deciding which misses may allocate
//! (always-allocate baseline, per-PC [`CounterExclusion`], and
//! [`FsmExclusion`] running automatically designed machines), plus
//! synthetic memory workloads and [`design_exclusion_fsm`], which runs
//! the paper's design flow on the observed reuse streams.
//!
//! # Examples
//!
//! ```
//! use fsmgen_cache::{
//!     design_exclusion_fsm, run_cache, AlwaysAllocate, Cache, FsmExclusion,
//!     MemoryWorkload,
//! };
//!
//! let workload = MemoryWorkload::pollution_mix();
//! let train = workload.generate(40_000, 1);
//! let eval = workload.generate(40_000, 2);
//!
//! let design = design_exclusion_fsm(&train, &Cache::embedded_8k(), 4)?;
//! let mut policy = FsmExclusion::new(design.into_fsm(), "fsm-excl");
//! let with_fsm = run_cache(&mut Cache::embedded_8k(), &mut policy, &eval);
//! let baseline = run_cache(&mut Cache::embedded_8k(), &mut AlwaysAllocate, &eval);
//! assert!(with_fsm.hit_rate() > baseline.hit_rate());
//! # Ok::<(), fsmgen::DesignError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod harness;
mod policy;
mod stream;

pub use cache::{Access, Cache, CacheStats, EvictionReport};
pub use harness::{
    design_exclusion_fsm, design_exclusion_fsm_farmed, reuse_model, run_cache, AccessPattern,
    MemoryAccess, MemoryWorkload,
};
pub use policy::{AllocationPolicy, AlwaysAllocate, CounterExclusion, FsmExclusion, RETRY_PERIOD};
pub use stream::{
    AllocateAlways, AllocationFilter, CounterFilter, FsmFilter, StreamBufferUnit, StreamReport,
    StreamStats, FILTER_RETRY_PERIOD,
};
