//! Property-based tests for the cache substrate: geometry invariants,
//! LRU behaviour, statistics accounting and policy feedback plumbing.

use fsmgen_cache::{
    run_cache, AllocateAlways, AllocationPolicy, AlwaysAllocate, Cache, CounterExclusion,
    EvictionReport, MemoryAccess, StreamBufferUnit,
};
use proptest::prelude::*;

fn accesses_strategy() -> impl Strategy<Value = Vec<MemoryAccess>> {
    proptest::collection::vec((0u64..8, 0u64..1 << 14), 1..600).prop_map(|raw| {
        raw.into_iter()
            .map(|(pc, addr)| MemoryAccess {
                pc: 0x100 + pc * 4,
                addr: addr & !3, // word aligned
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Hits + allocations + bypasses always equals accesses, under any
    /// policy.
    #[test]
    fn stats_accounting(accesses in accesses_strategy()) {
        for policy in [0u8, 1] {
            let stats = if policy == 0 {
                run_cache(&mut Cache::new(8, 2, 5), &mut AlwaysAllocate, &accesses)
            } else {
                run_cache(
                    &mut Cache::new(8, 2, 5),
                    &mut CounterExclusion::new(3, 0),
                    &accesses,
                )
            };
            prop_assert_eq!(stats.accesses, accesses.len());
            prop_assert_eq!(
                stats.hits + stats.allocations + stats.bypasses,
                stats.accesses
            );
            prop_assert!(stats.dead_evictions <= stats.allocations);
            prop_assert!((0.0..=1.0).contains(&stats.hit_rate()));
        }
    }

    /// An access that just hit must hit again immediately (no policy can
    /// evict between two back-to-back touches of the same line).
    #[test]
    fn immediate_rereference_hits(accesses in accesses_strategy()) {
        let mut cache = Cache::new(8, 2, 5);
        let mut policy = AlwaysAllocate;
        for a in &accesses {
            cache.access(a.pc, a.addr, policy.should_allocate(a.pc));
            let (again, _) = cache.access(a.pc, a.addr, true);
            prop_assert_eq!(again, fsmgen_cache::Access::Hit);
        }
    }

    /// Eviction reports always name a PC that actually allocated earlier.
    #[test]
    fn eviction_reports_are_attributable(accesses in accesses_strategy()) {
        struct Recorder {
            allocators: std::collections::BTreeSet<u64>,
            reports: Vec<EvictionReport>,
        }
        impl AllocationPolicy for Recorder {
            fn should_allocate(&mut self, pc: u64) -> bool {
                self.allocators.insert(pc);
                true
            }
            fn observe(&mut self, report: EvictionReport) {
                self.reports.push(report);
            }
            fn describe(&self) -> String {
                "recorder".to_string()
            }
        }
        let mut rec = Recorder {
            allocators: std::collections::BTreeSet::new(),
            reports: Vec::new(),
        };
        run_cache(&mut Cache::new(4, 2, 5), &mut rec, &accesses);
        for r in &rec.reports {
            prop_assert!(
                rec.allocators.contains(&r.allocator_pc),
                "report from unknown allocator {:#x}",
                r.allocator_pc
            );
        }
    }

    /// The working set fits: accesses confined to the cache capacity
    /// never miss after the first touch of each line.
    #[test]
    fn resident_set_never_misses_after_warmup(lines in 1usize..8, rounds in 2usize..6) {
        let mut cache = Cache::new(8, 2, 5); // 16 lines capacity
        let mut misses_after_first_round = 0;
        for round in 0..rounds {
            for l in 0..lines {
                let (a, _) = cache.access(0x10, (l as u64) * 32, true);
                if round > 0 && a == fsmgen_cache::Access::Miss {
                    misses_after_first_round += 1;
                }
            }
        }
        prop_assert_eq!(misses_after_first_round, 0);
    }

    /// Stream buffer statistics are internally consistent.
    #[test]
    fn stream_stats_consistent(addrs in proptest::collection::vec(0u64..1 << 16, 1..300)) {
        let mut unit = StreamBufferUnit::new(2, 4, 5);
        let mut filter = AllocateAlways;
        for (i, &a) in addrs.iter().enumerate() {
            unit.miss(0x40 + (i as u64 % 3) * 4, a & !31, &mut filter);
        }
        let s = unit.stats();
        prop_assert_eq!(s.misses, addrs.len());
        prop_assert!(s.prefetch_hits <= s.misses);
        prop_assert!(s.useless_buffers <= s.allocations);
        prop_assert!((0.0..=1.0).contains(&s.coverage()));
        prop_assert!((0.0..=1.0).contains(&s.usefulness()));
    }
}
