//! Shift-register histories: the global/local history registers the paper's
//! architectures key their Markov models and prediction tables on.

use serde::{Deserialize, Serialize};

/// Maximum history length a [`HistoryRegister`] supports.
pub const MAX_HISTORY: usize = 32;

/// A fixed-length shift register of recent binary outcomes.
///
/// Bit 0 of [`HistoryRegister::value`] is the most recent outcome and bit
/// `len-1` the oldest, matching the minterm convention of the logic
/// minimizer: the history string `b_{N-1} … b_0` (oldest first when written
/// out) is the integer whose bit *i* is `b_i`.
///
/// # Examples
///
/// ```
/// use fsmgen_traces::HistoryRegister;
///
/// let mut h = HistoryRegister::new(3);
/// h.push(true);   // t-2 (oldest after the next two pushes)
/// h.push(false);  // t-1
/// h.push(true);   // t   (most recent)
/// assert_eq!(h.value(), 0b101);
/// assert!(h.is_full());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HistoryRegister {
    len: usize,
    bits: u32,
    seen: usize,
}

impl HistoryRegister {
    /// Creates an empty history of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or exceeds [`MAX_HISTORY`].
    #[must_use]
    pub fn new(len: usize) -> Self {
        assert!(
            len > 0 && len <= MAX_HISTORY,
            "history length must be in 1..={MAX_HISTORY}, got {len}"
        );
        HistoryRegister {
            len,
            bits: 0,
            seen: 0,
        }
    }

    /// Shifts in a new outcome as the most recent bit.
    pub fn push(&mut self, outcome: bool) {
        let mask = if self.len == 32 {
            u32::MAX
        } else {
            (1u32 << self.len) - 1
        };
        self.bits = ((self.bits << 1) | u32::from(outcome)) & mask;
        self.seen = (self.seen + 1).min(self.len);
    }

    /// The packed history, most recent outcome in bit 0.
    #[must_use]
    pub fn value(&self) -> u32 {
        self.bits
    }

    /// History length in bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the register has never been pushed. (A register is
    /// never zero-length, so this refers to outcomes seen, not capacity.)
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.seen == 0
    }

    /// `true` once at least `len` outcomes have been shifted in, i.e. no
    /// start-up bits remain undefined.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.seen == self.len
    }

    /// The outcome `age` steps back (0 = most recent), or `None` if that
    /// position has not been filled yet or is out of range.
    #[must_use]
    pub fn outcome(&self, age: usize) -> Option<bool> {
        if age < self.seen {
            Some(self.bits >> age & 1 == 1)
        } else {
            None
        }
    }

    /// Clears all history.
    pub fn reset(&mut self) {
        self.bits = 0;
        self.seen = 0;
    }

    /// Renders the history oldest-bit-first, like the paper writes
    /// patterns (e.g. `"101"` means oldest=1, then 0, most recent 1).
    #[must_use]
    pub fn display(&self) -> String {
        (0..self.len)
            .rev()
            .map(|i| if self.bits >> i & 1 == 1 { '1' } else { '0' })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_semantics() {
        let mut h = HistoryRegister::new(4);
        for b in [true, true, false, true] {
            h.push(b);
        }
        // Oldest-first string is 1101; packed value has most recent at bit 0.
        assert_eq!(h.display(), "1101");
        assert_eq!(h.value(), 0b1101);
        assert_eq!(h.outcome(0), Some(true));
        assert_eq!(h.outcome(1), Some(false));
        assert_eq!(h.outcome(3), Some(true));
        // Old bits fall off.
        h.push(false);
        assert_eq!(h.display(), "1010");
    }

    #[test]
    fn fill_tracking() {
        let mut h = HistoryRegister::new(3);
        assert!(h.is_empty());
        assert!(!h.is_full());
        assert_eq!(h.outcome(0), None);
        h.push(true);
        assert_eq!(h.outcome(0), Some(true));
        assert_eq!(h.outcome(1), None);
        h.push(false);
        h.push(false);
        assert!(h.is_full());
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.value(), 0);
    }

    #[test]
    fn full_width_register() {
        let mut h = HistoryRegister::new(32);
        for _ in 0..40 {
            h.push(true);
        }
        assert_eq!(h.value(), u32::MAX);
        h.push(false);
        assert_eq!(h.value(), u32::MAX - 1);
    }

    #[test]
    #[should_panic(expected = "history length")]
    fn zero_length_rejected() {
        let _ = HistoryRegister::new(0);
    }
}
