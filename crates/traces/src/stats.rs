//! Descriptive statistics of behaviour traces: the quantities a designer
//! inspects before choosing history lengths and pattern thresholds.

use crate::bits::BitTrace;
use crate::events::BranchTrace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Summary statistics of a 0/1 behaviour trace.
///
/// # Examples
///
/// ```
/// use fsmgen_traces::{BitStats, BitTrace};
///
/// let t: BitTrace = "1110 1110".parse()?;
/// let s = BitStats::from_trace(&t);
/// assert_eq!(s.len, 8);
/// assert!((s.ones_fraction - 0.75).abs() < 1e-12);
/// assert_eq!(s.run_lengths[2], 2, "two runs of three 1s");
/// # Ok::<(), fsmgen_traces::ParseBitTraceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitStats {
    /// Number of bits.
    pub len: usize,
    /// Fraction of ones.
    pub ones_fraction: f64,
    /// Fraction of positions whose bit differs from its predecessor
    /// (1.0 = perfect alternation, 0.0 = constant).
    pub transition_rate: f64,
    /// Run-length histogram: `runs[k]` = number of maximal runs of
    /// length `k+1`, capped at index 15 (longer runs count there).
    pub run_lengths: Vec<usize>,
}

impl BitStats {
    /// Computes statistics for a trace. An empty trace yields zeroed
    /// statistics.
    #[must_use]
    pub fn from_trace(trace: &BitTrace) -> Self {
        let mut run_lengths = vec![0usize; 16];
        let mut transitions = 0usize;
        let mut prev: Option<bool> = None;
        let mut run = 0usize;
        for bit in trace {
            match prev {
                Some(p) if p == bit => run += 1,
                Some(_) => {
                    transitions += 1;
                    run_lengths[run.min(16) - 1] += 1;
                    run = 1;
                }
                None => run = 1,
            }
            prev = Some(bit);
        }
        if run > 0 {
            run_lengths[run.min(16) - 1] += 1;
        }
        BitStats {
            len: trace.len(),
            ones_fraction: trace.ones_fraction(),
            transition_rate: if trace.len() > 1 {
                transitions as f64 / (trace.len() - 1) as f64
            } else {
                0.0
            },
            run_lengths,
        }
    }

    /// Mean maximal-run length (with the 16+ cap), or 0.0 for an empty
    /// trace.
    #[must_use]
    pub fn mean_run_length(&self) -> f64 {
        let runs: usize = self.run_lengths.iter().sum();
        if runs == 0 {
            return 0.0;
        }
        let total: usize = self
            .run_lengths
            .iter()
            .enumerate()
            .map(|(i, &n)| (i + 1) * n)
            .sum();
        total as f64 / runs as f64
    }
}

/// Per-static-branch summary of a branch trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BranchProfile {
    /// Dynamic executions.
    pub executions: usize,
    /// Taken fraction.
    pub taken_fraction: f64,
    /// Entropy of the outcome distribution in bits (0 = constant,
    /// 1 = perfectly balanced) — the coarse "hardness" signal.
    pub bias_entropy: f64,
}

/// Computes per-branch profiles for a branch trace, keyed by PC.
#[must_use]
pub fn branch_profiles(trace: &BranchTrace) -> BTreeMap<u64, BranchProfile> {
    let mut counts: BTreeMap<u64, (usize, usize)> = BTreeMap::new();
    for e in trace {
        let c = counts.entry(e.pc).or_insert((0, 0));
        c.0 += 1;
        if e.taken {
            c.1 += 1;
        }
    }
    counts
        .into_iter()
        .map(|(pc, (execs, taken))| {
            let p = taken as f64 / execs.max(1) as f64;
            let entropy = if p <= 0.0 || p >= 1.0 {
                0.0
            } else {
                -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
            };
            (
                pc,
                BranchProfile {
                    executions: execs,
                    taken_fraction: p,
                    bias_entropy: entropy,
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::BranchEvent;

    #[test]
    fn alternating_stats() {
        let t: BitTrace = "010101010101".parse().unwrap();
        let s = BitStats::from_trace(&t);
        assert_eq!(s.len, 12);
        assert!((s.transition_rate - 1.0).abs() < 1e-12);
        assert_eq!(s.run_lengths[0], 12, "twelve runs of length 1");
        assert!((s.mean_run_length() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_stats() {
        let t: BitTrace = "1111".parse().unwrap();
        let s = BitStats::from_trace(&t);
        assert_eq!(s.transition_rate, 0.0);
        assert_eq!(s.ones_fraction, 1.0);
        assert_eq!(s.run_lengths[3], 1, "one run of length 4");
    }

    #[test]
    fn long_runs_capped() {
        let t: BitTrace = "1".repeat(40).parse().unwrap();
        let s = BitStats::from_trace(&t);
        assert_eq!(s.run_lengths[15], 1, "40-run lands in the 16+ bucket");
        assert_eq!(s.mean_run_length(), 16.0);
    }

    #[test]
    fn empty_trace_is_zeroed() {
        let s = BitStats::from_trace(&BitTrace::new());
        assert_eq!(s.len, 0);
        assert_eq!(s.mean_run_length(), 0.0);
        assert_eq!(s.transition_rate, 0.0);
    }

    #[test]
    fn branch_profiles_entropy() {
        let mut t = BranchTrace::new();
        for i in 0..100 {
            t.push(BranchEvent {
                pc: 0x10,
                target: 0,
                taken: true,
            }); // constant
            t.push(BranchEvent {
                pc: 0x20,
                target: 0,
                taken: i % 2 == 0,
            }); // balanced
        }
        let profiles = branch_profiles(&t);
        assert_eq!(profiles[&0x10].bias_entropy, 0.0);
        assert!((profiles[&0x20].bias_entropy - 1.0).abs() < 1e-9);
        assert_eq!(profiles[&0x10].executions, 100);
        assert!((profiles[&0x20].taken_fraction - 0.5).abs() < 1e-9);
    }
}
