//! Trace containers and history machinery for predictor training.
//!
//! The design flow of Sherwood & Calder (ISCA 2001) starts "by tracing the
//! target application suite to create a representative sequence of
//! predictions". This crate holds those sequences: packed [`BitTrace`]s of
//! binary outcomes, typed [`BranchTrace`]/[`LoadTrace`] event streams, and
//! the shift-register [`HistoryRegister`] that indexes Markov models and
//! history-based predictors.
//!
//! # Examples
//!
//! ```
//! use fsmgen_traces::{BitTrace, HistoryRegister};
//!
//! let t: BitTrace = "0000 1000 1011 1101 1110 1111".parse()?;
//! let mut history = HistoryRegister::new(2);
//! let mut after_00 = 0usize;
//! for bit in &t {
//!     if history.is_full() && history.value() == 0b00 {
//!         after_00 += 1;
//!     }
//!     history.push(bit);
//! }
//! assert_eq!(after_00, 5); // the paper counts 5 occurrences of "00"
//! # Ok::<(), fsmgen_traces::ParseBitTraceError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod bits;
mod events;
mod history;
mod io;
mod stats;

pub use bits::{BitTrace, Iter, ParseBitTraceError};
pub use events::{BranchEvent, BranchTrace, LoadEvent, LoadTrace};
pub use history::{HistoryRegister, MAX_HISTORY};
pub use io::{
    format_branch_trace, format_load_trace, parse_branch_trace, parse_branch_trace_lenient,
    parse_load_trace, parse_load_trace_lenient, ParseReport, ParseTraceError, MAX_LINE_BYTES,
};
pub use stats::{branch_profiles, BitStats, BranchProfile};
