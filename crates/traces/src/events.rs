//! Typed execution events: conditional-branch outcomes and load values, the
//! two behaviours the paper builds predictors for.

use serde::{Deserialize, Serialize};

/// One dynamic conditional-branch execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BranchEvent {
    /// Address of the branch instruction (its static identity).
    pub pc: u64,
    /// Branch target address (used by BTB models).
    pub target: u64,
    /// `true` when the branch was taken.
    pub taken: bool,
}

/// One dynamic load execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LoadEvent {
    /// Address of the load instruction (its static identity).
    pub pc: u64,
    /// The value the load produced.
    pub value: u64,
}

/// A dynamic branch trace: the sequence of conditional-branch executions of
/// one program run, in program order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchTrace {
    events: Vec<BranchEvent>,
}

impl BranchTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        BranchTrace::default()
    }

    /// Appends one branch execution.
    pub fn push(&mut self, event: BranchEvent) {
        self.events.push(event);
    }

    /// The events in program order.
    #[must_use]
    pub fn events(&self) -> &[BranchEvent] {
        &self.events
    }

    /// Number of dynamic branches.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the trace has no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the events.
    pub fn iter(&self) -> std::slice::Iter<'_, BranchEvent> {
        self.events.iter()
    }

    /// Distinct static branches (by PC), in first-appearance order.
    #[must_use]
    pub fn static_branches(&self) -> Vec<u64> {
        let mut seen = std::collections::BTreeSet::new();
        let mut order = Vec::new();
        for e in &self.events {
            if seen.insert(e.pc) {
                order.push(e.pc);
            }
        }
        order
    }

    /// Per-static-branch dynamic execution counts.
    #[must_use]
    pub fn execution_counts(&self) -> std::collections::BTreeMap<u64, usize> {
        let mut counts = std::collections::BTreeMap::new();
        for e in &self.events {
            *counts.entry(e.pc).or_insert(0) += 1;
        }
        counts
    }
}

impl FromIterator<BranchEvent> for BranchTrace {
    fn from_iter<I: IntoIterator<Item = BranchEvent>>(iter: I) -> Self {
        BranchTrace {
            events: iter.into_iter().collect(),
        }
    }
}

impl Extend<BranchEvent> for BranchTrace {
    fn extend<I: IntoIterator<Item = BranchEvent>>(&mut self, iter: I) {
        self.events.extend(iter);
    }
}

impl<'a> IntoIterator for &'a BranchTrace {
    type Item = &'a BranchEvent;
    type IntoIter = std::slice::Iter<'a, BranchEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

/// A dynamic load trace: the sequence of load executions of one program
/// run, in program order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadTrace {
    events: Vec<LoadEvent>,
}

impl LoadTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        LoadTrace::default()
    }

    /// Appends one load execution.
    pub fn push(&mut self, event: LoadEvent) {
        self.events.push(event);
    }

    /// The events in program order.
    #[must_use]
    pub fn events(&self) -> &[LoadEvent] {
        &self.events
    }

    /// Number of dynamic loads.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the trace has no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the events.
    pub fn iter(&self) -> std::slice::Iter<'_, LoadEvent> {
        self.events.iter()
    }
}

impl FromIterator<LoadEvent> for LoadTrace {
    fn from_iter<I: IntoIterator<Item = LoadEvent>>(iter: I) -> Self {
        LoadTrace {
            events: iter.into_iter().collect(),
        }
    }
}

impl Extend<LoadEvent> for LoadTrace {
    fn extend<I: IntoIterator<Item = LoadEvent>>(&mut self, iter: I) {
        self.events.extend(iter);
    }
}

impl<'a> IntoIterator for &'a LoadTrace {
    type Item = &'a LoadEvent;
    type IntoIter = std::slice::Iter<'a, LoadEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(pc: u64, taken: bool) -> BranchEvent {
        BranchEvent {
            pc,
            target: pc + 0x40,
            taken,
        }
    }

    #[test]
    fn static_branch_discovery() {
        let trace: BranchTrace = [b(0x100, true), b(0x200, false), b(0x100, true)]
            .into_iter()
            .collect();
        assert_eq!(trace.static_branches(), vec![0x100, 0x200]);
        let counts = trace.execution_counts();
        assert_eq!(counts[&0x100], 2);
        assert_eq!(counts[&0x200], 1);
        assert_eq!(trace.len(), 3);
    }

    #[test]
    fn load_trace_basics() {
        let mut t = LoadTrace::new();
        assert!(t.is_empty());
        t.push(LoadEvent {
            pc: 0x400,
            value: 7,
        });
        t.extend([LoadEvent {
            pc: 0x400,
            value: 11,
        }]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[1].value, 11);
    }
}
