//! Plain-text trace interchange formats.
//!
//! The reproduction's stand-in for ATOM trace files: one event per line,
//! `#`-comments and blank lines ignored, hex (`0x…`) or decimal numbers.
//!
//! * branch traces: `PC TAKEN [TARGET]` with `TAKEN` ∈ {0, 1, T, N};
//! * load traces: `PC VALUE`.
//!
//! The strict parsers ([`parse_branch_trace`], [`parse_load_trace`]) stop
//! at the first malformed line; the lenient variants
//! ([`parse_branch_trace_lenient`], [`parse_load_trace_lenient`]) skip bad
//! lines and account for them in a [`ParseReport`]. Both reject lines
//! longer than [`MAX_LINE_BYTES`], so a corrupt or adversarial file cannot
//! force pathological allocations. No parser ever panics, whatever the
//! input.

use crate::events::{BranchEvent, BranchTrace, LoadEvent, LoadTrace};
use std::fmt;

/// The longest input line (in bytes, before comment stripping) either
/// parser accepts. Real trace lines are tens of bytes; anything beyond
/// this is a corrupt or hostile file.
pub const MAX_LINE_BYTES: usize = 4096;

/// Error produced when parsing a trace file fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    line: usize,
    message: String,
}

impl ParseTraceError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseTraceError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number of the offending input line.
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// Accounting from a lenient parse: how many lines carried events, how many
/// were skipped as malformed, and the first error encountered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParseReport {
    parsed: usize,
    skipped: usize,
    first_error: Option<ParseTraceError>,
}

impl ParseReport {
    /// Number of lines successfully parsed into events.
    #[must_use]
    pub fn parsed(&self) -> usize {
        self.parsed
    }

    /// Number of malformed lines that were skipped.
    #[must_use]
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// `true` when no line was skipped.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.skipped == 0
    }

    /// The first malformed line's error, if any line was skipped.
    #[must_use]
    pub fn first_error(&self) -> Option<&ParseTraceError> {
        self.first_error.as_ref()
    }

    fn record_skip(&mut self, err: ParseTraceError) {
        self.skipped += 1;
        if self.first_error.is_none() {
            self.first_error = Some(err);
        }
    }
}

impl fmt::Display for ParseReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} events parsed, {} lines skipped",
            self.parsed, self.skipped
        )?;
        if let Some(err) = &self.first_error {
            write!(f, " (first: {err})")?;
        }
        Ok(())
    }
}

fn parse_u64(token: &str, line: usize, what: &str) -> Result<u64, ParseTraceError> {
    let parsed = match token
        .strip_prefix("0x")
        .or_else(|| token.strip_prefix("0X"))
    {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => token.parse(),
    };
    parsed.map_err(|_| ParseTraceError::new(line, format!("invalid {what} {token:?}")))
}

/// Parses a branch trace from its text form.
///
/// # Errors
///
/// Returns [`ParseTraceError`] with the offending line number for any
/// malformed line.
///
/// # Examples
///
/// ```
/// use fsmgen_traces::parse_branch_trace;
///
/// let t = parse_branch_trace("# two branches\n0x100 1 0x140\n0x104 N\n")?;
/// assert_eq!(t.len(), 2);
/// assert!(t.events()[0].taken);
/// assert!(!t.events()[1].taken);
/// # Ok::<(), fsmgen_traces::ParseTraceError>(())
/// ```
pub fn parse_branch_trace(text: &str) -> Result<BranchTrace, ParseTraceError> {
    let mut trace = BranchTrace::new();
    for (line, content) in content_lines(text) {
        if let Some(event) = parse_branch_line(content, line)? {
            trace.push(event);
        }
    }
    Ok(trace)
}

/// Parses a branch trace, skipping malformed lines instead of failing.
/// Returns the events from every well-formed line plus a [`ParseReport`]
/// accounting for what was skipped.
#[must_use]
pub fn parse_branch_trace_lenient(text: &str) -> (BranchTrace, ParseReport) {
    let mut trace = BranchTrace::new();
    let mut report = ParseReport::default();
    for (line, content) in content_lines(text) {
        match parse_branch_line(content, line) {
            Ok(Some(event)) => {
                trace.push(event);
                report.parsed += 1;
            }
            Ok(None) => {}
            Err(err) => report.record_skip(err),
        }
    }
    (trace, report)
}

/// Yields `(1-based line number, comment-stripped trimmed content)` for
/// every line that still has content after stripping.
fn content_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines().enumerate().filter_map(|(i, raw)| {
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            None
        } else {
            Some((i + 1, content))
        }
    })
}

/// Rejects over-long raw lines before any tokenization happens.
fn check_line_length(content: &str, line: usize) -> Result<(), ParseTraceError> {
    if content.len() > MAX_LINE_BYTES {
        return Err(ParseTraceError::new(
            line,
            format!(
                "line is {} bytes, longer than the {MAX_LINE_BYTES}-byte limit",
                content.len()
            ),
        ));
    }
    Ok(())
}

/// Parses one comment-stripped branch line. `Ok(None)` is unreachable here
/// (blank lines are filtered upstream) but keeps the signature symmetric.
fn parse_branch_line(content: &str, line: usize) -> Result<Option<BranchEvent>, ParseTraceError> {
    check_line_length(content, line)?;
    let mut tokens = content.split_whitespace();
    let Some(first) = tokens.next() else {
        return Ok(None);
    };
    let pc = parse_u64(first, line, "pc")?;
    let taken = match tokens.next() {
        Some("1") | Some("T") | Some("t") => true,
        Some("0") | Some("N") | Some("n") => false,
        Some(other) => {
            return Err(ParseTraceError::new(
                line,
                format!("invalid outcome {other:?}, expected 0/1/T/N"),
            ))
        }
        None => return Err(ParseTraceError::new(line, "missing branch outcome")),
    };
    let target = match tokens.next() {
        Some(t) => parse_u64(t, line, "target")?,
        None => pc ^ 0x1000,
    };
    if let Some(extra) = tokens.next() {
        return Err(ParseTraceError::new(
            line,
            format!("unexpected trailing token {extra:?}"),
        ));
    }
    Ok(Some(BranchEvent { pc, target, taken }))
}

/// Formats a branch trace in the form [`parse_branch_trace`] accepts.
#[must_use]
pub fn format_branch_trace(trace: &BranchTrace) -> String {
    use fmt::Write as _;
    let mut out = String::with_capacity(trace.len() * 24);
    for e in trace {
        let _ = writeln!(out, "{:#x} {} {:#x}", e.pc, u8::from(e.taken), e.target);
    }
    out
}

/// Parses a load trace from its text form (`PC VALUE` per line).
///
/// # Errors
///
/// Returns [`ParseTraceError`] with the offending line number for any
/// malformed line.
pub fn parse_load_trace(text: &str) -> Result<LoadTrace, ParseTraceError> {
    let mut trace = LoadTrace::new();
    for (line, content) in content_lines(text) {
        if let Some(event) = parse_load_line(content, line)? {
            trace.push(event);
        }
    }
    Ok(trace)
}

/// Parses a load trace, skipping malformed lines instead of failing.
/// Returns the events from every well-formed line plus a [`ParseReport`]
/// accounting for what was skipped.
#[must_use]
pub fn parse_load_trace_lenient(text: &str) -> (LoadTrace, ParseReport) {
    let mut trace = LoadTrace::new();
    let mut report = ParseReport::default();
    for (line, content) in content_lines(text) {
        match parse_load_line(content, line) {
            Ok(Some(event)) => {
                trace.push(event);
                report.parsed += 1;
            }
            Ok(None) => {}
            Err(err) => report.record_skip(err),
        }
    }
    (trace, report)
}

/// Parses one comment-stripped load line (see [`parse_branch_line`]).
fn parse_load_line(content: &str, line: usize) -> Result<Option<LoadEvent>, ParseTraceError> {
    check_line_length(content, line)?;
    let mut tokens = content.split_whitespace();
    let Some(first) = tokens.next() else {
        return Ok(None);
    };
    let pc = parse_u64(first, line, "pc")?;
    let value = match tokens.next() {
        Some(v) => parse_u64(v, line, "value")?,
        None => return Err(ParseTraceError::new(line, "missing load value")),
    };
    if let Some(extra) = tokens.next() {
        return Err(ParseTraceError::new(
            line,
            format!("unexpected trailing token {extra:?}"),
        ));
    }
    Ok(Some(LoadEvent { pc, value }))
}

/// Formats a load trace in the form [`parse_load_trace`] accepts.
#[must_use]
pub fn format_load_trace(trace: &LoadTrace) -> String {
    use fmt::Write as _;
    let mut out = String::with_capacity(trace.len() * 24);
    for e in trace {
        let _ = writeln!(out, "{:#x} {:#x}", e.pc, e.value);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_round_trip() {
        let mut t = BranchTrace::new();
        for i in 0..50u64 {
            t.push(BranchEvent {
                pc: 0x1000 + i * 4,
                target: 0x2000 + i,
                taken: i % 3 == 0,
            });
        }
        let parsed = parse_branch_trace(&format_branch_trace(&t)).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn load_round_trip() {
        let mut t = LoadTrace::new();
        for i in 0..50u64 {
            t.push(LoadEvent {
                pc: 0x4000 + i * 8,
                value: i.wrapping_mul(0x9E37_79B9),
            });
        }
        let parsed = parse_load_trace(&format_load_trace(&t)).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn comments_blanks_and_formats() {
        let text = "# header\n\n256 T\n0x104 0 0x1f0\n  0x108 n  # inline\n";
        let t = parse_branch_trace(text).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.events()[0].pc, 256);
        assert!(t.events()[0].taken);
        assert_eq!(t.events()[1].target, 0x1f0);
        assert!(!t.events()[2].taken);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_branch_trace("0x100 1\nbogus 1\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("line 2"));

        let err = parse_branch_trace("0x100 yes\n").unwrap_err();
        assert!(err.to_string().contains("outcome"));

        let err = parse_branch_trace("0x100\n").unwrap_err();
        assert!(err.to_string().contains("missing"));

        let err = parse_branch_trace("0x100 1 0x200 extra\n").unwrap_err();
        assert!(err.to_string().contains("trailing"));

        let err = parse_load_trace("0x100\n").unwrap_err();
        assert!(err.to_string().contains("missing load value"));
    }

    #[test]
    fn empty_input_is_empty_trace() {
        assert!(parse_branch_trace("").unwrap().is_empty());
        assert!(parse_load_trace("# only comments\n").unwrap().is_empty());
    }

    #[test]
    fn over_long_lines_are_rejected() {
        let long = format!("0x100 1 0x{}\n", "f".repeat(MAX_LINE_BYTES));
        let err = parse_branch_trace(&long).unwrap_err();
        assert!(err.to_string().contains("byte limit"));

        // Comment text does not count toward the limit.
        let commented = format!("0x100 1 # {}\n", "x".repeat(MAX_LINE_BYTES));
        assert_eq!(parse_branch_trace(&commented).unwrap().len(), 1);

        let long_load = format!("0x100 0x{}\n", "f".repeat(MAX_LINE_BYTES));
        assert!(parse_load_trace(&long_load).is_err());
    }

    #[test]
    fn lenient_parse_skips_and_reports() {
        let text = "0x100 1\nbogus line here\n0x104 N\n0x108 maybe\n# fine\n0x10c T\n";
        let (trace, report) = parse_branch_trace_lenient(text);
        assert_eq!(trace.len(), 3);
        assert_eq!(report.parsed(), 3);
        assert_eq!(report.skipped(), 2);
        assert!(!report.is_clean());
        let first = report.first_error().unwrap();
        assert_eq!(first.line(), 2);
        assert!(report.to_string().contains("2 lines skipped"));

        let (loads, report) = parse_load_trace_lenient("0x1 0x2\nnope\n0x3 0x4\n");
        assert_eq!(loads.len(), 2);
        assert_eq!(report.skipped(), 1);
    }

    #[test]
    fn lenient_on_clean_input_matches_strict() {
        let text = "0x100 1 0x140\n0x104 N\n";
        let strict = parse_branch_trace(text).unwrap();
        let (lenient, report) = parse_branch_trace_lenient(text);
        assert_eq!(strict, lenient);
        assert!(report.is_clean());
        assert!(report.first_error().is_none());
        assert!(report.to_string().contains("0 lines skipped"));
    }

    #[test]
    fn garbage_inputs_do_not_panic() {
        for text in [
            "\u{0}\u{0}\u{0}",
            "0x",
            "0X 1",
            "- -",
            "  #  \n#\n   \n",
            "0x100 1 0x200\r\n0x104 0\r\n",
            "ﬀ ﬀ ﬀ",
            "18446744073709551616 1", // u64::MAX + 1
        ] {
            let _ = parse_branch_trace(text);
            let _ = parse_load_trace(text);
            let _ = parse_branch_trace_lenient(text);
            let _ = parse_load_trace_lenient(text);
        }
    }
}
