//! Plain-text trace interchange formats.
//!
//! The reproduction's stand-in for ATOM trace files: one event per line,
//! `#`-comments and blank lines ignored, hex (`0x…`) or decimal numbers.
//!
//! * branch traces: `PC TAKEN [TARGET]` with `TAKEN` ∈ {0, 1, T, N};
//! * load traces: `PC VALUE`.

use crate::events::{BranchEvent, BranchTrace, LoadEvent, LoadTrace};
use std::fmt;

/// Error produced when parsing a trace file fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    line: usize,
    message: String,
}

impl ParseTraceError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseTraceError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number of the offending input line.
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

fn parse_u64(token: &str, line: usize, what: &str) -> Result<u64, ParseTraceError> {
    let parsed = match token
        .strip_prefix("0x")
        .or_else(|| token.strip_prefix("0X"))
    {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => token.parse(),
    };
    parsed.map_err(|_| ParseTraceError::new(line, format!("invalid {what} {token:?}")))
}

/// Parses a branch trace from its text form.
///
/// # Errors
///
/// Returns [`ParseTraceError`] with the offending line number for any
/// malformed line.
///
/// # Examples
///
/// ```
/// use fsmgen_traces::parse_branch_trace;
///
/// let t = parse_branch_trace("# two branches\n0x100 1 0x140\n0x104 N\n")?;
/// assert_eq!(t.len(), 2);
/// assert!(t.events()[0].taken);
/// assert!(!t.events()[1].taken);
/// # Ok::<(), fsmgen_traces::ParseTraceError>(())
/// ```
pub fn parse_branch_trace(text: &str) -> Result<BranchTrace, ParseTraceError> {
    let mut trace = BranchTrace::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut tokens = content.split_whitespace();
        let pc = parse_u64(tokens.next().expect("non-empty line"), line, "pc")?;
        let taken = match tokens.next() {
            Some("1") | Some("T") | Some("t") => true,
            Some("0") | Some("N") | Some("n") => false,
            Some(other) => {
                return Err(ParseTraceError::new(
                    line,
                    format!("invalid outcome {other:?}, expected 0/1/T/N"),
                ))
            }
            None => return Err(ParseTraceError::new(line, "missing branch outcome")),
        };
        let target = match tokens.next() {
            Some(t) => parse_u64(t, line, "target")?,
            None => pc ^ 0x1000,
        };
        if let Some(extra) = tokens.next() {
            return Err(ParseTraceError::new(
                line,
                format!("unexpected trailing token {extra:?}"),
            ));
        }
        trace.push(BranchEvent { pc, target, taken });
    }
    Ok(trace)
}

/// Formats a branch trace in the form [`parse_branch_trace`] accepts.
#[must_use]
pub fn format_branch_trace(trace: &BranchTrace) -> String {
    use fmt::Write as _;
    let mut out = String::with_capacity(trace.len() * 24);
    for e in trace {
        let _ = writeln!(out, "{:#x} {} {:#x}", e.pc, u8::from(e.taken), e.target);
    }
    out
}

/// Parses a load trace from its text form (`PC VALUE` per line).
///
/// # Errors
///
/// Returns [`ParseTraceError`] with the offending line number for any
/// malformed line.
pub fn parse_load_trace(text: &str) -> Result<LoadTrace, ParseTraceError> {
    let mut trace = LoadTrace::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut tokens = content.split_whitespace();
        let pc = parse_u64(tokens.next().expect("non-empty line"), line, "pc")?;
        let value = match tokens.next() {
            Some(v) => parse_u64(v, line, "value")?,
            None => return Err(ParseTraceError::new(line, "missing load value")),
        };
        if let Some(extra) = tokens.next() {
            return Err(ParseTraceError::new(
                line,
                format!("unexpected trailing token {extra:?}"),
            ));
        }
        trace.push(LoadEvent { pc, value });
    }
    Ok(trace)
}

/// Formats a load trace in the form [`parse_load_trace`] accepts.
#[must_use]
pub fn format_load_trace(trace: &LoadTrace) -> String {
    use fmt::Write as _;
    let mut out = String::with_capacity(trace.len() * 24);
    for e in trace {
        let _ = writeln!(out, "{:#x} {:#x}", e.pc, e.value);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_round_trip() {
        let mut t = BranchTrace::new();
        for i in 0..50u64 {
            t.push(BranchEvent {
                pc: 0x1000 + i * 4,
                target: 0x2000 + i,
                taken: i % 3 == 0,
            });
        }
        let parsed = parse_branch_trace(&format_branch_trace(&t)).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn load_round_trip() {
        let mut t = LoadTrace::new();
        for i in 0..50u64 {
            t.push(LoadEvent {
                pc: 0x4000 + i * 8,
                value: i.wrapping_mul(0x9E37_79B9),
            });
        }
        let parsed = parse_load_trace(&format_load_trace(&t)).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn comments_blanks_and_formats() {
        let text = "# header\n\n256 T\n0x104 0 0x1f0\n  0x108 n  # inline\n";
        let t = parse_branch_trace(text).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.events()[0].pc, 256);
        assert!(t.events()[0].taken);
        assert_eq!(t.events()[1].target, 0x1f0);
        assert!(!t.events()[2].taken);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_branch_trace("0x100 1\nbogus 1\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("line 2"));

        let err = parse_branch_trace("0x100 yes\n").unwrap_err();
        assert!(err.to_string().contains("outcome"));

        let err = parse_branch_trace("0x100\n").unwrap_err();
        assert!(err.to_string().contains("missing"));

        let err = parse_branch_trace("0x100 1 0x200 extra\n").unwrap_err();
        assert!(err.to_string().contains("trailing"));

        let err = parse_load_trace("0x100\n").unwrap_err();
        assert!(err.to_string().contains("missing load value"));
    }

    #[test]
    fn empty_input_is_empty_trace() {
        assert!(parse_branch_trace("").unwrap().is_empty());
        assert!(parse_load_trace("# only comments\n").unwrap().is_empty());
    }
}
