//! Compact bit traces: the 0/1 behavioural sequences the design flow
//! consumes ("taken/not-taken" for branches, "value-correct/incorrect" for
//! confidence estimation).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A compact, append-only sequence of bits.
///
/// # Examples
///
/// The paper's §4.2 example trace:
///
/// ```
/// use fsmgen_traces::BitTrace;
///
/// let t: BitTrace = "0000 1000 1011 1101 1110 1111".parse()?;
/// assert_eq!(t.len(), 24);
/// assert_eq!(t.count_ones(), 14);
/// # Ok::<(), fsmgen_traces::ParseBitTraceError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitTrace {
    words: Vec<u64>,
    len: usize,
}

impl BitTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        BitTrace::default()
    }

    /// Creates an empty trace with room for `capacity` bits.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BitTrace {
            words: Vec::with_capacity(capacity.div_ceil(64)),
            len: 0,
        }
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Number of bits in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the trace has no bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at `index`, or `None` past the end.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<bool> {
        if index < self.len {
            Some(self.words[index / 64] >> (index % 64) & 1 == 1)
        } else {
            None
        }
    }

    /// Number of 1 bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of 1 bits, or 0.0 for an empty trace.
    #[must_use]
    pub fn ones_fraction(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// The backing 64-bit words, least-significant bit first within each
    /// word. Bits at positions `>= len()` in the last word are always
    /// zero, so `(len(), words())` is a canonical form — equal traces have
    /// equal words, which makes this the right input for content
    /// fingerprinting (`fsmgen-farm` hashes designs by it).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates over the bits in order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            trace: self,
            index: 0,
        }
    }

    /// Appends all bits of `other`.
    pub fn append_trace(&mut self, other: &BitTrace) {
        for b in other.iter() {
            self.push(b);
        }
    }
}

impl FromIterator<bool> for BitTrace {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut t = BitTrace::new();
        for b in iter {
            t.push(b);
        }
        t
    }
}

impl Extend<bool> for BitTrace {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

impl<'a> IntoIterator for &'a BitTrace {
    type Item = bool;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Iterator over the bits of a [`BitTrace`], produced by [`BitTrace::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    trace: &'a BitTrace,
    index: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        let b = self.trace.get(self.index)?;
        self.index += 1;
        Some(b)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.trace.len - self.index;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

/// Error returned when parsing a [`BitTrace`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBitTraceError {
    bad: char,
}

impl fmt::Display for ParseBitTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid trace character {:?}, expected '0', '1' or whitespace",
            self.bad
        )
    }
}

impl std::error::Error for ParseBitTraceError {}

impl FromStr for BitTrace {
    type Err = ParseBitTraceError;

    /// Parses a trace from `'0'`/`'1'` characters; whitespace and
    /// underscores are ignored so paper-style grouped traces parse
    /// directly.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut t = BitTrace::new();
        for c in s.chars() {
            match c {
                '0' => t.push(false),
                '1' => t.push(true),
                c if c.is_whitespace() || c == '_' => {}
                bad => return Err(ParseBitTraceError { bad }),
            }
        }
        Ok(t)
    }
}

impl fmt::Display for BitTrace {
    /// Renders as `0`/`1` characters grouped in fours, like the paper.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, b) in self.iter().enumerate() {
            if i > 0 && i % 4 == 0 {
                f.write_str(" ")?;
            }
            f.write_str(if b { "1" } else { "0" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let mut t = BitTrace::new();
        let pattern: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        for &b in &pattern {
            t.push(b);
        }
        assert_eq!(t.len(), 200);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(t.get(i), Some(b));
        }
        assert_eq!(t.get(200), None);
    }

    #[test]
    fn parse_paper_trace() {
        let t: BitTrace = "0000 1000 1011 1101 1110 1111".parse().unwrap();
        assert_eq!(t.len(), 24);
        assert_eq!(t.count_ones(), 14);
        assert_eq!(t.get(0), Some(false));
        assert_eq!(t.get(4), Some(true));
        assert_eq!(t.to_string(), "0000 1000 1011 1101 1110 1111");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("01x".parse::<BitTrace>().is_err());
        assert!("001 1".parse::<BitTrace>().is_ok());
    }

    #[test]
    fn collect_and_iter() {
        let t: BitTrace = [true, false, true].into_iter().collect();
        let back: Vec<bool> = t.iter().collect();
        assert_eq!(back, vec![true, false, true]);
        assert_eq!(t.iter().len(), 3);
        assert_eq!(t.ones_fraction(), 2.0 / 3.0);
    }

    #[test]
    fn empty_trace() {
        let t = BitTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.ones_fraction(), 0.0);
        assert_eq!(t.to_string(), "");
    }

    #[test]
    fn append_trace() {
        let mut a: BitTrace = "101".parse().unwrap();
        let b: BitTrace = "01".parse().unwrap();
        a.append_trace(&b);
        assert_eq!(a.to_string(), "1010 1");
    }

    #[test]
    fn words_are_canonical() {
        let a: BitTrace = "1010 11".parse().unwrap();
        let b: BitTrace = "1010 11".parse().unwrap();
        assert_eq!(a.words(), b.words());
        assert_eq!(a.words(), &[0b110101u64]);
        // A flipped bit shows up in the words.
        let c: BitTrace = "1010 10".parse().unwrap();
        assert_ne!(a.words(), c.words());
    }

    #[test]
    fn serde_impls_exist() {
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<BitTrace>();
    }
}
