//! Fuzz-style property tests of the trace parsers: no input — printable,
//! binary, or adversarially structured — may ever panic them, and parsing
//! is the inverse of formatting for every representable trace.

use fsmgen_traces::{
    format_branch_trace, format_load_trace, parse_branch_trace, parse_branch_trace_lenient,
    parse_load_trace, parse_load_trace_lenient, BranchEvent, BranchTrace, LoadEvent, LoadTrace,
};
use proptest::prelude::*;

/// Strings over the parser's own alphabet, so the fuzz reaches deep
/// parser states instead of failing at the first token.
fn trace_alphabet_string() -> impl Strategy<Value = String> {
    const CHARS: &[u8] = b"0123456789abcdefxX# \t\r TN-";
    proptest::collection::vec(0usize..CHARS.len(), 0..60)
        .prop_map(|idxs| idxs.into_iter().map(|i| CHARS[i] as char).collect())
}

/// Arbitrary garbage: raw (lossily decoded) bytes, alphabet soup, and
/// valid-looking shards mixed across lines.
fn garbage_strategy() -> impl Strategy<Value = String> {
    let shard = prop_oneof![
        trace_alphabet_string().boxed(),
        proptest::collection::vec(any::<u8>(), 0..40)
            .prop_map(|b| String::from_utf8_lossy(&b).into_owned())
            .boxed(),
        Just("0x100 1 0x200".to_owned()).boxed(),
        Just("0x100".to_owned()).boxed(),
        Just("#".to_owned()).boxed(),
        any::<u64>().prop_map(|n| format!("{n} {n}")).boxed(),
    ];
    proptest::collection::vec(shard, 0..12).prop_map(|parts| parts.join("\n"))
}

fn branch_trace_strategy() -> impl Strategy<Value = BranchTrace> {
    proptest::collection::vec((any::<u64>(), any::<u64>(), any::<bool>()), 0..40).prop_map(
        |events| {
            let mut t = BranchTrace::new();
            for (pc, target, taken) in events {
                t.push(BranchEvent { pc, target, taken });
            }
            t
        },
    )
}

fn load_trace_strategy() -> impl Strategy<Value = LoadTrace> {
    proptest::collection::vec((any::<u64>(), any::<u64>()), 0..40).prop_map(|events| {
        let mut t = LoadTrace::new();
        for (pc, value) in events {
            t.push(LoadEvent { pc, value });
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Neither parser panics on arbitrary input; they return Ok or a typed
    /// error, and the lenient variants always return.
    #[test]
    fn parsers_never_panic(text in garbage_strategy()) {
        let _ = parse_branch_trace(&text);
        let _ = parse_load_trace(&text);
        let (_, report) = parse_branch_trace_lenient(&text);
        // A skipped line implies a recorded first error and vice versa.
        prop_assert_eq!(report.skipped() > 0, report.first_error().is_some());
        let (_, report) = parse_load_trace_lenient(&text);
        prop_assert_eq!(report.skipped() > 0, report.first_error().is_some());
    }

    /// Strict and lenient agree on well-formed input, and lenient's parsed
    /// count matches the trace length.
    #[test]
    fn branch_round_trip(trace in branch_trace_strategy()) {
        let text = format_branch_trace(&trace);
        let strict = parse_branch_trace(&text).expect("formatted trace reparses");
        prop_assert_eq!(&strict, &trace);
        let (lenient, report) = parse_branch_trace_lenient(&text);
        prop_assert_eq!(&lenient, &trace);
        prop_assert!(report.is_clean());
        prop_assert_eq!(report.parsed(), trace.len());
    }

    /// Load traces round-trip the same way.
    #[test]
    fn load_round_trip(trace in load_trace_strategy()) {
        let text = format_load_trace(&trace);
        let strict = parse_load_trace(&text).expect("formatted trace reparses");
        prop_assert_eq!(&strict, &trace);
        let (lenient, report) = parse_load_trace_lenient(&text);
        prop_assert_eq!(&lenient, &trace);
        prop_assert!(report.is_clean());
    }

    /// Interleaving garbage lines into a formatted trace never loses the
    /// well-formed events in lenient mode.
    #[test]
    fn lenient_keeps_good_lines(trace in branch_trace_strategy(), junk in garbage_strategy()) {
        let mut text = String::new();
        for (i, line) in format_branch_trace(&trace).lines().enumerate() {
            text.push_str(line);
            text.push('\n');
            if i % 2 == 0 {
                // Junk collapsed to one line so it cannot re-order events.
                let one_line: String =
                    junk.chars().map(|c| if c == '\n' { ' ' } else { c }).collect();
                text.push_str(&one_line);
                text.push('\n');
            }
        }
        let (lenient, _) = parse_branch_trace_lenient(&text);
        // Every original event must appear, in order, within the result.
        let mut remaining = lenient.events().iter();
        for want in trace.events() {
            prop_assert!(
                remaining.any(|got| got == want),
                "event {want:?} lost by lenient parse"
            );
        }
    }
}
