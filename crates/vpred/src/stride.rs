//! The two-delta stride value predictor (§6.1).
//!
//! "We chose to use the two-delta stride predictor, which only replaces
//! the predicted stride with a new stride if that new stride has been seen
//! twice in a row. Each entry contains a tag, the predicted value, the
//! predicted stride, the last stride seen, and a saturating up and down
//! confidence counter. We use a table size of 2K entries ... We performed
//! value prediction for only load instructions."
//!
//! The confidence counter lives outside this type (see
//! [`crate::confidence`]) so different estimators can be swapped in —
//! that is the whole point of the paper's §6 experiment.

use serde::{Deserialize, Serialize};

/// Outcome of one value prediction attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValuePrediction {
    /// The table has history for this load and predicts the given value.
    Predicted(u64),
    /// Tag miss or cold entry: no prediction is made this time.
    NoPrediction,
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    tag: u64,
    last_value: u64,
    stride: u64,
    last_stride: u64,
    /// 0 = empty, 1 = one value seen, 2 = warm (predicting).
    warmth: u8,
}

/// A tagged, direct-mapped two-delta stride value predictor.
///
/// # Examples
///
/// ```
/// use fsmgen_vpred::{TwoDeltaStride, ValuePrediction};
///
/// let mut vp = TwoDeltaStride::paper_default();
/// // A strided load: 8, 16, 24, ... — the stride must be seen twice
/// // before it is adopted (that is the "two-delta" rule).
/// vp.update(0x40, 8);
/// vp.update(0x40, 16);
/// vp.update(0x40, 24);
/// assert_eq!(vp.predict(0x40), ValuePrediction::Predicted(32));
/// ```
#[derive(Debug, Clone)]
pub struct TwoDeltaStride {
    entries: Vec<Entry>,
}

impl TwoDeltaStride {
    /// The paper's configuration: 2K entries.
    #[must_use]
    pub fn paper_default() -> Self {
        TwoDeltaStride::new(2048)
    }

    /// Creates a predictor with `entries` direct-mapped, tagged entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        TwoDeltaStride {
            entries: vec![Entry::default(); entries],
        }
    }

    /// The table index a PC maps to; exposed so per-entry confidence
    /// estimators can mirror the table layout exactly.
    #[must_use]
    pub fn index(&self, pc: u64) -> usize {
        (pc >> 3) as usize & (self.entries.len() - 1)
    }

    /// Number of table entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the table has no entries (never; API symmetry).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Predicts the next value of the load at `pc`.
    #[must_use]
    pub fn predict(&self, pc: u64) -> ValuePrediction {
        let e = &self.entries[self.index(pc)];
        if e.tag == pc && e.warmth >= 2 {
            ValuePrediction::Predicted(e.last_value.wrapping_add(e.stride))
        } else {
            ValuePrediction::NoPrediction
        }
    }

    /// Informs the predictor of the actual loaded value, applying the
    /// two-delta update rule.
    pub fn update(&mut self, pc: u64, value: u64) {
        let i = self.index(pc);
        let e = &mut self.entries[i];
        if e.tag != pc {
            *e = Entry {
                tag: pc,
                last_value: value,
                stride: 0,
                last_stride: 0,
                warmth: 1,
            };
            return;
        }
        let new_stride = value.wrapping_sub(e.last_value);
        // Two-delta: only adopt the stride once seen twice in a row.
        if new_stride == e.last_stride {
            e.stride = new_stride;
        }
        e.last_stride = new_stride;
        e.last_value = value;
        e.warmth = e.warmth.saturating_add(1).min(2);
    }

    /// Storage cost in bits (tag 61 + value 64 + stride 16 + last stride
    /// 16 + warmth 2 per entry; the confidence counter is charged by the
    /// estimator).
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        self.entries.len() * (61 + 64 + 16 + 16 + 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_entry_makes_no_prediction() {
        let mut vp = TwoDeltaStride::new(64);
        assert_eq!(vp.predict(0x10), ValuePrediction::NoPrediction);
        vp.update(0x10, 100);
        assert_eq!(vp.predict(0x10), ValuePrediction::NoPrediction);
        vp.update(0x10, 100);
        assert_eq!(vp.predict(0x10), ValuePrediction::Predicted(100));
    }

    #[test]
    fn constant_values_predicted() {
        let mut vp = TwoDeltaStride::new(64);
        for _ in 0..5 {
            vp.update(0x20, 42);
        }
        assert_eq!(vp.predict(0x20), ValuePrediction::Predicted(42));
    }

    #[test]
    fn stride_tracking() {
        let mut vp = TwoDeltaStride::new(64);
        for v in [10u64, 20, 30, 40] {
            vp.update(0x30, v);
        }
        assert_eq!(vp.predict(0x30), ValuePrediction::Predicted(50));
    }

    #[test]
    fn two_delta_filters_one_off_strides() {
        let mut vp = TwoDeltaStride::new(64);
        for v in [10u64, 20, 30] {
            vp.update(0x30, v); // stride 10 established
        }
        vp.update(0x30, 95); // one-off jump (stride 65, seen once)
                             // Two-delta keeps the old stride 10: prediction = 95 + 10.
        assert_eq!(vp.predict(0x30), ValuePrediction::Predicted(105));
        // But a repeated new stride is adopted.
        vp.update(0x30, 160); // stride 65 again -> adopted
        assert_eq!(vp.predict(0x30), ValuePrediction::Predicted(225));
    }

    #[test]
    fn tag_conflict_reallocates() {
        let mut vp = TwoDeltaStride::new(4);
        for v in [1u64, 2, 3] {
            vp.update(0x8, v);
        }
        let alias = 0x8 + 8 * 4; // same index, different tag
        vp.update(alias, 7);
        assert_eq!(vp.predict(0x8), ValuePrediction::NoPrediction);
        assert_eq!(vp.predict(alias), ValuePrediction::NoPrediction); // warming
        vp.update(alias, 7);
        assert_eq!(vp.predict(alias), ValuePrediction::Predicted(7));
    }

    #[test]
    fn negative_strides_via_wrapping() {
        let mut vp = TwoDeltaStride::new(64);
        for v in [100u64, 90, 80] {
            vp.update(0x40, v);
        }
        assert_eq!(vp.predict(0x40), ValuePrediction::Predicted(70));
    }
}
