//! Misprediction-recovery cost models (§6.2).
//!
//! "A very accurate SUD counter was needed for mispredicted values when
//! using squash recovery to obtain increases in performance, but this
//! resulted in low coverage of potential value predictions. In contrast,
//! when value prediction used re-execution recovery, it did not have to
//! be as accurate, since the miss penalty is small, and the SUD counter
//! could instead concentrate on achieving a high coverage."
//!
//! [`RecoveryModel`] turns a confidence run's confusion matrix into net
//! cycles saved, letting that §6.2 narrative be computed rather than
//! asserted: under squash recovery the best operating point sits at high
//! accuracy/low coverage; under re-execution it moves to high coverage.

use crate::harness::ConfidenceStats;
use serde::{Deserialize, Serialize};

/// A linear payoff model for speculative value use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryModel {
    /// Cycles saved by each correct, confident value prediction (the
    /// dependence-height benefit of speculating).
    pub benefit: f64,
    /// Cycles lost per wrong, confident prediction (the recovery cost).
    pub penalty: f64,
}

impl RecoveryModel {
    /// Squash (pipeline-flush) recovery: large penalty, as §6.2 describes.
    #[must_use]
    pub fn squash() -> Self {
        RecoveryModel {
            benefit: 2.0,
            penalty: 12.0,
        }
    }

    /// Re-execution (selective reissue) recovery: small penalty.
    #[must_use]
    pub fn reexecute() -> Self {
        RecoveryModel {
            benefit: 2.0,
            penalty: 1.0,
        }
    }

    /// Net cycles saved over the run: confident-correct predictions pay
    /// `benefit`, confident-wrong ones cost `penalty`; unconfident
    /// predictions are not used and contribute nothing.
    #[must_use]
    pub fn net_cycles(&self, stats: &ConfidenceStats) -> f64 {
        let wrong_confident = (stats.confident - stats.confident_correct) as f64;
        stats.confident_correct as f64 * self.benefit - wrong_confident * self.penalty
    }

    /// Net cycles saved per dynamic value prediction (normalised for
    /// comparing runs of different lengths).
    #[must_use]
    pub fn net_cycles_per_prediction(&self, stats: &ConfidenceStats) -> f64 {
        self.net_cycles(stats) / stats.predictions.max(1) as f64
    }

    /// The break-even accuracy: confident predictions are profitable only
    /// when accuracy exceeds `penalty / (benefit + penalty)`.
    #[must_use]
    pub fn break_even_accuracy(&self) -> f64 {
        self.penalty / (self.benefit + self.penalty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(predictions: usize, correct: usize, confident: usize, cc: usize) -> ConfidenceStats {
        ConfidenceStats {
            predictions,
            correct,
            confident,
            confident_correct: cc,
        }
    }

    #[test]
    fn break_even_points() {
        // Squash: 12 / 14 ≈ 85.7% accuracy needed; re-exec: 1/3 ≈ 33%.
        assert!((RecoveryModel::squash().break_even_accuracy() - 12.0 / 14.0).abs() < 1e-12);
        assert!((RecoveryModel::reexecute().break_even_accuracy() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn squash_prefers_accuracy_reexec_prefers_coverage() {
        // Two estimators: a conservative one (high accuracy, low
        // coverage) and a liberal one (lower accuracy, high coverage).
        let conservative = stats(1000, 500, 100, 95); // 95% acc, 19% cov
        let liberal = stats(1000, 500, 600, 450); // 75% acc, 90% cov

        let squash = RecoveryModel::squash();
        assert!(
            squash.net_cycles(&conservative) > squash.net_cycles(&liberal),
            "squash recovery must favour the accurate estimator"
        );

        let reexec = RecoveryModel::reexecute();
        assert!(
            reexec.net_cycles(&liberal) > reexec.net_cycles(&conservative),
            "re-execution recovery must favour the high-coverage estimator"
        );
    }

    #[test]
    fn unprofitable_below_break_even() {
        let m = RecoveryModel::squash();
        // 80% accuracy is below squash break-even (85.7%): net negative.
        let s = stats(1000, 500, 100, 80);
        assert!(m.net_cycles(&s) < 0.0);
        assert!(m.net_cycles_per_prediction(&s) < 0.0);
    }

    #[test]
    fn empty_run_is_zero() {
        let m = RecoveryModel::reexecute();
        assert_eq!(m.net_cycles(&ConfidenceStats::default()), 0.0);
        assert_eq!(
            m.net_cycles_per_prediction(&ConfidenceStats::default()),
            0.0
        );
    }
}
