//! Streaming evaluation of confidence estimators.
//!
//! The batch [`crate::harness`] replays a whole load trace and reports
//! final speedup; the online-redesign loop instead needs to watch a
//! confidence estimator *while it runs* — the same windowed view the
//! serve-side collapse monitor uses for branch predictors. This module
//! drives any [`ConfidenceEstimator`] one predicted load at a time and
//! maintains trailing windows of **coverage** (how often the estimator
//! says "confident") and **precision** (how often a confident call was
//! right — the quantity §6 trades against pipeline flushes).

use crate::confidence::ConfidenceEstimator;
use fsmgen_obs::WindowedAccuracy;

/// Trailing-window coverage/precision accounting for a confidence
/// estimator driven over a live correctness stream.
#[derive(Debug, Clone)]
pub struct ConfidenceStreamEval {
    coverage: WindowedAccuracy,
    precision: WindowedAccuracy,
    total: u64,
    confident: u64,
    confident_correct: u64,
}

impl ConfidenceStreamEval {
    /// An empty evaluator whose windows hold `window` observations.
    #[must_use]
    pub fn new(window: usize) -> Self {
        ConfidenceStreamEval {
            coverage: WindowedAccuracy::new(window),
            precision: WindowedAccuracy::new(window),
            total: 0,
            confident: 0,
            confident_correct: 0,
        }
    }

    /// Queries `estimator` for `slot`, records the verdict against
    /// whether the value prediction was actually `correct`, and updates
    /// the estimator. Returns the confidence verdict.
    pub fn observe<E: ConfidenceEstimator + ?Sized>(
        &mut self,
        estimator: &mut E,
        slot: usize,
        correct: bool,
    ) -> bool {
        let confident = estimator.confident(slot);
        self.total += 1;
        self.coverage.record(confident);
        if confident {
            self.confident += 1;
            if correct {
                self.confident_correct += 1;
            }
            self.precision.record(correct);
        }
        estimator.update(slot, correct);
        confident
    }

    /// Loads observed so far.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of recent loads the estimator trusted (`None` while the
    /// window is empty).
    #[must_use]
    pub fn windowed_coverage(&self) -> Option<f64> {
        self.coverage.rate()
    }

    /// Fraction of recent *confident* calls that were correct (`None`
    /// until a confident call lands in the window).
    #[must_use]
    pub fn windowed_precision(&self) -> Option<f64> {
        self.precision.rate()
    }

    /// Cumulative coverage over the whole stream.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.confident as f64 / self.total as f64
        }
    }

    /// Cumulative precision over the whole stream (0 with no confident
    /// calls).
    #[must_use]
    pub fn precision(&self) -> f64 {
        if self.confident == 0 {
            0.0
        } else {
            self.confident_correct as f64 / self.confident as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidence::{AlwaysConfident, SudConfidence, SudConfig};

    #[test]
    fn always_confident_has_full_coverage() {
        let mut eval = ConfidenceStreamEval::new(8);
        let mut est = AlwaysConfident;
        for i in 0..20 {
            eval.observe(&mut est, 0, i % 2 == 0);
        }
        assert_eq!(eval.total(), 20);
        assert!((eval.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(eval.windowed_coverage(), Some(1.0));
        assert!((eval.precision() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sud_precision_beats_its_coverage_on_streaky_loads() {
        // A bursty stream: long correct runs separated by short wrong
        // runs. The counter withholds confidence during the wrong runs,
        // so precision should exceed raw stream accuracy.
        let cfg = SudConfig {
            max: 10,
            penalty: u32::MAX,
            threshold_pct: 80,
        };
        let mut est = SudConfidence::new(1, cfg);
        let mut eval = ConfidenceStreamEval::new(32);
        let mut raw_correct = 0u32;
        let mut n = 0u32;
        for cycle in 0..30 {
            for step in 0..20 {
                let correct = !(cycle % 3 == 2 && step < 4);
                eval.observe(&mut est, 0, correct);
                raw_correct += u32::from(correct);
                n += 1;
            }
        }
        let raw = f64::from(raw_correct) / f64::from(n);
        assert!(
            eval.precision() > raw,
            "precision {} should beat raw accuracy {}",
            eval.precision(),
            raw
        );
        assert!(eval.coverage() > 0.1 && eval.coverage() < 1.0);
    }

    #[test]
    fn windows_start_empty() {
        let eval = ConfidenceStreamEval::new(4);
        assert_eq!(eval.windowed_coverage(), None);
        assert_eq!(eval.windowed_precision(), None);
        assert_eq!(eval.total(), 0);
    }
}
