//! The value-predictor family of §6.1: "Several architectures have been
//! proposed for value prediction including last value prediction, stride
//! prediction, context predictors, and hybrid approaches. In this study
//! we focus on using a stride-based value predictor, since it provides
//! the most performance for a reasonable amount of area."
//!
//! Implementing the whole menu lets that design choice be measured rather
//! than asserted; see the `value_predictor_family` bench section and the
//! tests below.

use crate::stride::{TwoDeltaStride, ValuePrediction};
use std::collections::VecDeque;

/// A dynamic load-value predictor driven PC-by-PC.
pub trait ValuePredictor {
    /// Predicts the next value of the load at `pc`.
    fn predict(&self, pc: u64) -> ValuePrediction;

    /// Informs the predictor of the actual loaded value.
    fn update(&mut self, pc: u64, value: u64);

    /// Table storage in bits.
    fn storage_bits(&self) -> usize;

    /// Short description, e.g. `"stride2d-2048"`.
    fn describe(&self) -> String;
}

impl ValuePredictor for TwoDeltaStride {
    fn predict(&self, pc: u64) -> ValuePrediction {
        TwoDeltaStride::predict(self, pc)
    }

    fn update(&mut self, pc: u64, value: u64) {
        TwoDeltaStride::update(self, pc, value);
    }

    fn storage_bits(&self) -> usize {
        TwoDeltaStride::storage_bits(self)
    }

    fn describe(&self) -> String {
        format!("stride2d-{}", self.len())
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct LastValueEntry {
    tag: u64,
    value: u64,
    warm: bool,
}

/// Last-value prediction (Lipasti et al.): predict that a load produces
/// the same value as last time.
#[derive(Debug, Clone)]
pub struct LastValue {
    entries: Vec<LastValueEntry>,
}

impl LastValue {
    /// Creates a last-value predictor with `entries` tagged entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        LastValue {
            entries: vec![LastValueEntry::default(); entries],
        }
    }

    fn index(&self, pc: u64) -> usize {
        (pc >> 3) as usize & (self.entries.len() - 1)
    }
}

impl ValuePredictor for LastValue {
    fn predict(&self, pc: u64) -> ValuePrediction {
        let e = &self.entries[self.index(pc)];
        if e.warm && e.tag == pc {
            ValuePrediction::Predicted(e.value)
        } else {
            ValuePrediction::NoPrediction
        }
    }

    fn update(&mut self, pc: u64, value: u64) {
        let i = self.index(pc);
        self.entries[i] = LastValueEntry {
            tag: pc,
            value,
            warm: true,
        };
    }

    fn storage_bits(&self) -> usize {
        self.entries.len() * (61 + 64 + 1)
    }

    fn describe(&self) -> String {
        format!("lastvalue-{}", self.entries.len())
    }
}

#[derive(Debug, Clone, Default)]
struct FcmFirstLevel {
    tag: u64,
    recent: VecDeque<u64>,
}

/// A finite context method (FCM) predictor (Sazeides & Smith): the first
/// level records each load's recent value history; its hash indexes a
/// shared second-level table mapping contexts to the value that followed
/// them last time.
#[derive(Debug, Clone)]
pub struct Fcm {
    order: usize,
    first: Vec<FcmFirstLevel>,
    second: Vec<Option<u64>>,
}

impl Fcm {
    /// Creates an FCM with `entries` first-level entries, a second-level
    /// table of `second_entries`, and the given context order.
    ///
    /// # Panics
    ///
    /// Panics if the table sizes are not powers of two or `order` is 0.
    #[must_use]
    pub fn new(entries: usize, second_entries: usize, order: usize) -> Self {
        assert!(entries.is_power_of_two() && second_entries.is_power_of_two());
        assert!(order > 0, "context order must be positive");
        Fcm {
            order,
            first: vec![FcmFirstLevel::default(); entries],
            second: vec![None; second_entries],
        }
    }

    fn index(&self, pc: u64) -> usize {
        (pc >> 3) as usize & (self.first.len() - 1)
    }

    fn context_hash(&self, recent: &VecDeque<u64>) -> usize {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &v in recent {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        (h as usize) & (self.second.len() - 1)
    }
}

impl ValuePredictor for Fcm {
    fn predict(&self, pc: u64) -> ValuePrediction {
        let e = &self.first[self.index(pc)];
        if e.tag == pc && e.recent.len() == self.order {
            match self.second[self.context_hash(&e.recent)] {
                Some(v) => ValuePrediction::Predicted(v),
                None => ValuePrediction::NoPrediction,
            }
        } else {
            ValuePrediction::NoPrediction
        }
    }

    fn update(&mut self, pc: u64, value: u64) {
        let i = self.index(pc);
        if self.first[i].tag != pc {
            self.first[i] = FcmFirstLevel {
                tag: pc,
                recent: VecDeque::new(),
            };
        }
        if self.first[i].recent.len() == self.order {
            let slot = self.context_hash(&self.first[i].recent);
            self.second[slot] = Some(value);
        }
        let e = &mut self.first[i];
        e.recent.push_back(value);
        if e.recent.len() > self.order {
            e.recent.pop_front();
        }
    }

    fn storage_bits(&self) -> usize {
        self.first.len() * (61 + self.order * 64) + self.second.len() * 65
    }

    fn describe(&self) -> String {
        format!(
            "fcm{}-{}x{}",
            self.order,
            self.first.len(),
            self.second.len()
        )
    }
}

/// A stride/context hybrid (Wang & Franklin style): the context predictor
/// is consulted first; when it has no answer the stride predictor takes
/// over. A per-entry chooser would be the next refinement; this simple
/// priority scheme already exposes the area trade-off of §6.1.
#[derive(Debug, Clone)]
pub struct Hybrid {
    stride: TwoDeltaStride,
    context: Fcm,
}

impl Hybrid {
    /// Combines the two component predictors.
    #[must_use]
    pub fn new(stride: TwoDeltaStride, context: Fcm) -> Self {
        Hybrid { stride, context }
    }
}

impl ValuePredictor for Hybrid {
    fn predict(&self, pc: u64) -> ValuePrediction {
        match self.context.predict(pc) {
            ValuePrediction::Predicted(v) => ValuePrediction::Predicted(v),
            ValuePrediction::NoPrediction => self.stride.predict(pc),
        }
    }

    fn update(&mut self, pc: u64, value: u64) {
        self.stride.update(pc, value);
        self.context.update(pc, value);
    }

    fn storage_bits(&self) -> usize {
        ValuePredictor::storage_bits(&self.stride) + self.context.storage_bits()
    }

    fn describe(&self) -> String {
        format!(
            "hybrid({}+{})",
            self.stride.describe(),
            self.context.describe()
        )
    }
}

/// Correct-prediction rate of a predictor over a load trace, counting
/// only dynamic loads where a prediction was made (plus the prediction
/// count), for family comparisons.
#[must_use]
pub fn family_accuracy<P: ValuePredictor + ?Sized>(
    predictor: &mut P,
    trace: &fsmgen_traces::LoadTrace,
) -> (usize, usize) {
    let mut predictions = 0usize;
    let mut correct = 0usize;
    for load in trace {
        if let ValuePrediction::Predicted(v) = predictor.predict(load.pc) {
            predictions += 1;
            if v == load.value {
                correct += 1;
            }
        }
        predictor.update(load.pc, load.value);
    }
    (correct, predictions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmgen_traces::{LoadEvent, LoadTrace};
    use fsmgen_workloads::{Input, ValueBenchmark};

    fn repeating(values: &[u64], times: usize) -> LoadTrace {
        std::iter::repeat_with(|| values.iter().copied())
            .take(times)
            .flatten()
            .map(|value| LoadEvent { pc: 0x10, value })
            .collect()
    }

    #[test]
    fn last_value_tracks_constants() {
        let trace = repeating(&[42], 100);
        let (correct, preds) = family_accuracy(&mut LastValue::new(64), &trace);
        assert!(preds >= 99);
        assert_eq!(correct, preds);
    }

    #[test]
    fn last_value_fails_on_strides() {
        let trace: LoadTrace = (0..100u64)
            .map(|i| LoadEvent {
                pc: 0x10,
                value: 8 * i,
            })
            .collect();
        let (correct, _) = family_accuracy(&mut LastValue::new(64), &trace);
        assert_eq!(correct, 0, "strides defeat last-value prediction");
        let (correct, preds) = family_accuracy(&mut TwoDeltaStride::new(64), &trace);
        assert!(correct as f64 > 0.9 * preds as f64);
    }

    #[test]
    fn fcm_captures_repeating_sequences_strides_do_not() {
        // The sequence 3, 1, 4, 1, 5 repeats: context prediction nails it,
        // stride prediction cannot.
        let trace = repeating(&[3, 1, 4, 1, 5], 200);
        let (fcm_c, fcm_p) = family_accuracy(&mut Fcm::new(64, 1024, 3), &trace);
        assert!(
            fcm_c as f64 > 0.95 * fcm_p as f64,
            "fcm {fcm_c}/{fcm_p} on a repeating sequence"
        );
        let (st_c, st_p) = family_accuracy(&mut TwoDeltaStride::new(64), &trace);
        assert!(
            (st_c as f64) < 0.5 * st_p as f64,
            "stride should struggle: {st_c}/{st_p}"
        );
    }

    #[test]
    fn hybrid_covers_both() {
        let mut seq = repeating(&[3, 1, 4, 1, 5], 100);
        seq.extend((0..500u64).map(|i| LoadEvent {
            pc: 0x88,
            value: 4 * i,
        }));
        // The second level is untagged, so it must be large enough that
        // the stride phase's one-shot contexts rarely collide with live
        // slots (a collision yields a wrong context prediction that
        // outranks the correct stride one).
        let mut hybrid = Hybrid::new(TwoDeltaStride::new(64), Fcm::new(64, 1 << 16, 3));
        let (c, p) = family_accuracy(&mut hybrid, &seq);
        assert!(c as f64 > 0.9 * p as f64, "hybrid {c}/{p}");
    }

    #[test]
    fn stride_wins_performance_per_bit_on_the_suite() {
        // §6.1's design rationale, measured: on the benchmark suite the
        // two-delta stride predictor's correct predictions per storage bit
        // beat last-value and the (much larger) FCM.
        let mut totals: Vec<(String, f64)> = Vec::new();
        let mut eval = |mut p: Box<dyn ValuePredictor>| {
            let mut correct = 0usize;
            for b in ValueBenchmark::ALL {
                let t = b.trace(Input::TRAIN, 10_000);
                correct += family_accuracy(p.as_mut(), &t).0;
            }
            totals.push((p.describe(), correct as f64 / p.storage_bits() as f64));
        };
        eval(Box::new(TwoDeltaStride::new(2048)));
        eval(Box::new(LastValue::new(2048)));
        eval(Box::new(Fcm::new(2048, 8192, 3)));
        let stride_score = totals[0].1;
        for (name, score) in &totals[1..] {
            assert!(
                stride_score > *score,
                "stride ({stride_score:.5}) must beat {name} ({score:.5}) per bit"
            );
        }
    }

    #[test]
    fn describe_strings() {
        assert_eq!(
            ValuePredictor::describe(&TwoDeltaStride::new(64)),
            "stride2d-64"
        );
        assert_eq!(LastValue::new(64).describe(), "lastvalue-64");
        assert_eq!(Fcm::new(64, 256, 2).describe(), "fcm2-64x256");
    }
}
