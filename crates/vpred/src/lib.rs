//! Value prediction with pluggable confidence estimation.
//!
//! Implements the §6 evaluation of the FSM-predictor paper: a two-delta
//! stride value predictor ([`TwoDeltaStride`], 2K tagged entries, loads
//! only) whose per-entry confidence mechanism is swappable between
//! saturating up/down counters ([`SudConfidence`], the prior art) and the
//! automatically designed FSM estimators ([`FsmConfidence`]). The
//! [`run_confidence`] harness produces the accuracy/coverage numbers of
//! Figure 2, and [`correctness_trace`] extracts the §6.3 training stream.
//!
//! # Examples
//!
//! ```
//! use fsmgen::Designer;
//! use fsmgen_vpred::{
//!     per_entry_correctness_model, run_confidence, FsmConfidence, TwoDeltaStride,
//! };
//! use fsmgen_workloads::{Input, ValueBenchmark};
//!
//! // Train a confidence FSM on one benchmark's per-entry correctness...
//! let train = ValueBenchmark::Li.trace(Input::TRAIN, 20_000);
//! let model =
//!     per_entry_correctness_model(&mut TwoDeltaStride::paper_default(), &train, 4);
//! let design = Designer::new(4).prob_threshold(0.8).design_from_model(model)?;
//!
//! // ...and evaluate it on another input.
//! let eval = ValueBenchmark::Li.trace(Input::EVAL, 20_000);
//! let mut table = TwoDeltaStride::paper_default();
//! let mut fsm = FsmConfidence::per_entry(table.len(), design.into_fsm(), "fsm-h4");
//! let stats = run_confidence(&mut table, &mut fsm, &eval);
//! assert!(stats.accuracy().unwrap() > 0.5);
//! # Ok::<(), fsmgen::DesignError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod confidence;
mod harness;
mod metrics;
mod predictors;
mod recovery;
mod stream;
mod stride;

pub use confidence::{
    AlwaysConfident, ConfidenceEstimator, FsmConfidence, SudConfidence, SudConfig,
};
pub use harness::{
    correctness_trace, per_entry_correctness_model, run_confidence, run_confidence_fsm,
    ConfidenceStats,
};
pub use metrics::ConfidenceMetrics;
pub use predictors::{family_accuracy, Fcm, Hybrid, LastValue, ValuePredictor};
pub use recovery::RecoveryModel;
pub use stream::ConfidenceStreamEval;
pub use stride::{TwoDeltaStride, ValuePrediction};
