//! Confidence estimators for value prediction (§6.2–6.3): per-entry
//! saturating up/down counters, resetting counters, and the paper's
//! automatically designed FSM estimators.

use fsmgen_automata::{Dfa, MoorePredictor};
use fsmgen_bpred::SaturatingCounter;
use fsmgen_exec::{BatchEvaluator, CompiledMachine, ExecBackend};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A confidence estimator attached to a value prediction table.
///
/// The protocol per dynamic load mirrors the hardware: query
/// [`ConfidenceEstimator::confident`] with the table slot, let the machine
/// act on it, then call [`ConfidenceEstimator::update`] with whether the
/// value prediction turned out correct.
pub trait ConfidenceEstimator {
    /// Is the value prediction from table `slot` trusted?
    fn confident(&mut self, slot: usize) -> bool;

    /// Records whether the value prediction from `slot` was correct.
    fn update(&mut self, slot: usize, correct: bool);

    /// Short description, e.g. `"sud-m10-p2-t80"`.
    fn describe(&self) -> String;
}

/// Configuration of a saturating up/down confidence counter, matching the
/// parameter sweep of Figure 2: "counters with a maximum value (number of
/// states) of 5, 10, 20, and 40, miss penalties of 1, 2, 5, 10, and full,
/// and thresholds of 50% 80% and 90%".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SudConfig {
    /// Maximum counter value.
    pub max: u32,
    /// Decrement on an incorrect prediction; `u32::MAX` means reset to 0
    /// ("full" penalty).
    pub penalty: u32,
    /// Confidence threshold as a percentage of `max` (e.g. 80).
    pub threshold_pct: u32,
}

impl SudConfig {
    /// The full Figure 2 sweep: 4 maxima x 5 penalties x 3 thresholds.
    #[must_use]
    pub fn figure2_sweep() -> Vec<SudConfig> {
        let mut out = Vec::new();
        for max in [5u32, 10, 20, 40] {
            for penalty in [1u32, 2, 5, 10, u32::MAX] {
                for threshold_pct in [50u32, 80, 90] {
                    out.push(SudConfig {
                        max,
                        penalty,
                        threshold_pct,
                    });
                }
            }
        }
        out
    }

    fn counter(&self) -> SaturatingCounter {
        let threshold = (self.max * self.threshold_pct) / 100;
        SaturatingCounter::new(self.max, 1, self.penalty, threshold.min(self.max))
    }
}

/// A table of per-entry SUD confidence counters (one per value-table
/// entry, as in §6.1).
#[derive(Debug, Clone)]
pub struct SudConfidence {
    counters: Vec<SaturatingCounter>,
    config: SudConfig,
}

impl SudConfidence {
    /// Creates one counter per table entry.
    #[must_use]
    pub fn new(entries: usize, config: SudConfig) -> Self {
        SudConfidence {
            counters: vec![config.counter(); entries],
            config,
        }
    }
}

impl ConfidenceEstimator for SudConfidence {
    fn confident(&mut self, slot: usize) -> bool {
        self.counters[slot].predict()
    }

    fn update(&mut self, slot: usize, correct: bool) {
        self.counters[slot].update(correct);
    }

    fn describe(&self) -> String {
        let p = if self.config.penalty == u32::MAX {
            "full".to_string()
        } else {
            self.config.penalty.to_string()
        };
        format!(
            "sud-m{}-p{p}-t{}",
            self.config.max, self.config.threshold_pct
        )
    }
}

/// FSM confidence predictors built by the automated design flow (§6.3).
///
/// Two deployment modes are provided:
///
/// * [`FsmConfidence::global`] — a single machine updated with the
///   correctness of *every* predicted load, exactly matching the §6.3
///   training stream ("each time a load was executed, we put into the
///   trace whether the load was correctly value predicted"); this is the
///   mode the Figure 2 experiments use, and it needs only one FSM of a
///   handful of states instead of 2K counters.
/// * [`FsmConfidence::per_entry`] — one instance per value-table entry,
///   structurally mirroring the per-entry SUD counters (used by the
///   deployment-mode ablation).
#[derive(Debug, Clone)]
pub struct FsmConfidence {
    machine: Arc<Dfa>,
    /// Lane count: 1 in global mode, table entries in per-entry mode.
    lanes_len: usize,
    global: bool,
    label: String,
    lanes: Lanes,
}

/// The running per-lane state, on whichever backend was selected.
#[derive(Debug, Clone)]
enum Lanes {
    /// Reference walk: one interpreter instance per lane.
    Interpreted(Vec<MoorePredictor>),
    /// Fast path: all lanes share one compiled table in SoA layout.
    Compiled(BatchEvaluator),
}

impl FsmConfidence {
    /// One shared machine instance updated on every predicted load, on
    /// the default backend ([`ExecBackend::Compiled`]).
    #[must_use]
    pub fn global(machine: impl Into<Arc<Dfa>>, label: impl Into<String>) -> Self {
        let machine = machine.into();
        let lanes = Self::build_lanes(&machine, 1, ExecBackend::default());
        FsmConfidence {
            machine,
            lanes_len: 1,
            global: true,
            label: label.into(),
            lanes,
        }
    }

    /// One instance of `machine` per table entry, on the default backend
    /// ([`ExecBackend::Compiled`]).
    #[must_use]
    pub fn per_entry(
        entries: usize,
        machine: impl Into<Arc<Dfa>>,
        label: impl Into<String>,
    ) -> Self {
        let machine = machine.into();
        let lanes = Self::build_lanes(&machine, entries, ExecBackend::default());
        FsmConfidence {
            machine,
            lanes_len: entries,
            global: false,
            label: label.into(),
            lanes,
        }
    }

    /// Rebuilds the lanes on an explicit backend, back in the start
    /// state — select the backend before running, not mid-trace. The
    /// backends are differentially tested bit-identical, so this only
    /// changes wall-time.
    #[must_use]
    pub fn with_backend(mut self, backend: ExecBackend) -> Self {
        self.lanes = Self::build_lanes(&self.machine, self.lanes_len, backend);
        self
    }

    /// The backend the lanes are running on.
    #[must_use]
    pub fn backend(&self) -> ExecBackend {
        match self.lanes {
            Lanes::Interpreted(_) => ExecBackend::Interpreted,
            Lanes::Compiled(_) => ExecBackend::Compiled,
        }
    }

    fn build_lanes(machine: &Arc<Dfa>, count: usize, backend: ExecBackend) -> Lanes {
        if backend == ExecBackend::Compiled {
            // Designed confidence machines always fit the table limit;
            // should one not, fall back to the reference walk.
            if let Ok(compiled) = CompiledMachine::compile(machine) {
                return Lanes::Compiled(BatchEvaluator::uniform(&Arc::new(compiled), count));
            }
        }
        Lanes::Interpreted(
            (0..count)
                .map(|_| MoorePredictor::new(Arc::clone(machine)))
                .collect(),
        )
    }

    fn slot_index(&self, slot: usize) -> usize {
        if self.global {
            0
        } else {
            slot
        }
    }

    /// Number of states in the shared machine.
    #[must_use]
    pub fn num_states(&self) -> usize {
        if self.lanes_len == 0 {
            0
        } else {
            self.machine.num_states()
        }
    }
}

impl ConfidenceEstimator for FsmConfidence {
    fn confident(&mut self, slot: usize) -> bool {
        let i = self.slot_index(slot);
        match &self.lanes {
            Lanes::Interpreted(instances) => instances[i].predict(),
            Lanes::Compiled(bank) => bank.output(i),
        }
    }

    fn update(&mut self, slot: usize, correct: bool) {
        let i = self.slot_index(slot);
        match &mut self.lanes {
            Lanes::Interpreted(instances) => instances[i].update(correct),
            Lanes::Compiled(bank) => bank.step(i, correct),
        }
    }

    fn describe(&self) -> String {
        self.label.clone()
    }
}

/// An estimator that trusts everything — the no-confidence baseline.
#[derive(Debug, Clone, Default)]
pub struct AlwaysConfident;

impl ConfidenceEstimator for AlwaysConfident {
    fn confident(&mut self, _slot: usize) -> bool {
        true
    }

    fn update(&mut self, _slot: usize, _correct: bool) {}

    fn describe(&self) -> String {
        "always".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmgen_automata::compile_patterns;

    #[test]
    fn sweep_has_60_points() {
        assert_eq!(SudConfig::figure2_sweep().len(), 60);
    }

    #[test]
    fn sud_becomes_confident_after_run_of_correct() {
        let cfg = SudConfig {
            max: 10,
            penalty: u32::MAX,
            threshold_pct: 80,
        };
        let mut sud = SudConfidence::new(4, cfg);
        assert!(!sud.confident(0));
        for _ in 0..9 {
            sud.update(0, true);
        }
        assert!(sud.confident(0));
        sud.update(0, false); // full penalty resets
        assert!(!sud.confident(0));
        // Other slots are independent.
        assert!(!sud.confident(1));
    }

    #[test]
    fn fsm_confidence_uses_history_patterns() {
        // Confident iff the last two outcomes were both correct.
        let machine = compile_patterns(&[vec![Some(true), Some(true)]]);
        let mut fsm = FsmConfidence::per_entry(2, machine, "fsm-test");
        fsm.update(0, true);
        fsm.update(0, true);
        assert!(fsm.confident(0));
        fsm.update(0, false);
        assert!(!fsm.confident(0));
        assert!(!fsm.confident(1), "slot 1 untouched");
        assert_eq!(fsm.describe(), "fsm-test");
    }

    #[test]
    fn fsm_confidence_defaults_to_compiled_and_matches_interpreted() {
        let machine = compile_patterns(&[vec![Some(true), Some(true)]]);
        let machine = Arc::new(machine);
        let mut fast = FsmConfidence::per_entry(4, Arc::clone(&machine), "fsm");
        assert_eq!(fast.backend(), ExecBackend::Compiled);
        let mut slow =
            FsmConfidence::per_entry(4, machine, "fsm").with_backend(ExecBackend::Interpreted);
        assert_eq!(slow.backend(), ExecBackend::Interpreted);
        // Drive both through an interleaved slot/outcome schedule.
        for i in 0..200usize {
            let slot = (i * 7) % 4;
            let correct = (i * 3) % 5 != 0;
            assert_eq!(fast.confident(slot), slow.confident(slot), "step {i}");
            fast.update(slot, correct);
            slow.update(slot, correct);
        }
        for slot in 0..4 {
            assert_eq!(fast.confident(slot), slow.confident(slot));
        }
        assert_eq!(fast.num_states(), slow.num_states());
    }

    #[test]
    fn global_mode_shares_one_lane_on_both_backends() {
        let machine = Arc::new(compile_patterns(&[vec![Some(true)]]));
        let mut fast = FsmConfidence::global(Arc::clone(&machine), "g");
        let mut slow = FsmConfidence::global(machine, "g").with_backend(ExecBackend::Interpreted);
        fast.update(17, true);
        slow.update(17, true);
        // Global mode folds every slot onto lane 0.
        assert!(fast.confident(3));
        assert_eq!(fast.confident(3), slow.confident(3));
    }

    #[test]
    fn describe_formats() {
        let sud = SudConfidence::new(
            1,
            SudConfig {
                max: 20,
                penalty: u32::MAX,
                threshold_pct: 90,
            },
        );
        assert_eq!(sud.describe(), "sud-m20-pfull-t90");
        assert_eq!(AlwaysConfident.describe(), "always");
    }
}
