//! The value-prediction evaluation harness: runs the stride predictor with
//! a confidence estimator over a load trace and reports the paper's §6.4
//! metrics — accuracy and coverage — plus the correctness bit-trace used
//! to train FSM estimators.

use crate::confidence::ConfidenceEstimator;
use crate::stride::{TwoDeltaStride, ValuePrediction};
use fsmgen_traces::{BitTrace, LoadTrace};
use serde::{Deserialize, Serialize};

/// Accuracy/coverage statistics of one confidence-estimation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfidenceStats {
    /// Dynamic loads for which the value table produced a prediction.
    pub predictions: usize,
    /// Predictions that were correct (regardless of confidence).
    pub correct: usize,
    /// Predictions marked confident.
    pub confident: usize,
    /// Predictions that were both confident and correct.
    pub confident_correct: usize,
}

impl ConfidenceStats {
    /// Accuracy: "the percent of value predictions that were marked as
    /// confident, that were in fact correct predictions". `None` when
    /// nothing was marked confident.
    #[must_use]
    pub fn accuracy(&self) -> Option<f64> {
        (self.confident > 0).then(|| self.confident_correct as f64 / self.confident as f64)
    }

    /// Coverage: "the percent of correct value predictions that were
    /// allowed through by the confidence predictor". `None` when nothing
    /// was correctly predicted.
    #[must_use]
    pub fn coverage(&self) -> Option<f64> {
        (self.correct > 0).then(|| self.confident_correct as f64 / self.correct as f64)
    }
}

/// Runs value prediction over `trace` with the given confidence estimator.
///
/// Per dynamic load: the stride table predicts; if it produced a value the
/// estimator is queried and the outcome recorded; then both the table and
/// the estimator are updated with the truth.
pub fn run_confidence<E: ConfidenceEstimator + ?Sized>(
    table: &mut TwoDeltaStride,
    estimator: &mut E,
    trace: &LoadTrace,
) -> ConfidenceStats {
    let _span = fsmgen_obs::span("vpred-confidence");
    let mut stats = ConfidenceStats::default();
    for load in trace {
        let slot = table.index(load.pc);
        if let ValuePrediction::Predicted(v) = table.predict(load.pc) {
            let correct = v == load.value;
            let confident = estimator.confident(slot);
            stats.predictions += 1;
            if correct {
                stats.correct += 1;
            }
            if confident {
                stats.confident += 1;
                if correct {
                    stats.confident_correct += 1;
                }
            }
            estimator.update(slot, correct);
        }
        table.update(load.pc, load.value);
    }
    fsmgen_obs::counter("vpred-confidence", "predictions", stats.predictions as u64);
    fsmgen_obs::counter("vpred-confidence", "confident", stats.confident as u64);
    stats
}

/// [`run_confidence`] with a designed FSM estimator on an explicit
/// execution backend: builds a per-entry [`FsmConfidence`] over
/// `machine`, runs the trace, and returns the stats. The backends are
/// bit-identical (differentially tested), so sweeps use this to compare
/// wall-time while trusting a single accuracy number.
///
/// [`FsmConfidence`]: crate::confidence::FsmConfidence
pub fn run_confidence_fsm(
    table: &mut TwoDeltaStride,
    machine: impl Into<std::sync::Arc<fsmgen_automata::Dfa>>,
    label: &str,
    backend: fsmgen_exec::ExecBackend,
    trace: &LoadTrace,
) -> ConfidenceStats {
    let mut estimator = crate::confidence::FsmConfidence::per_entry(table.len(), machine, label)
        .with_backend(backend);
    run_confidence(table, &mut estimator, trace)
}

/// Produces the confidence-training trace of §6.3: for every executed load
/// that received a value prediction, a bit saying whether the prediction
/// was correct. ("Each time a load was executed, we put into the trace
/// whether the load was correctly value predicted (1) or not (0).")
#[must_use]
pub fn correctness_trace(table: &mut TwoDeltaStride, trace: &LoadTrace) -> BitTrace {
    let mut bits = BitTrace::with_capacity(trace.len());
    for load in trace {
        if let ValuePrediction::Predicted(v) = table.predict(load.pc) {
            bits.push(v == load.value);
        }
        table.update(load.pc, load.value);
    }
    bits
}

/// Builds the Markov model that matches *per-entry* confidence deployment:
/// each value-table entry keeps its own correctness history, and every
/// predicted load contributes one `(history, correct)` observation for its
/// entry. This is the training mode the Figure 2 experiments use, since
/// the deployed estimators (SUD counters or FSM instances) are per-entry
/// exactly as in §6.1.
///
/// # Errors
///
/// Returns [`fsmgen::DesignError`] variants propagated from model
/// construction (the order is validated by [`MarkovModel::new`]'s caller
/// contract; an over-long order panics there).
///
/// [`MarkovModel::new`]: fsmgen::MarkovModel::new
#[must_use]
pub fn per_entry_correctness_model(
    table: &mut TwoDeltaStride,
    trace: &LoadTrace,
    order: usize,
) -> fsmgen::MarkovModel {
    use fsmgen_traces::HistoryRegister;
    let mut model = fsmgen::MarkovModel::new(order);
    let mut histories: std::collections::BTreeMap<usize, HistoryRegister> =
        std::collections::BTreeMap::new();
    for load in trace {
        let slot = table.index(load.pc);
        if let ValuePrediction::Predicted(v) = table.predict(load.pc) {
            let correct = v == load.value;
            let h = histories
                .entry(slot)
                .or_insert_with(|| HistoryRegister::new(order));
            if h.is_full() {
                model.observe(h.value(), correct);
            }
            h.push(correct);
        }
        table.update(load.pc, load.value);
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidence::AlwaysConfident;
    use fsmgen_traces::LoadEvent;

    fn strided_trace(n: usize) -> LoadTrace {
        (0..n)
            .map(|i| LoadEvent {
                pc: 0x100,
                value: 8 * i as u64,
            })
            .collect()
    }

    #[test]
    fn always_confident_has_full_coverage() {
        let mut table = TwoDeltaStride::new(64);
        let stats = run_confidence(&mut table, &mut AlwaysConfident, &strided_trace(100));
        assert_eq!(stats.coverage(), Some(1.0));
        // A pure stride is eventually perfectly predicted.
        assert!(stats.accuracy().unwrap() > 0.9);
        assert!(stats.predictions >= 97);
    }

    #[test]
    fn correctness_trace_matches_stats() {
        let trace = strided_trace(50);
        let mut t1 = TwoDeltaStride::new(64);
        let bits = correctness_trace(&mut t1, &trace);
        let mut t2 = TwoDeltaStride::new(64);
        let stats = run_confidence(&mut t2, &mut AlwaysConfident, &trace);
        assert_eq!(bits.len(), stats.predictions);
        assert_eq!(bits.count_ones(), stats.correct);
    }

    #[test]
    fn empty_stats_have_no_rates() {
        let stats = ConfidenceStats::default();
        assert_eq!(stats.accuracy(), None);
        assert_eq!(stats.coverage(), None);
    }

    #[test]
    fn fsm_harness_backends_agree_bit_for_bit() {
        let machine = fsmgen_automata::compile_patterns(&[vec![Some(true), Some(true)]]);
        let machine = std::sync::Arc::new(machine);
        let trace = strided_trace(300);
        let mut t1 = TwoDeltaStride::new(64);
        let fast = run_confidence_fsm(
            &mut t1,
            std::sync::Arc::clone(&machine),
            "fsm",
            fsmgen_exec::ExecBackend::Compiled,
            &trace,
        );
        let mut t2 = TwoDeltaStride::new(64);
        let slow = run_confidence_fsm(
            &mut t2,
            machine,
            "fsm",
            fsmgen_exec::ExecBackend::Interpreted,
            &trace,
        );
        assert_eq!(fast, slow);
        assert!(fast.predictions > 0);
    }

    #[test]
    fn chaotic_values_are_incorrect() {
        let trace: LoadTrace = (0..200u64)
            .map(|i| {
                // splitmix64-style hash: genuinely stride-free.
                let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                LoadEvent {
                    pc: 0x40,
                    value: z ^ (z >> 31),
                }
            })
            .collect();
        let mut table = TwoDeltaStride::new(64);
        let stats = run_confidence(&mut table, &mut AlwaysConfident, &trace);
        assert!(stats.correct < stats.predictions / 10);
    }
}
