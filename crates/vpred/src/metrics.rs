//! The confidence-estimation quality metrics of Grunwald, Klauser, Manne
//! & Pleszkun (ISCA 1998), cited in §3.1: "several new metrics for
//! evaluating confidence estimators". They treat the estimator as a
//! binary classifier of prediction correctness:
//!
//! * **SENS** (sensitivity) — fraction of correct predictions flagged
//!   high-confidence (identical to the paper's *coverage*);
//! * **SPEC** (specificity) — fraction of incorrect predictions flagged
//!   low-confidence;
//! * **PVP** (predictive value of a positive) — probability a
//!   high-confidence flag is right (identical to *accuracy*);
//! * **PVN** (predictive value of a negative) — probability a
//!   low-confidence flag is right.
//!
//! Different consumers optimise different corners: squash-recovery value
//! prediction wants high PVP; pipeline gating wants high SPEC and PVN.

use crate::harness::ConfidenceStats;
use serde::{Deserialize, Serialize};

/// The four Grunwald metrics, derived from a confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceMetrics {
    /// Sensitivity = coverage: `HC∧correct / correct`.
    pub sens: Option<f64>,
    /// Specificity: `LC∧incorrect / incorrect`.
    pub spec: Option<f64>,
    /// Predictive value of a positive = accuracy: `HC∧correct / HC`.
    pub pvp: Option<f64>,
    /// Predictive value of a negative: `LC∧incorrect / LC`.
    pub pvn: Option<f64>,
}

impl ConfidenceMetrics {
    /// Derives all four metrics from harness statistics. Each is `None`
    /// when its denominator is zero.
    #[must_use]
    pub fn from_stats(stats: &ConfidenceStats) -> Self {
        let incorrect = stats.predictions - stats.correct;
        let low_conf = stats.predictions - stats.confident;
        let lc_incorrect = incorrect - (stats.confident - stats.confident_correct);
        ConfidenceMetrics {
            sens: ratio(stats.confident_correct, stats.correct),
            spec: ratio(lc_incorrect, incorrect),
            pvp: ratio(stats.confident_correct, stats.confident),
            pvn: ratio(lc_incorrect, low_conf),
        }
    }
}

fn ratio(num: usize, den: usize) -> Option<f64> {
    (den > 0).then(|| num as f64 / den as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_matrix_identities() {
        // 100 predictions: 60 correct; 50 flagged confident of which 45
        // correct. So: HC∧C=45, HC∧I=5, LC∧C=15, LC∧I=35.
        let stats = ConfidenceStats {
            predictions: 100,
            correct: 60,
            confident: 50,
            confident_correct: 45,
        };
        let m = ConfidenceMetrics::from_stats(&stats);
        assert_eq!(m.sens, Some(45.0 / 60.0));
        assert_eq!(m.spec, Some(35.0 / 40.0));
        assert_eq!(m.pvp, Some(45.0 / 50.0));
        assert_eq!(m.pvn, Some(35.0 / 50.0));
    }

    #[test]
    fn degenerate_denominators() {
        let m = ConfidenceMetrics::from_stats(&ConfidenceStats::default());
        assert_eq!(m.sens, None);
        assert_eq!(m.spec, None);
        assert_eq!(m.pvp, None);
        assert_eq!(m.pvn, None);

        // All predictions confident: PVN undefined.
        let stats = ConfidenceStats {
            predictions: 10,
            correct: 7,
            confident: 10,
            confident_correct: 7,
        };
        let m = ConfidenceMetrics::from_stats(&stats);
        assert_eq!(m.pvn, None);
        assert_eq!(m.pvp, Some(0.7));
    }

    #[test]
    fn matches_accuracy_and_coverage() {
        let stats = ConfidenceStats {
            predictions: 200,
            correct: 120,
            confident: 80,
            confident_correct: 70,
        };
        let m = ConfidenceMetrics::from_stats(&stats);
        assert_eq!(m.pvp, stats.accuracy());
        assert_eq!(m.sens, stats.coverage());
    }
}
