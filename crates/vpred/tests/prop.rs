//! Property-based tests for value prediction and confidence estimation:
//! confusion-matrix invariants, stride predictor correctness on exact
//! arithmetic sequences, and metric ranges.

use fsmgen_automata::compile_patterns;
use fsmgen_traces::{LoadEvent, LoadTrace};
use fsmgen_vpred::{
    family_accuracy, run_confidence, ConfidenceMetrics, Fcm, FsmConfidence, LastValue,
    SudConfidence, SudConfig, TwoDeltaStride, ValuePredictor,
};
use proptest::prelude::*;

fn load_trace_strategy() -> impl Strategy<Value = LoadTrace> {
    proptest::collection::vec((0u64..16, 0u64..1000), 1..300).prop_map(|events| {
        events
            .into_iter()
            .map(|(slot, value)| LoadEvent {
                pc: 0x8000 + slot * 8,
                value,
            })
            .collect()
    })
}

fn sud_strategy() -> impl Strategy<Value = SudConfig> {
    (
        1u32..40,
        prop_oneof![Just(u32::MAX), (1u32..10).prop_map(|p| p)],
        0u32..=100,
    )
        .prop_map(|(max, penalty, threshold_pct)| SudConfig {
            max,
            penalty,
            threshold_pct,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The confusion matrix is internally consistent for any estimator
    /// and trace.
    #[test]
    fn confidence_stats_invariants(trace in load_trace_strategy(), cfg in sud_strategy()) {
        let mut table = TwoDeltaStride::new(64);
        let mut est = SudConfidence::new(table.len(), cfg);
        let stats = run_confidence(&mut table, &mut est, &trace);
        prop_assert!(stats.correct <= stats.predictions);
        prop_assert!(stats.confident <= stats.predictions);
        prop_assert!(stats.confident_correct <= stats.confident);
        prop_assert!(stats.confident_correct <= stats.correct);
        prop_assert!(stats.predictions <= trace.len());
        for v in [stats.accuracy(), stats.coverage()].into_iter().flatten() {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    /// All four Grunwald metrics stay in [0, 1] whenever defined.
    #[test]
    fn metrics_are_probabilities(trace in load_trace_strategy(), cfg in sud_strategy()) {
        let mut table = TwoDeltaStride::new(64);
        let mut est = SudConfidence::new(table.len(), cfg);
        let stats = run_confidence(&mut table, &mut est, &trace);
        let m = ConfidenceMetrics::from_stats(&stats);
        for v in [m.sens, m.spec, m.pvp, m.pvn].into_iter().flatten() {
            prop_assert!((0.0..=1.0).contains(&v), "metric out of range: {v}");
        }
    }

    /// Two-delta stride predicts exact arithmetic sequences perfectly
    /// after the two-sample warmup.
    #[test]
    fn stride_sequences_predicted(start in 0u64..1_000_000, stride in 0u64..10_000, n in 4usize..100) {
        let trace: LoadTrace = (0..n as u64)
            .map(|i| LoadEvent {
                pc: 0x100,
                value: start.wrapping_add(stride.wrapping_mul(i)),
            })
            .collect();
        let mut vp = TwoDeltaStride::new(64);
        let mut wrong_after_warmup = 0;
        for (i, e) in trace.iter().enumerate() {
            if let fsmgen_vpred::ValuePrediction::Predicted(v) = vp.predict(e.pc) {
                if i >= 3 && v != e.value {
                    wrong_after_warmup += 1;
                }
            }
            vp.update(e.pc, e.value);
        }
        prop_assert_eq!(wrong_after_warmup, 0);
    }

    /// family_accuracy never reports more correct than predictions, nor
    /// more predictions than loads, for any predictor in the family.
    #[test]
    fn family_accounting(trace in load_trace_strategy()) {
        let mut predictors: Vec<Box<dyn ValuePredictor>> = vec![
            Box::new(TwoDeltaStride::new(64)),
            Box::new(LastValue::new(64)),
            Box::new(Fcm::new(64, 256, 2)),
        ];
        for p in &mut predictors {
            let (correct, predictions) = family_accuracy(p.as_mut(), &trace);
            prop_assert!(correct <= predictions);
            prop_assert!(predictions <= trace.len());
        }
    }

    /// A per-entry FSM estimator keyed on "last two correct" is exactly
    /// as confident as the ground-truth history says.
    #[test]
    fn fsm_confidence_matches_ground_truth(trace in load_trace_strategy()) {
        let machine = compile_patterns(&[vec![Some(true), Some(true)]]);
        let mut table = TwoDeltaStride::new(64);
        let mut est = FsmConfidence::per_entry(table.len(), machine, "cc2");
        // Track the true per-slot correctness history alongside.
        let mut truth: std::collections::BTreeMap<usize, (bool, bool)> =
            std::collections::BTreeMap::new();
        for load in &trace {
            let slot = table.index(load.pc);
            if let fsmgen_vpred::ValuePrediction::Predicted(v) = table.predict(load.pc) {
                let expected = truth.get(&slot).copied().is_some_and(|(a, b)| a && b);
                prop_assert_eq!(
                    fsmgen_vpred::ConfidenceEstimator::confident(&mut est, slot),
                    expected
                );
                let correct = v == load.value;
                fsmgen_vpred::ConfidenceEstimator::update(&mut est, slot, correct);
                let prev = truth.get(&slot).copied().unwrap_or((false, false));
                truth.insert(slot, (prev.1, correct));
            }
            table.update(load.pc, load.value);
        }
    }
}
